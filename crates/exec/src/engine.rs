//! The materializing, morsel-driven executor.
//!
//! Join probes are **morsel-driven**: the probe side is split into
//! fixed-size contiguous row ranges (morsels), a pool of scoped
//! `std::thread` workers claims morsels from a shared atomic counter,
//! and each worker probes into a private output buffer. Buffers are
//! concatenated in morsel-index order, so the output rows — order
//! included — are bit-identical to a sequential probe regardless of
//! scheduling. The hash-join build side is materialized into a shared
//! immutable [`JoinTable`] of **radix partitions**: the high 32 bits of
//! each key's 64-bit hash select a partition-local bucket map, the full
//! hash selects the bucket. Only key *hashes* and row ids are stored
//! (no key values are copied); candidates are re-checked for exact key
//! equality against the pinned build rows. The build itself is
//! morsel-parallel: workers scatter `(hash, row id)` pairs into
//! per-morsel buffers, the buffers are replayed in morsel-index order
//! (morsels are contiguous ascending row ranges, so replay order is
//! ascending row order), and each partition's bucket map is then built
//! independently — bucket chains, and with them output rows, order,
//! and every counter, are bit-identical to a sequential single-table
//! build at any partition count, thread count, and morsel size.
//! Probes compute each key hash once and reuse it for both partition
//! selection and bucket lookup.
//!
//! Residual predicates are bound through the storage interner when
//! possible ([`fro_algebra::ops::BoundPred::bind_interned`]): attribute
//! resolution is then a dense `AttrId`-indexed array read instead of a
//! name lookup, with the name-based path kept as the fallback for
//! derived attributes.
//!
//! Counter semantics (Example 1's accounting):
//! * `Scan` retrieves every tuple of its table;
//! * `IndexJoin` issues one probe per outer row and *retrieves exactly
//!   the matching inner tuples*;
//! * `HashJoin` retrieves nothing by itself (its inputs do) but counts
//!   build rows and candidate comparisons;
//! * every operator adds its output size to `rows_materialized`.
//!
//! Results are plain [`Relation`]s; the test-suite cross-checks every
//! plan against the reference evaluator in `fro-algebra`.

use crate::config::ExecConfig;
use crate::plan::{JoinKind, PhysPlan};
use crate::stats::ExecStats;
use crate::storage::Storage;
use fro_algebra::ops::{AttrCols, BoundPred, IPred};
use fro_algebra::{AlgebraError, Attr, ColumnSet, Interner, Pred, Relation, Schema, Tuple, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A scan or index join referenced an unknown table. Carries the
    /// nearest interned name (by edit distance) when one is close.
    UnknownTable {
        /// The name that failed to resolve.
        name: String,
        /// The closest known table name, if any is plausibly close.
        suggestion: Option<String>,
    },
    /// An index join required an index that does not exist.
    MissingIndex {
        /// Table that lacks the index.
        table: String,
        /// The attributes that needed indexing.
        attrs: String,
    },
    /// Key lists of a hash/index join have different lengths.
    KeyArityMismatch,
    /// An attribute failed to resolve against an input schema.
    Algebra(AlgebraError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable { name, suggestion } => {
                write!(f, "unknown table `{name}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                Ok(())
            }
            ExecError::MissingIndex { table, attrs } => {
                write!(f, "table `{table}` has no index on ({attrs})")
            }
            ExecError::KeyArityMismatch => write!(f, "probe/build key lists differ in length"),
            ExecError::Algebra(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<AlgebraError> for ExecError {
    fn from(e: AlgebraError) -> Self {
        ExecError::Algebra(e)
    }
}

/// Bind a predicate for evaluation against `schema`, preferring the
/// interned path: when every attribute of `pred` is known to the
/// storage interner, binding is `AttrId`-indexed array reads (the
/// precomputed resolutions carried by [`IPred`]); otherwise — derived
/// attributes, or no interner in scope — fall back to name-based
/// [`BoundPred::bind`], which also owns the diagnosable error. Both
/// paths bind to identical column offsets.
pub(crate) fn bind_pred(
    pred: &Pred,
    schema: &Schema,
    interner: Option<&Interner>,
) -> Result<BoundPred, ExecError> {
    if let Some(it) = interner {
        if let Some(ip) = IPred::from_pred(pred, it) {
            let cols = AttrCols::for_schema(schema, it);
            if let Some(bound) = BoundPred::bind_interned(&ip, &cols) {
                return Ok(bound);
            }
        }
    }
    BoundPred::bind(pred, schema).map_err(ExecError::from)
}

pub(crate) fn resolve_cols(schema: &Schema, attrs: &[Attr]) -> Result<Vec<usize>, ExecError> {
    attrs
        .iter()
        .map(|a| {
            schema.index_of(a).ok_or_else(|| {
                ExecError::Algebra(AlgebraError::UnknownAttr {
                    attr: a.to_string(),
                    schema: schema.to_string(),
                })
            })
        })
        .collect()
}

/// An all-null unmatched row on each side of a full outerjoin pads to
/// the identical all-null wide row; dedup before materializing. Keeps
/// the first occurrence; dedups by reference (no tuple is cloned).
pub(crate) fn dedup_rows(rows: &mut Vec<Tuple>) {
    let mut keep = Vec::with_capacity(rows.len());
    {
        let mut seen: HashSet<&Tuple> = HashSet::with_capacity(rows.len());
        for t in rows.iter() {
            keep.push(seen.insert(t));
        }
    }
    let mut flags = keep.into_iter();
    rows.retain(|_| flags.next().expect("one flag per row"));
}

fn key_of(row: &Tuple, cols: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        let v = row.get(c);
        if v.is_null() {
            return None; // equality on null never matches
        }
        key.push(v.clone());
    }
    Some(key)
}

/// Fill `out` with the key columns of `row`, reusing its allocation.
/// Returns `false` (and leaves `out` cleared) when any key value is
/// null — SQL equality never matches on null.
fn key_into(row: &Tuple, cols: &[usize], out: &mut Vec<Value>) -> bool {
    out.clear();
    for &c in cols {
        let v = row.get(c);
        if v.is_null() {
            out.clear();
            return false;
        }
        out.push(v.clone());
    }
    true
}

/// Hash of the key columns of `row`, or `None` when any is null. The
/// values are hashed in place — no per-row `Vec<Value>` key is ever
/// materialized.
fn hash_key(row: &Tuple, cols: &[usize]) -> Option<u64> {
    let mut h = DefaultHasher::new();
    for &c in cols {
        let v = row.get(c);
        if v.is_null() {
            return None;
        }
        v.hash(&mut h);
    }
    Some(h.finish())
}

/// Column-wise key equality between a probe row and a build row.
fn keys_eq(a: &Tuple, a_cols: &[usize], b: &Tuple, b_cols: &[usize]) -> bool {
    a_cols
        .iter()
        .zip(b_cols)
        .all(|(&ac, &bc)| a.get(ac) == b.get(bc))
}

/// Which of `p` radix partitions a key hash lands in: the **high** 32
/// bits pick the partition, leaving the low bits (which `HashMap`
/// consumes first) for bucket selection inside the partition. The
/// partition is a pure function of the hash, so a partitioned table
/// holds exactly the buckets of a single global table, just spread
/// over `p` maps — which is what makes every partition count produce
/// identical join results.
#[inline]
fn partition_of(h: u64, p: usize) -> usize {
    if p <= 1 {
        0
    } else {
        #[allow(clippy::cast_possible_truncation)]
        let hi = (h >> 32) as usize;
        hi % p
    }
}

/// One build row scattered during the parallel build: its key hash and
/// row id, in row order within the morsel.
type ScatterEntry = (u64, u32);

/// A build worker's take-home: per-morsel scatter buffers tagged with
/// their morsel index, plus its private counter accumulator.
type BuildWorkerOutput = (Vec<(usize, Vec<ScatterEntry>)>, ExecStats);

/// The shared, immutable build side of a hash join: the pinned build
/// rows plus, per radix partition, a map from key *hash* to the row
/// ids in that bucket. Build keys are borrowed from the pinned rows —
/// nothing is cloned — and every bucket candidate is re-checked for
/// exact key equality against the probe row, so a 64-bit hash
/// collision can never yield a wrong match (or a wrong `comparisons`
/// count: the counter ticks only on exact-key candidates, exactly as
/// the value-keyed table did). With one partition this is the original
/// global table, bit for bit.
pub(crate) struct JoinTable<'a> {
    rows: &'a [Tuple],
    key_cols: &'a [usize],
    parts: Vec<HashMap<u64, Vec<u32>>>,
}

impl<'a> JoinTable<'a> {
    /// Build the partitioned table. Determinism: morsels are contiguous
    /// ascending row ranges, scatter buffers are replayed in
    /// morsel-index order, and rows scatter in row order within each
    /// morsel — so every bucket's row-id chain is ascending, exactly
    /// the chain a sequential pass over `rows` builds, no matter how
    /// many workers ran or how the scheduler interleaved them.
    ///
    /// When the build side is a base table, `cols` carries its columnar
    /// mirror and key hashes are computed straight off the typed column
    /// vectors ([`ColumnSet::hash_key_at`]) — no wide-row indirection,
    /// dictionary codes resolved once per string key. The hashes are
    /// value-identical to [`hash_key`] over the rows, so buckets,
    /// partitions, and every counter are unchanged.
    pub(crate) fn build(
        rows: &'a [Tuple],
        key_cols: &'a [usize],
        p: usize,
        cfg: &ExecConfig,
        stats: &mut ExecStats,
        cols: Option<&ColumnSet>,
    ) -> JoinTable<'a> {
        assert!(
            u32::try_from(rows.len()).is_ok(),
            "build side exceeds u32 row ids"
        );
        let hash_at = |rid: usize, row: &Tuple| -> Option<u64> {
            match cols {
                Some(cs) => cs.hash_key_at(key_cols, rid),
                None => hash_key(row, key_cols),
            }
        };
        stats.partition.note_partitions(p);
        let morsel = cfg.morsel_rows.max(1);
        let n_morsels = rows.len().div_ceil(morsel);
        let threads = cfg.effective_threads().min(n_morsels.max(1));
        if threads <= 1 {
            // Sequential fast path: scatter straight into the bucket
            // maps — no worker spawn, no scatter buffers.
            let mut parts: Vec<HashMap<u64, Vec<u32>>> = vec![HashMap::new(); p];
            for (rid, row) in rows.iter().enumerate() {
                if let Some(h) = hash_at(rid, row) {
                    let pt = partition_of(h, p);
                    stats.partition.add_build(pt);
                    #[allow(clippy::cast_possible_truncation)]
                    parts[pt].entry(h).or_default().push(rid as u32);
                }
                // Null-keyed rows still count: Example 1 charges the
                // build for every row it reads.
                stats.hash_build_rows += 1;
            }
            return JoinTable {
                rows,
                key_cols,
                parts,
            };
        }

        // Phase 1 — parallel scatter: workers claim morsels and emit
        // (hash, row id) pairs in row order, tagged by morsel index.
        let next = AtomicUsize::new(0);
        let results: Vec<BuildWorkerOutput> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced: Vec<(usize, Vec<ScatterEntry>)> = Vec::new();
                        let mut local = ExecStats::new();
                        loop {
                            let m = next.fetch_add(1, Ordering::Relaxed);
                            if m >= n_morsels {
                                break;
                            }
                            let lo = m * morsel;
                            let hi = (lo + morsel).min(rows.len());
                            let mut buf: Vec<ScatterEntry> = Vec::with_capacity(hi - lo);
                            for (rid, row) in rows[lo..hi].iter().enumerate() {
                                if let Some(h) = hash_at(lo + rid, row) {
                                    local.partition.add_build(partition_of(h, p));
                                    #[allow(clippy::cast_possible_truncation)]
                                    buf.push((h, (lo + rid) as u32));
                                }
                                local.hash_build_rows += 1;
                            }
                            produced.push((m, buf));
                        }
                        (produced, local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("build worker panicked"))
                .collect()
        });
        let mut scatters: Vec<(usize, Vec<ScatterEntry>)> = Vec::with_capacity(n_morsels);
        for (produced, local) in results {
            stats.merge(&local);
            scatters.extend(produced);
        }
        scatters.sort_unstable_by_key(|&(m, _)| m);

        // Phase 2 — per-partition merge: partitions are disjoint, so
        // workers build whole bucket maps independently, each replaying
        // the scatter buffers in the same morsel order.
        let build_part = |pt: usize| -> HashMap<u64, Vec<u32>> {
            let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
            for (_, buf) in &scatters {
                for &(h, rid) in buf {
                    if partition_of(h, p) == pt {
                        buckets.entry(h).or_default().push(rid);
                    }
                }
            }
            buckets
        };
        let merge_threads = threads.min(p);
        let parts: Vec<HashMap<u64, Vec<u32>>> = if merge_threads <= 1 {
            (0..p).map(build_part).collect()
        } else {
            let next_part = AtomicUsize::new(0);
            let mut built: Vec<(usize, HashMap<u64, Vec<u32>>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..merge_threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut mine = Vec::new();
                            loop {
                                let pt = next_part.fetch_add(1, Ordering::Relaxed);
                                if pt >= p {
                                    break;
                                }
                                mine.push((pt, build_part(pt)));
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("merge worker panicked"))
                    .collect()
            });
            built.sort_unstable_by_key(|&(pt, _)| pt);
            built.into_iter().map(|(_, buckets)| buckets).collect()
        };
        JoinTable {
            rows,
            key_cols,
            parts,
        }
    }

    /// The partition a probe-key hash selects.
    #[inline]
    pub(crate) fn partition_index(&self, h: u64) -> usize {
        partition_of(h, self.parts.len())
    }

    /// The bucket of build-row ids a probe-key hash selects (empty when
    /// the key was null or nothing hashed there). Candidates still need
    /// the exact-key recheck — the pipelined prober does its own,
    /// fragment-mapped equivalent of [`keys_eq`].
    #[inline]
    pub(crate) fn bucket(&self, h: Option<u64>) -> &[u32] {
        h.and_then(|h| self.parts[self.partition_index(h)].get(&h))
            .map_or(&[][..], Vec::as_slice)
    }

    /// The pinned build row behind a bucket id, at the *build-side*
    /// lifetime — a pipelined fragment stack can hold it beyond the
    /// borrow of the table itself.
    #[inline]
    pub(crate) fn row(&self, rid: u32) -> &'a Tuple {
        &self.rows[rid as usize]
    }

    /// Exact-key candidates for `probe_row` given its precomputed key
    /// hash (`None` when any key value was null), in build-row order.
    /// The hash is computed once per probe row and reused for both
    /// partition selection and bucket lookup.
    fn candidates_hashed<'t>(
        &'t self,
        h: Option<u64>,
        probe_row: &'t Tuple,
        probe_cols: &'t [usize],
    ) -> impl Iterator<Item = (usize, &'t Tuple)> + 't {
        h.and_then(|h| self.parts[self.partition_index(h)].get(&h))
            .map_or(&[][..], Vec::as_slice)
            .iter()
            .map(|&rid| (rid as usize, &self.rows[rid as usize]))
            .filter(move |&(_, brow)| keys_eq(probe_row, probe_cols, brow, self.key_cols))
    }
}

/// The per-probe-row join kernel shared by the hash, index, and
/// nested-loop paths: given one probe-side row and an iterator of
/// candidate matches, emit the output rows for `kind` and report each
/// residual-passing candidate through `on_match` (full outerjoins use
/// it to flag matched build rows).
struct JoinKernel<'a> {
    kind: JoinKind,
    residual: &'a BoundPred,
    /// Null pad on the non-probe scheme (wide kinds only).
    pad: Tuple,
}

impl JoinKernel<'_> {
    fn probe_row<'t>(
        &self,
        prow: &Tuple,
        candidates: impl Iterator<Item = (usize, &'t Tuple)>,
        out: &mut Vec<Tuple>,
        stats: &mut ExecStats,
        mut on_match: impl FnMut(usize),
    ) {
        let mut matched = false;
        for (rid, crow) in candidates {
            stats.comparisons += 1;
            // Evaluate the residual on the virtual concatenation; the
            // wide tuple is only allocated for rows actually emitted.
            if self.residual.eval_split(prow, crow).is_true() {
                matched = true;
                on_match(rid);
                match self.kind {
                    JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter => {
                        out.push(prow.concat(crow));
                    }
                    JoinKind::Semi => {
                        out.push(prow.clone());
                        break;
                    }
                    JoinKind::Anti => break,
                }
            }
        }
        match self.kind {
            JoinKind::LeftOuter | JoinKind::FullOuter if !matched => {
                out.push(prow.concat(&self.pad));
            }
            JoinKind::Anti if !matched => out.push(prow.clone()),
            _ => {}
        }
    }
}

/// A worker's take-home: output rows tagged with their morsel index,
/// plus its private counter accumulator.
type WorkerOutput = (Vec<(usize, Vec<Tuple>)>, ExecStats);

/// Run `work` over `0..n_rows` split into fixed-size morsels, fanning
/// out to `cfg`-many scoped worker threads when it pays, and append the
/// produced rows to `out` **in morsel-index order**. Each worker gets a
/// private output buffer per morsel and a private [`ExecStats`]; since
/// morsels partition the probe range in order and every counter is a
/// plain sum, both the row order and the merged totals are identical to
/// a sequential run.
fn probe_in_morsels<F>(
    n_rows: usize,
    cfg: &ExecConfig,
    stats: &mut ExecStats,
    out: &mut Vec<Tuple>,
    work: F,
) where
    F: Fn(Range<usize>, &mut Vec<Tuple>, &mut ExecStats) + Sync,
{
    let morsel = cfg.morsel_rows.max(1);
    let n_morsels = n_rows.div_ceil(morsel);
    let threads = cfg.effective_threads().min(n_morsels.max(1));
    if threads <= 1 || n_morsels <= 1 {
        // Degenerate path (one worker or one morsel): a single pass on
        // the calling thread, writing straight into the caller's buffer
        // and counters — no spawn, no scratch allocation at all.
        work(0..n_rows, out, stats);
        return;
    }
    let next = AtomicUsize::new(0);
    let results: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced: Vec<(usize, Vec<Tuple>)> = Vec::new();
                    let mut local = ExecStats::new();
                    loop {
                        let m = next.fetch_add(1, Ordering::Relaxed);
                        if m >= n_morsels {
                            break;
                        }
                        let lo = m * morsel;
                        let hi = (lo + morsel).min(n_rows);
                        // Most joins emit about one row per probe row.
                        let mut buf = Vec::with_capacity(hi - lo);
                        work(lo..hi, &mut buf, &mut local);
                        produced.push((m, buf));
                    }
                    (produced, local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("probe worker panicked"))
            .collect()
    });
    let mut morsels: Vec<(usize, Vec<Tuple>)> = Vec::with_capacity(n_morsels);
    for (produced, local) in results {
        stats.merge(&local);
        morsels.extend(produced);
    }
    morsels.sort_unstable_by_key(|&(m, _)| m);
    for (_, buf) in morsels {
        out.extend(buf);
    }
}

/// Execute a plan against storage, accumulating counters into `stats`.
///
/// # Errors
/// [`ExecError`] for unknown tables, missing indexes, or unresolved
/// attributes.
pub fn execute(
    plan: &PhysPlan,
    storage: &Storage,
    stats: &mut ExecStats,
) -> Result<Relation, ExecError> {
    execute_with(plan, storage, stats, &ExecConfig::default())
}

/// [`execute`] with explicit [`ExecConfig`] — executor mode, thread
/// count, and morsel size. `cfg.mode` selects the engine: the default
/// [`crate::ExecMode::Pipelined`] fuses scan→filter→probe→project
/// spines into push-based pipelines; [`crate::ExecMode::Materializing`]
/// runs the classic operator-at-a-time path. Both produce bit-identical
/// rows, order, and work counters at any thread count.
///
/// # Errors
/// Same failure modes as [`execute`].
pub fn execute_with(
    plan: &PhysPlan,
    storage: &Storage,
    stats: &mut ExecStats,
    cfg: &ExecConfig,
) -> Result<Relation, ExecError> {
    let out = match cfg.mode {
        crate::ExecMode::Pipelined => crate::pipeline::run_pipelined(plan, storage, stats, cfg)?,
        crate::ExecMode::Materializing => run(plan, storage, stats, cfg)?,
    };
    stats.rows_output = out.len() as u64;
    Ok(out)
}

/// A join operand in the materializing engine: either a base table
/// borrowed straight out of storage (columnar mirror included) or an
/// owned intermediate from a recursive [`run`].
enum Operand<'a> {
    Table(&'a crate::storage::Table),
    Owned(Relation),
}

impl Operand<'_> {
    fn rel(&self) -> &Relation {
        match self {
            Operand::Table(t) => t.relation(),
            Operand::Owned(r) => r,
        }
    }

    fn columns(&self) -> Option<&ColumnSet> {
        match self {
            Operand::Table(t) => Some(t.columns()),
            Operand::Owned(_) => None,
        }
    }
}

/// Evaluate a join operand, borrowing base tables instead of cloning
/// them when the columnar kernels are on. The borrow replicates the
/// counters the recursive scan would have ticked (`tuples_retrieved`
/// plus the operator epilogue's `rows_materialized`), so totals are
/// identical to the plain recursion — it only skips the defensive
/// clone of the stored relation and keeps the columnar mirror in
/// reach for the hash build.
fn run_operand<'a>(
    plan: &PhysPlan,
    storage: &'a Storage,
    stats: &mut ExecStats,
    cfg: &ExecConfig,
) -> Result<Operand<'a>, ExecError> {
    if cfg.columnar {
        if let PhysPlan::Scan { rel } = plan {
            let t = storage.lookup_named(rel)?;
            stats.tuples_retrieved += t.len() as u64;
            stats.rows_materialized += t.len() as u64;
            return Ok(Operand::Table(t));
        }
    }
    run(plan, storage, stats, cfg).map(Operand::Owned)
}

fn run(
    plan: &PhysPlan,
    storage: &Storage,
    stats: &mut ExecStats,
    cfg: &ExecConfig,
) -> Result<Relation, ExecError> {
    let out = match plan {
        PhysPlan::Scan { rel } => {
            let t = storage.lookup_named(rel)?;
            stats.tuples_retrieved += t.len() as u64;
            t.relation().clone()
        }
        PhysPlan::Filter { input, pred }
            if cfg.columnar && matches!(input.as_ref(), PhysPlan::Scan { .. }) =>
        {
            // Vectorized scan-filter: evaluate the predicate over the
            // table's columnar mirror as one selection bitmap (zone
            // metadata skipping whole morsels where it can), then clone
            // only the selected rows. Counters replicate the recursive
            // path exactly: the child scan's `tuples_retrieved` and
            // `rows_materialized`, then one comparison per input row.
            let PhysPlan::Scan { rel } = input.as_ref() else {
                unreachable!("guard matched a scan input")
            };
            let t = storage.lookup_named(rel)?;
            stats.tuples_retrieved += t.len() as u64;
            stats.rows_materialized += t.len() as u64;
            let r = t.relation();
            let bound = bind_pred(pred, r.schema(), Some(storage.interner()))?;
            stats.comparisons += t.len() as u64;
            let mut skipped = 0u64;
            let mask = t.columns().eval_pred(&bound, &mut skipped).into_trues();
            stats.morsels_skipped += skipped;
            let mut rows = Vec::with_capacity(mask.count_ones());
            mask.for_each_one_in(0, t.len(), |i| rows.push(r.rows()[i].clone()));
            Relation::from_distinct_rows(r.schema().clone(), rows)
        }
        PhysPlan::Filter { input, pred } => {
            let rel = run(input, storage, stats, cfg)?;
            let bound = bind_pred(pred, rel.schema(), Some(storage.interner()))?;
            let rows: Vec<Tuple> = rel
                .iter()
                .filter(|t| {
                    stats.comparisons += 1;
                    bound.eval(t).is_true()
                })
                .cloned()
                .collect();
            Relation::from_distinct_rows(rel.schema().clone(), rows)
        }
        PhysPlan::Project { input, attrs } => {
            let rel = run(input, storage, stats, cfg)?;
            fro_algebra::ops::project(&rel, attrs, true).map_err(ExecError::from)?
        }
        PhysPlan::HashJoin {
            kind,
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
        } => {
            if probe_keys.len() != build_keys.len() || probe_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let probe_rel = run(probe, storage, stats, cfg)?;
            let build_op = run_operand(build, storage, stats, cfg)?;
            hash_join(
                *kind,
                &probe_rel,
                build_op.rel(),
                probe_keys,
                build_keys,
                residual,
                Some(storage.interner()),
                stats,
                cfg,
                build_op.columns(),
            )?
        }
        PhysPlan::SemiReduce {
            input,
            source,
            input_keys,
            source_keys,
            pass: _,
        } => {
            if input_keys.len() != source_keys.len() || input_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let input_rel = run(input, storage, stats, cfg)?;
            let source_op = run_operand(source, storage, stats, cfg)?;
            let n_in = input_rel.len() as u64;
            let out = hash_join(
                JoinKind::Semi,
                &input_rel,
                source_op.rel(),
                input_keys,
                source_keys,
                &Pred::always(),
                Some(storage.interner()),
                stats,
                cfg,
                source_op.columns(),
            )?;
            stats.rows_reduced += n_in - out.len() as u64;
            stats.reducer_passes += 1;
            out
        }
        PhysPlan::IndexJoin {
            kind,
            outer,
            inner,
            outer_keys,
            inner_keys,
            residual,
        } => {
            if outer_keys.len() != inner_keys.len() || outer_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let outer_rel = run(outer, storage, stats, cfg)?;
            index_join(
                *kind,
                &outer_rel,
                inner,
                outer_keys,
                inner_keys,
                residual,
                Some(storage.interner()),
                storage,
                stats,
                cfg,
            )?
        }
        PhysPlan::MergeJoin {
            kind,
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            if left_keys.len() != right_keys.len() || left_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let l = run(left, storage, stats, cfg)?;
            let r = run(right, storage, stats, cfg)?;
            merge_join(
                *kind,
                &l,
                &r,
                left_keys,
                right_keys,
                residual,
                Some(storage.interner()),
                stats,
            )?
        }
        PhysPlan::NlJoin {
            kind,
            left,
            right,
            pred,
        } => {
            let l = run(left, storage, stats, cfg)?;
            let r = run(right, storage, stats, cfg)?;
            nl_join(*kind, &l, &r, pred, Some(storage.interner()), stats, cfg)?
        }
        PhysPlan::GroupCount {
            input,
            group_attrs,
            counted,
        } => {
            let rel = run(input, storage, stats, cfg)?;
            group_count_partitioned(&rel, group_attrs, counted.as_ref(), cfg)?
        }
        PhysPlan::Goj {
            left,
            right,
            pred,
            subset,
        } => {
            let l = run(left, storage, stats, cfg)?;
            let r = run(right, storage, stats, cfg)?;
            stats.comparisons += (l.len() * r.len()) as u64;
            fro_algebra::ops::goj(&l, &r, pred, subset).map_err(ExecError::from)?
        }
    };
    stats.rows_materialized += out.len() as u64;
    Ok(out)
}

/// Deterministic partitioned parallel group-by-count, reusing the
/// hash-join split: the radix partition of a group key is a pure
/// function of its hash ([`partition_of`]), so per-partition count
/// maps hold exactly the groups of one global map, just spread over
/// `p` maps.
///
/// Output is **bit-identical** to [`fro_algebra::ops::group_count`]
/// at every thread/partition/morsel setting. The sequential operator
/// emits groups in first-seen input order; here each partition records
/// the global row index at which it first saw a group, and the final
/// merge sorts all groups by that index — which *is* first-seen input
/// order, because a group's key hash (hence partition) never changes,
/// so the partition that owns a group saw every one of its rows.
///
/// Like the sequential operator, this ticks no [`ExecStats`] counters;
/// [`run`] adds `rows_materialized` for the output afterwards.
pub(crate) fn group_count_partitioned(
    input: &Relation,
    group_attrs: &[Attr],
    counted: Option<&Attr>,
    cfg: &ExecConfig,
) -> Result<Relation, ExecError> {
    let rows = input.rows();
    let morsel = cfg.morsel_rows.max(1);
    let n_morsels = rows.len().div_ceil(morsel);
    let threads = cfg.effective_threads().min(n_morsels.max(1));
    if threads <= 1 || n_morsels <= 1 {
        // Degenerate parallelism: the sequential operator *is* the
        // specification — run it directly.
        return fro_algebra::ops::group_count(input, group_attrs, counted).map_err(ExecError::from);
    }

    // Resolve columns exactly as the sequential operator does, so the
    // error surface is identical.
    let mut group_cols = Vec::with_capacity(group_attrs.len());
    for a in group_attrs {
        group_cols.push(
            input
                .schema()
                .index_of(a)
                .ok_or_else(|| AlgebraError::BadProjection(a.to_string()))
                .map_err(ExecError::from)?,
        );
    }
    let counted_col = match counted {
        None => None,
        Some(a) => Some(
            input
                .schema()
                .index_of(a)
                .ok_or_else(|| AlgebraError::BadProjection(a.to_string()))
                .map_err(ExecError::from)?,
        ),
    };
    let mut attrs = group_attrs.to_vec();
    attrs.push(Attr::new("agg", "count"));
    let schema = Arc::new(Schema::new(attrs).map_err(ExecError::from)?);

    let p = cfg.effective_partitions(rows.len());

    // Phase 1 — parallel scatter: workers claim morsels and emit each
    // row's group-key hash. Group keys may legitimately contain nulls
    // (unlike join keys), so the hash covers the projected values
    // as-is.
    let group_hash = |row: &Tuple| -> u64 {
        let mut h = DefaultHasher::new();
        for &c in &group_cols {
            row.get(c).hash(&mut h);
        }
        h.finish()
    };
    let next = AtomicUsize::new(0);
    let results: Vec<(usize, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced: Vec<(usize, Vec<u64>)> = Vec::new();
                    loop {
                        let m = next.fetch_add(1, Ordering::Relaxed);
                        if m >= n_morsels {
                            break;
                        }
                        let lo = m * morsel;
                        let hi = (lo + morsel).min(rows.len());
                        produced.push((m, rows[lo..hi].iter().map(group_hash).collect()));
                    }
                    produced
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("group scatter worker panicked"))
            .collect()
    });
    let mut scatters: Vec<(usize, Vec<u64>)> = results;
    scatters.sort_unstable_by_key(|&(m, _)| m);

    // Phase 2 — per-partition counting: partitions are disjoint, so
    // workers fold whole partitions independently. Each group records
    // the global index of its first row.
    type Part = Vec<(usize, Tuple, i64)>; // (first_rid, key, count)
    let count_part = |pt: usize| -> Part {
        let mut counts: HashMap<Tuple, (usize, i64)> = HashMap::new();
        for (m, hashes) in &scatters {
            let lo = m * morsel;
            for (i, &h) in hashes.iter().enumerate() {
                if partition_of(h, p) != pt {
                    continue;
                }
                let rid = lo + i;
                let row = &rows[rid];
                let contributes = match counted_col {
                    None => true,
                    Some(c) => !row.get(c).is_null(),
                };
                match counts.entry(row.project(&group_cols)) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((rid, i64::from(contributes)));
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().1 += i64::from(contributes);
                    }
                }
            }
        }
        counts
            .into_iter()
            .map(|(key, (first, n))| (first, key, n))
            .collect()
    };
    let count_threads = threads.min(p);
    let mut groups: Vec<(usize, Tuple, i64)> = if count_threads <= 1 {
        (0..p).flat_map(count_part).collect()
    } else {
        let next_part = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..count_threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine: Part = Vec::new();
                        loop {
                            let pt = next_part.fetch_add(1, Ordering::Relaxed);
                            if pt >= p {
                                break;
                            }
                            mine.extend(count_part(pt));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("group count worker panicked"))
                .collect()
        })
    };

    // Merge: first-occurrence global row indices are unique, and
    // sorting by them reproduces the sequential first-seen emission
    // order exactly.
    groups.sort_unstable_by_key(|&(first, _, _)| first);
    let out_rows = groups
        .into_iter()
        .map(|(_, key, n)| key.concat(&Tuple::new(vec![Value::Int(n)])))
        .collect();
    Ok(Relation::from_distinct_rows(schema, out_rows))
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn hash_join(
    kind: JoinKind,
    probe: &Relation,
    build: &Relation,
    probe_keys: &[Attr],
    build_keys: &[Attr],
    residual: &Pred,
    it: Option<&Interner>,
    stats: &mut ExecStats,
    cfg: &ExecConfig,
    build_colset: Option<&ColumnSet>,
) -> Result<Relation, ExecError> {
    hash_join_phased(
        kind,
        probe,
        build,
        probe_keys,
        build_keys,
        residual,
        it,
        stats,
        cfg,
        build_colset,
    )
    .map(|(rel, _, _)| rel)
}

/// [`hash_join`] exposed for the engine bench with per-phase wall-clock:
/// returns the join result plus `(build_secs, probe_secs)`. The timings
/// are measurement side-channels only — they never enter [`ExecStats`],
/// so counter equality across configurations is unaffected.
///
/// # Errors
/// Same failure modes as [`execute`]: unresolved key attributes or an
/// unconcatenable pair of schemas.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn hash_join_timed(
    kind: JoinKind,
    probe: &Relation,
    build: &Relation,
    probe_keys: &[Attr],
    build_keys: &[Attr],
    residual: &Pred,
    stats: &mut ExecStats,
    cfg: &ExecConfig,
) -> Result<(Relation, f64, f64), ExecError> {
    hash_join_phased(
        kind, probe, build, probe_keys, build_keys, residual, None, stats, cfg, None,
    )
}

#[allow(clippy::too_many_arguments)]
fn hash_join_phased(
    kind: JoinKind,
    probe: &Relation,
    build: &Relation,
    probe_keys: &[Attr],
    build_keys: &[Attr],
    residual: &Pred,
    it: Option<&Interner>,
    stats: &mut ExecStats,
    cfg: &ExecConfig,
    build_colset: Option<&ColumnSet>,
) -> Result<(Relation, f64, f64), ExecError> {
    let probe_cols = resolve_cols(probe.schema(), probe_keys)?;
    let build_cols = resolve_cols(build.schema(), build_keys)?;

    let wide = matches!(
        kind,
        JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter
    );
    // Semi/anti joins evaluate the residual on the concatenated scheme
    // even though they output only the probe side.
    let concat_schema = Arc::new(probe.schema().concat(build.schema())?);
    let out_schema: Arc<Schema> = if wide {
        concat_schema.clone()
    } else {
        probe.schema().clone()
    };
    let residual_bound = bind_pred(residual, &concat_schema, it)?;

    // Build once into a shared immutable partitioned table; probe
    // workers only ever read it. The partition count resolves against
    // the actual build cardinality when the config says "auto".
    let p = cfg.effective_partitions(build.len());
    let build_start = Instant::now();
    let table = JoinTable::build(build.rows(), &build_cols, p, cfg, stats, build_colset);
    let build_secs = build_start.elapsed().as_secs_f64();
    let kernel = JoinKernel {
        kind,
        residual: &residual_bound,
        pad: Tuple::nulls(build.schema().len()),
    };
    // Full outerjoins must emit build rows no probe morsel matched;
    // matches are flagged through atomics so workers need no locks.
    // Relaxed suffices: the flags are only read after the scope joins.
    let build_matched: Option<Vec<AtomicBool>> = (kind == JoinKind::FullOuter)
        .then(|| (0..build.len()).map(|_| AtomicBool::new(false)).collect());

    let probe_start = Instant::now();
    let mut rows = Vec::new();
    probe_in_morsels(probe.len(), cfg, stats, &mut rows, |range, buf, local| {
        for prow in &probe.rows()[range] {
            // One hash per probe row, reused for partition selection
            // and bucket lookup.
            let h = hash_key(prow, &probe_cols);
            if let Some(h) = h {
                local.partition.add_probe(table.partition_index(h));
            }
            kernel.probe_row(
                prow,
                table.candidates_hashed(h, prow, &probe_cols),
                buf,
                local,
                |rid| {
                    if let Some(flags) = &build_matched {
                        flags[rid].store(true, Ordering::Relaxed);
                    }
                },
            );
        }
    });

    if let Some(flags) = build_matched {
        let probe_pad = Tuple::nulls(probe.schema().len());
        for (rid, brow) in build.rows().iter().enumerate() {
            if !flags[rid].load(Ordering::Relaxed) {
                rows.push(probe_pad.concat(brow));
            }
        }
        dedup_rows(&mut rows);
    }
    let probe_secs = probe_start.elapsed().as_secs_f64();
    Ok((
        Relation::from_distinct_rows(out_schema, rows),
        build_secs,
        probe_secs,
    ))
}

#[allow(clippy::too_many_arguments)]
fn index_join(
    kind: JoinKind,
    outer: &Relation,
    inner_name: &str,
    outer_keys: &[Attr],
    inner_keys: &[Attr],
    residual: &Pred,
    it: Option<&Interner>,
    storage: &Storage,
    stats: &mut ExecStats,
    cfg: &ExecConfig,
) -> Result<Relation, ExecError> {
    if kind == JoinKind::FullOuter {
        return Err(ExecError::Algebra(fro_algebra::AlgebraError::BadUnion(
            "index join cannot implement a full outerjoin (unmatched inner rows are unreachable)"
                .into(),
        )));
    }
    let inner_table = storage.lookup_named(inner_name)?;
    let inner_rel = inner_table.relation();
    let mut inner_cols = resolve_cols(inner_rel.schema(), inner_keys)?;
    // The index stores sorted key columns; align outer key order with it.
    let mut outer_cols = resolve_cols(outer.schema(), outer_keys)?;
    let mut pairs: Vec<(usize, usize)> = inner_cols
        .iter()
        .copied()
        .zip(outer_cols.iter().copied())
        .collect();
    pairs.sort_unstable_by_key(|&(ic, _)| ic);
    inner_cols = pairs.iter().map(|&(ic, _)| ic).collect();
    outer_cols = pairs.iter().map(|&(_, oc)| oc).collect();

    let index = inner_table
        .index_on(&inner_cols)
        .ok_or_else(|| ExecError::MissingIndex {
            table: inner_name.to_owned(),
            attrs: inner_keys
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
        })?;

    let wide = matches!(kind, JoinKind::Inner | JoinKind::LeftOuter);
    let concat_schema = Arc::new(outer.schema().concat(inner_rel.schema())?);
    let out_schema = if wide {
        concat_schema.clone()
    } else {
        outer.schema().clone()
    };
    let residual_bound = bind_pred(residual, &concat_schema, it)?;

    let kernel = JoinKernel {
        kind,
        residual: &residual_bound,
        pad: Tuple::nulls(inner_rel.schema().len()),
    };
    let inner_rows = inner_rel.rows();
    let mut rows = Vec::new();
    probe_in_morsels(outer.len(), cfg, stats, &mut rows, |range, buf, local| {
        // One key scratch buffer per morsel, reused across its rows.
        let mut key: Vec<Value> = Vec::with_capacity(outer_cols.len());
        for orow in &outer.rows()[range] {
            local.index_probes += 1;
            let rids: &[usize] = if key_into(orow, &outer_cols, &mut key) {
                index.lookup(&key)
            } else {
                &[]
            };
            local.tuples_retrieved += rids.len() as u64;
            kernel.probe_row(
                orow,
                rids.iter().map(|&rid| (rid, &inner_rows[rid])),
                buf,
                local,
                |_| {},
            );
        }
    });
    Ok(Relation::from_distinct_rows(out_schema, rows))
}

/// Sort-merge join: sort row indices of both inputs on their key
/// columns, then merge equal-key groups. Rows with a null key never
/// match (SQL equality) and are emitted padded/kept for the outer/anti
/// flavors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_join(
    kind: JoinKind,
    left: &Relation,
    right: &Relation,
    left_keys: &[Attr],
    right_keys: &[Attr],
    residual: &Pred,
    it: Option<&Interner>,
    stats: &mut ExecStats,
) -> Result<Relation, ExecError> {
    let lcols = resolve_cols(left.schema(), left_keys)?;
    let rcols = resolve_cols(right.schema(), right_keys)?;
    let wide = matches!(
        kind,
        JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter
    );
    let concat_schema = Arc::new(left.schema().concat(right.schema())?);
    let out_schema = if wide {
        concat_schema.clone()
    } else {
        left.schema().clone()
    };
    let bound = bind_pred(residual, &concat_schema, it)?;

    // Sorted index runs over non-null-keyed rows; null-keyed rows go
    // straight to the unmatched sets.
    let key_at = |rel: &Relation, cols: &[usize], i: usize| -> Option<Vec<Value>> {
        key_of(&rel.rows()[i], cols)
    };
    let mut lsorted: Vec<(Vec<Value>, usize)> = Vec::with_capacity(left.len());
    let mut lnull: Vec<usize> = Vec::new();
    for i in 0..left.len() {
        match key_at(left, &lcols, i) {
            Some(k) => lsorted.push((k, i)),
            None => lnull.push(i),
        }
    }
    lsorted.sort();
    let mut rsorted: Vec<(Vec<Value>, usize)> = Vec::with_capacity(right.len());
    let mut rnull: Vec<usize> = Vec::new();
    for i in 0..right.len() {
        match key_at(right, &rcols, i) {
            Some(k) => rsorted.push((k, i)),
            None => rnull.push(i),
        }
    }
    rsorted.sort();
    stats.comparisons += (lsorted.len() + rsorted.len()) as u64; // sort work proxy

    let pad_r = Tuple::nulls(right.schema().len());
    let pad_l = Tuple::nulls(left.schema().len());
    let mut left_matched = vec![false; left.len()];
    let mut right_matched = vec![false; right.len()];
    let mut rows = Vec::new();

    let (mut i, mut j) = (0usize, 0usize);
    while i < lsorted.len() && j < rsorted.len() {
        match lsorted[i].0.cmp(&rsorted[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Group boundaries.
                let key = lsorted[i].0.clone();
                let i0 = i;
                while i < lsorted.len() && lsorted[i].0 == key {
                    i += 1;
                }
                let j0 = j;
                while j < rsorted.len() && rsorted[j].0 == key {
                    j += 1;
                }
                for &(_, li) in &lsorted[i0..i] {
                    for &(_, rj) in &rsorted[j0..j] {
                        let cat = left.rows()[li].concat(&right.rows()[rj]);
                        stats.comparisons += 1;
                        if bound.eval(&cat).is_true() {
                            left_matched[li] = true;
                            right_matched[rj] = true;
                            if wide {
                                rows.push(cat);
                            }
                        }
                    }
                }
            }
        }
    }

    match kind {
        JoinKind::Inner | JoinKind::FullOuter | JoinKind::LeftOuter => {
            if kind != JoinKind::Inner {
                for (li, lrow) in left.rows().iter().enumerate() {
                    if !left_matched[li] {
                        rows.push(lrow.concat(&pad_r));
                    }
                }
            }
            if kind == JoinKind::FullOuter {
                for (rj, rrow) in right.rows().iter().enumerate() {
                    if !right_matched[rj] {
                        rows.push(pad_l.concat(rrow));
                    }
                }
            }
        }
        JoinKind::Semi => {
            for (li, lrow) in left.rows().iter().enumerate() {
                if left_matched[li] {
                    rows.push(lrow.clone());
                }
            }
        }
        JoinKind::Anti => {
            for (li, lrow) in left.rows().iter().enumerate() {
                if !left_matched[li] {
                    rows.push(lrow.clone());
                }
            }
        }
    }
    let _ = (lnull, rnull); // null-keyed rows are covered by the unmatched passes
    if kind == JoinKind::FullOuter {
        dedup_rows(&mut rows);
    }
    Ok(Relation::from_distinct_rows(out_schema, rows))
}

pub(crate) fn nl_join(
    kind: JoinKind,
    left: &Relation,
    right: &Relation,
    pred: &Pred,
    it: Option<&Interner>,
    stats: &mut ExecStats,
    cfg: &ExecConfig,
) -> Result<Relation, ExecError> {
    let concat_schema = Arc::new(left.schema().concat(right.schema())?);
    let wide = matches!(
        kind,
        JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter
    );
    let out_schema = if wide {
        concat_schema.clone()
    } else {
        left.schema().clone()
    };
    let bound = bind_pred(pred, &concat_schema, it)?;
    let kernel = JoinKernel {
        kind,
        residual: &bound,
        pad: Tuple::nulls(right.schema().len()),
    };
    // Nested loops are the degenerate kernel: every right row is a
    // candidate, so `comparisons` ticks once per pair, as before.
    let right_matched: Option<Vec<AtomicBool>> = (kind == JoinKind::FullOuter)
        .then(|| (0..right.len()).map(|_| AtomicBool::new(false)).collect());
    let mut rows = Vec::new();
    probe_in_morsels(left.len(), cfg, stats, &mut rows, |range, buf, local| {
        for lrow in &left.rows()[range] {
            kernel.probe_row(lrow, right.rows().iter().enumerate(), buf, local, |ri| {
                if let Some(flags) = &right_matched {
                    flags[ri].store(true, Ordering::Relaxed);
                }
            });
        }
    });
    if let Some(flags) = right_matched {
        let left_pad = Tuple::nulls(left.schema().len());
        for (ri, rrow) in right.rows().iter().enumerate() {
            if !flags[ri].load(Ordering::Relaxed) {
                rows.push(left_pad.concat(rrow));
            }
        }
        dedup_rows(&mut rows);
    }
    Ok(Relation::from_distinct_rows(out_schema, rows))
}

/// Execute a plan and render an `EXPLAIN ANALYZE`-style report: the
/// plan tree annotated with each operator's *actual* output rows.
///
/// # Errors
/// Same failure modes as [`execute`].
pub fn explain_analyze(
    plan: &PhysPlan,
    storage: &Storage,
) -> Result<(Relation, String), ExecError> {
    explain_analyze_with(plan, storage, &ExecConfig::default())
}

/// [`explain_analyze`] with explicit [`ExecConfig`]. The report —
/// per-operator row counts and counter totals — is identical at any
/// thread count. Under the (default) pipelined mode the report gains a
/// trailing pipeline breakdown: which operators fused into each
/// pipeline and where breakers cut the plan.
///
/// # Errors
/// Same failure modes as [`execute`].
pub fn explain_analyze_with(
    plan: &PhysPlan,
    storage: &Storage,
    cfg: &ExecConfig,
) -> Result<(Relation, String), ExecError> {
    if cfg.mode == crate::ExecMode::Pipelined {
        return crate::pipeline::explain_pipelined(plan, storage, cfg);
    }
    let mut stats = ExecStats::new();
    let mut lines: Vec<(usize, String, u64)> = Vec::new();
    let rel = annotate(plan, storage, &mut stats, 0, &mut lines, cfg)?;
    stats.rows_output = rel.len() as u64;
    Ok((rel, render_report(&lines, &stats)))
}

/// Render the `EXPLAIN ANALYZE` body shared by both executors: the
/// indented per-operator row counts, the counter totals, and (when any
/// hash join ran) the per-partition build/probe breakdown. The
/// breakdown is thread-count and morsel-size invariant (counters merge
/// deterministically); it *does* change shape with the partition count,
/// which is exactly what it is for.
pub(crate) fn render_report(lines: &[(usize, String, u64)], stats: &ExecStats) -> String {
    let mut out = String::new();
    for (depth, label, rows) in lines {
        out.push_str(&"  ".repeat(*depth));
        out.push_str(label);
        out.push_str(&format!("  (rows={rows})\n"));
    }
    out.push_str(&format!("totals: {stats}\n"));
    if stats.partition.used() > 0 {
        out.push_str(&format!(
            "partitions: P={} build={:?} probe={:?}\n",
            stats.partition.used(),
            stats.partition.build_rows(),
            stats.partition.probe_rows()
        ));
    }
    out
}

fn annotate(
    plan: &PhysPlan,
    storage: &Storage,
    stats: &mut ExecStats,
    depth: usize,
    lines: &mut Vec<(usize, String, u64)>,
    cfg: &ExecConfig,
) -> Result<Relation, ExecError> {
    // Reserve this node's line before recursing so the report reads in
    // plan (pre-)order while row counts are filled post-execution.
    let slot = lines.len();
    lines.push((depth, String::new(), 0));

    let (label, rel) = match plan {
        PhysPlan::Scan { rel } => {
            let t = storage.lookup_named(rel)?;
            stats.tuples_retrieved += t.len() as u64;
            (format!("Scan {rel}"), t.relation().clone())
        }
        PhysPlan::Filter { input, pred } => {
            let child = annotate(input, storage, stats, depth + 1, lines, cfg)?;
            let bound = bind_pred(pred, child.schema(), Some(storage.interner()))?;
            let rows: Vec<Tuple> = child
                .iter()
                .filter(|t| {
                    stats.comparisons += 1;
                    bound.eval(t).is_true()
                })
                .cloned()
                .collect();
            (
                format!("Filter [{pred}]"),
                Relation::from_distinct_rows(child.schema().clone(), rows),
            )
        }
        PhysPlan::Project { input, attrs } => {
            let child = annotate(input, storage, stats, depth + 1, lines, cfg)?;
            (
                "Project".to_owned(),
                fro_algebra::ops::project(&child, attrs, true).map_err(ExecError::from)?,
            )
        }
        PhysPlan::HashJoin {
            kind,
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
        } => {
            if probe_keys.len() != build_keys.len() || probe_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let p = annotate(probe, storage, stats, depth + 1, lines, cfg)?;
            let b = annotate(build, storage, stats, depth + 1, lines, cfg)?;
            (
                format!("HashJoin({kind})"),
                hash_join(
                    *kind,
                    &p,
                    &b,
                    probe_keys,
                    build_keys,
                    residual,
                    Some(storage.interner()),
                    stats,
                    cfg,
                    None,
                )?,
            )
        }
        PhysPlan::SemiReduce {
            input,
            source,
            input_keys,
            source_keys,
            pass,
        } => {
            if input_keys.len() != source_keys.len() || input_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let i = annotate(input, storage, stats, depth + 1, lines, cfg)?;
            let s = annotate(source, storage, stats, depth + 1, lines, cfg)?;
            let n_in = i.len() as u64;
            let out = hash_join(
                JoinKind::Semi,
                &i,
                &s,
                input_keys,
                source_keys,
                &Pred::always(),
                Some(storage.interner()),
                stats,
                cfg,
                None,
            )?;
            stats.rows_reduced += n_in - out.len() as u64;
            stats.reducer_passes += 1;
            (format!("SemiReduce({pass})"), out)
        }
        PhysPlan::IndexJoin {
            kind,
            outer,
            inner,
            outer_keys,
            inner_keys,
            residual,
        } => {
            if outer_keys.len() != inner_keys.len() || outer_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let o = annotate(outer, storage, stats, depth + 1, lines, cfg)?;
            (
                format!("IndexJoin({kind}) {inner}"),
                index_join(
                    *kind,
                    &o,
                    inner,
                    outer_keys,
                    inner_keys,
                    residual,
                    Some(storage.interner()),
                    storage,
                    stats,
                    cfg,
                )?,
            )
        }
        PhysPlan::MergeJoin {
            kind,
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            if left_keys.len() != right_keys.len() || left_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let l = annotate(left, storage, stats, depth + 1, lines, cfg)?;
            let r = annotate(right, storage, stats, depth + 1, lines, cfg)?;
            (
                format!("MergeJoin({kind})"),
                merge_join(
                    *kind,
                    &l,
                    &r,
                    left_keys,
                    right_keys,
                    residual,
                    Some(storage.interner()),
                    stats,
                )?,
            )
        }
        PhysPlan::NlJoin {
            kind,
            left,
            right,
            pred,
        } => {
            let l = annotate(left, storage, stats, depth + 1, lines, cfg)?;
            let r = annotate(right, storage, stats, depth + 1, lines, cfg)?;
            (
                format!("NlJoin({kind})"),
                nl_join(*kind, &l, &r, pred, Some(storage.interner()), stats, cfg)?,
            )
        }
        PhysPlan::GroupCount {
            input,
            group_attrs,
            counted,
        } => {
            let rel = annotate(input, storage, stats, depth + 1, lines, cfg)?;
            (
                "GroupCount".to_owned(),
                fro_algebra::ops::group_count(&rel, group_attrs, counted.as_ref())
                    .map_err(ExecError::from)?,
            )
        }
        PhysPlan::Goj {
            left,
            right,
            pred,
            subset,
        } => {
            let l = annotate(left, storage, stats, depth + 1, lines, cfg)?;
            let r = annotate(right, storage, stats, depth + 1, lines, cfg)?;
            stats.comparisons += (l.len() * r.len()) as u64;
            (
                "Goj".to_owned(),
                fro_algebra::ops::goj(&l, &r, pred, subset).map_err(ExecError::from)?,
            )
        }
    };
    stats.rows_materialized += rel.len() as u64;
    lines[slot] = (depth, label, rel.len() as u64);
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::ops;

    fn storage() -> Storage {
        let mut s = Storage::new();
        s.insert("R1", Relation::from_ints("R1", &["k1"], &[&[1]]));
        s.insert(
            "R2",
            Relation::from_ints("R2", &["k2"], &[&[1], &[2], &[3]]),
        );
        s.insert(
            "R3",
            Relation::from_ints("R3", &["k3"], &[&[2], &[3], &[4]]),
        );
        s.create_index("R1", &[Attr::parse("R1.k1")]);
        s.create_index("R2", &[Attr::parse("R2.k2")]);
        s.create_index("R3", &[Attr::parse("R3.k3")]);
        s
    }

    #[test]
    fn scan_counts_tuples() {
        let s = storage();
        let mut st = ExecStats::new();
        let out = execute(&PhysPlan::scan("R2"), &s, &mut st).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(st.tuples_retrieved, 3);
        assert_eq!(st.rows_output, 3);
    }

    #[test]
    fn unknown_table_errors() {
        let s = storage();
        let mut st = ExecStats::new();
        assert!(matches!(
            execute(&PhysPlan::scan("nope"), &s, &mut st),
            Err(ExecError::UnknownTable { .. })
        ));
    }

    #[test]
    fn hash_join_matches_reference_join() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::Inner,
            probe: Box::new(PhysPlan::scan("R2")),
            build: Box::new(PhysPlan::scan("R3")),
            probe_keys: vec![Attr::parse("R2.k2")],
            build_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::join(
            s.get("R2").unwrap().relation(),
            s.get("R3").unwrap().relation(),
            &Pred::eq_attr("R2.k2", "R3.k3"),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
        assert_eq!(st.hash_build_rows, 3);
    }

    #[test]
    fn hash_left_outer_pads() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::LeftOuter,
            probe: Box::new(PhysPlan::scan("R2")),
            build: Box::new(PhysPlan::scan("R3")),
            probe_keys: vec![Attr::parse("R2.k2")],
            build_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::outerjoin(
            s.get("R2").unwrap().relation(),
            s.get("R3").unwrap().relation(),
            &Pred::eq_attr("R2.k2", "R3.k3"),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
    }

    #[test]
    fn hash_semi_and_anti() {
        let s = storage();
        for (kind, expect_len) in [(JoinKind::Semi, 2), (JoinKind::Anti, 1)] {
            let mut st = ExecStats::new();
            let plan = PhysPlan::HashJoin {
                kind,
                probe: Box::new(PhysPlan::scan("R2")),
                build: Box::new(PhysPlan::scan("R3")),
                probe_keys: vec![Attr::parse("R2.k2")],
                build_keys: vec![Attr::parse("R3.k3")],
                residual: Pred::always(),
            };
            let out = execute(&plan, &s, &mut st).unwrap();
            assert_eq!(out.len(), expect_len, "{kind}");
            assert_eq!(out.schema().len(), 1);
        }
    }

    #[test]
    fn index_join_counts_retrievals_not_scans() {
        let s = storage();
        let mut st = ExecStats::new();
        // R1 (1 row) index-joins into R2: 1 scan + 1 probe + 1 match.
        let plan = PhysPlan::IndexJoin {
            kind: JoinKind::Inner,
            outer: Box::new(PhysPlan::scan("R1")),
            inner: "R2".into(),
            outer_keys: vec![Attr::parse("R1.k1")],
            inner_keys: vec![Attr::parse("R2.k2")],
            residual: Pred::always(),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(st.tuples_retrieved, 2); // scan R1 (1) + retrieved match (1)
        assert_eq!(st.index_probes, 1);
    }

    #[test]
    fn index_join_missing_index_errors() {
        let mut s = storage();
        s.insert("R4", Relation::from_ints("R4", &["k4"], &[&[1]]));
        let mut st = ExecStats::new();
        let plan = PhysPlan::IndexJoin {
            kind: JoinKind::Inner,
            outer: Box::new(PhysPlan::scan("R1")),
            inner: "R4".into(),
            outer_keys: vec![Attr::parse("R1.k1")],
            inner_keys: vec![Attr::parse("R4.k4")],
            residual: Pred::always(),
        };
        assert!(matches!(
            execute(&plan, &s, &mut st),
            Err(ExecError::MissingIndex { .. })
        ));
    }

    #[test]
    fn index_left_outer_join() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::IndexJoin {
            kind: JoinKind::LeftOuter,
            outer: Box::new(PhysPlan::scan("R2")),
            inner: "R3".into(),
            outer_keys: vec![Attr::parse("R2.k2")],
            inner_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::outerjoin(
            s.get("R2").unwrap().relation(),
            s.get("R3").unwrap().relation(),
            &Pred::eq_attr("R2.k2", "R3.k3"),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
        // Scan R2 (3) + retrieved matches (2).
        assert_eq!(st.tuples_retrieved, 5);
    }

    #[test]
    fn nl_join_arbitrary_predicate() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::NlJoin {
            kind: JoinKind::Inner,
            left: Box::new(PhysPlan::scan("R2")),
            right: Box::new(PhysPlan::scan("R3")),
            pred: Pred::cmp_attr("R2.k2", fro_algebra::CmpOp::Gt, "R3.k3"),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        // R2 values {1,2,3} vs R3 {2,3,4}: pairs with k2 > k3: (3,2).
        assert_eq!(out.len(), 1);
        assert_eq!(st.comparisons, 9);
    }

    #[test]
    fn filter_and_project() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::Project {
            input: Box::new(PhysPlan::Filter {
                input: Box::new(PhysPlan::scan("R2")),
                pred: Pred::cmp_lit("R2.k2", fro_algebra::CmpOp::Ge, 2),
            }),
            attrs: vec![Attr::parse("R2.k2")],
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn example1_cost_asymmetry_in_miniature() {
        // Same plans as Example 1 with |R1|=1, |R2|=|R3|=3.
        let s = storage();

        // Plan A: (R2 → R3) first (scan R2, index into R3), then index
        // into R1 — retrieves 2·|R2|-ish tuples.
        let oj = PhysPlan::IndexJoin {
            kind: JoinKind::LeftOuter,
            outer: Box::new(PhysPlan::scan("R2")),
            inner: "R3".into(),
            outer_keys: vec![Attr::parse("R2.k2")],
            inner_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        let plan_a = PhysPlan::IndexJoin {
            kind: JoinKind::Semi, // R1 − (…) with R1 single row: emulate via probe into R1
            outer: Box::new(oj),
            inner: "R1".into(),
            outer_keys: vec![Attr::parse("R2.k2")],
            inner_keys: vec![Attr::parse("R1.k1")],
            residual: Pred::always(),
        };
        let mut st_a = ExecStats::new();
        execute(&plan_a, &s, &mut st_a).unwrap();

        // Plan B: (R1 − R2) → R3 driven from the single-row R1.
        let jn = PhysPlan::IndexJoin {
            kind: JoinKind::Inner,
            outer: Box::new(PhysPlan::scan("R1")),
            inner: "R2".into(),
            outer_keys: vec![Attr::parse("R1.k1")],
            inner_keys: vec![Attr::parse("R2.k2")],
            residual: Pred::always(),
        };
        let plan_b = PhysPlan::IndexJoin {
            kind: JoinKind::LeftOuter,
            outer: Box::new(jn),
            inner: "R3".into(),
            outer_keys: vec![Attr::parse("R2.k2")],
            inner_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        let mut st_b = ExecStats::new();
        execute(&plan_b, &s, &mut st_b).unwrap();

        assert!(
            st_b.tuples_retrieved < st_a.tuples_retrieved,
            "join-first should retrieve fewer tuples: {st_b} vs {st_a}"
        );
        // Exact miniature numbers: plan B = scan R1 (1) + R2 match (1)
        // + R3 lookup for k=1 (0 matches) = 2.
        assert_eq!(st_b.tuples_retrieved, 2);
    }

    #[test]
    fn key_arity_mismatch_rejected() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::Inner,
            probe: Box::new(PhysPlan::scan("R2")),
            build: Box::new(PhysPlan::scan("R3")),
            probe_keys: vec![],
            build_keys: vec![],
            residual: Pred::always(),
        };
        assert!(matches!(
            execute(&plan, &s, &mut st),
            Err(ExecError::KeyArityMismatch)
        ));
    }

    #[test]
    fn goj_plan_matches_reference() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::Goj {
            left: Box::new(PhysPlan::scan("R2")),
            right: Box::new(PhysPlan::scan("R3")),
            pred: Pred::eq_attr("R2.k2", "R3.k3"),
            subset: vec![Attr::parse("R2.k2")],
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = fro_algebra::ops::goj(
            s.get("R2").unwrap().relation(),
            s.get("R3").unwrap().relation(),
            &Pred::eq_attr("R2.k2", "R3.k3"),
            &[Attr::parse("R2.k2")],
        )
        .unwrap();
        assert!(out.set_eq(&expect));
    }

    #[test]
    fn full_outer_hash_join_matches_reference() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::FullOuter,
            probe: Box::new(PhysPlan::scan("R2")),
            build: Box::new(PhysPlan::scan("R3")),
            probe_keys: vec![Attr::parse("R2.k2")],
            build_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::full_outerjoin(
            s.get("R2").unwrap().relation(),
            s.get("R3").unwrap().relation(),
            &Pred::eq_attr("R2.k2", "R3.k3"),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
        // R2 {1,2,3} vs R3 {2,3,4}: matches (2,3) + R2-unmatched (1) +
        // R3-unmatched (4) = 4 rows.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn full_outer_nl_join_matches_reference() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::NlJoin {
            kind: JoinKind::FullOuter,
            left: Box::new(PhysPlan::scan("R2")),
            right: Box::new(PhysPlan::scan("R3")),
            pred: Pred::eq_attr("R2.k2", "R3.k3"),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::full_outerjoin(
            s.get("R2").unwrap().relation(),
            s.get("R3").unwrap().relation(),
            &Pred::eq_attr("R2.k2", "R3.k3"),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
    }

    #[test]
    fn full_outer_index_join_rejected() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::IndexJoin {
            kind: JoinKind::FullOuter,
            outer: Box::new(PhysPlan::scan("R2")),
            inner: "R3".into(),
            outer_keys: vec![Attr::parse("R2.k2")],
            inner_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        assert!(execute(&plan, &s, &mut st).is_err());
    }

    #[test]
    fn explain_analyze_reports_actual_rows() {
        let s = storage();
        let plan = PhysPlan::Filter {
            input: Box::new(PhysPlan::IndexJoin {
                kind: JoinKind::LeftOuter,
                outer: Box::new(PhysPlan::scan("R2")),
                inner: "R3".into(),
                outer_keys: vec![Attr::parse("R2.k2")],
                inner_keys: vec![Attr::parse("R3.k3")],
                residual: Pred::always(),
            }),
            pred: Pred::cmp_lit("R2.k2", fro_algebra::CmpOp::Ge, 2),
        };
        let (rel, report) = explain_analyze(&plan, &s).unwrap();
        // Agreement with the plain executor.
        let mut st = ExecStats::new();
        let expect = execute(&plan, &s, &mut st).unwrap();
        assert!(rel.set_eq(&expect));
        assert!(report.contains("Filter"), "{report}");
        assert!(report.contains("Scan R2  (rows=3)"), "{report}");
        assert!(
            report.contains("IndexJoin(left-outer) R3  (rows=3)"),
            "{report}"
        );
        assert!(report.contains("(rows=2)"), "{report}"); // filter output
        assert!(report.contains("totals:"), "{report}");
    }

    #[test]
    fn merge_join_all_kinds_match_hash_join() {
        let s = storage();
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::FullOuter,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            let merge = PhysPlan::MergeJoin {
                kind,
                left: Box::new(PhysPlan::scan("R2")),
                right: Box::new(PhysPlan::scan("R3")),
                left_keys: vec![Attr::parse("R2.k2")],
                right_keys: vec![Attr::parse("R3.k3")],
                residual: Pred::always(),
            };
            let hash = PhysPlan::HashJoin {
                kind,
                probe: Box::new(PhysPlan::scan("R2")),
                build: Box::new(PhysPlan::scan("R3")),
                probe_keys: vec![Attr::parse("R2.k2")],
                build_keys: vec![Attr::parse("R3.k3")],
                residual: Pred::always(),
            };
            let mut st1 = ExecStats::new();
            let a = execute(&merge, &s, &mut st1).unwrap();
            let mut st2 = ExecStats::new();
            let b = execute(&hash, &s, &mut st2).unwrap();
            assert!(a.set_eq(&b), "kind {kind}");
        }
    }

    #[test]
    fn merge_join_with_residual_and_duplicate_keys() {
        let mut s = Storage::new();
        s.insert(
            "L",
            Relation::from_ints("L", &["k", "v"], &[&[1, 10], &[1, 11], &[2, 20]]),
        );
        s.insert(
            "R",
            Relation::from_ints("R", &["k", "w"], &[&[1, 10], &[1, 99], &[3, 30]]),
        );
        let plan = PhysPlan::MergeJoin {
            kind: JoinKind::LeftOuter,
            left: Box::new(PhysPlan::scan("L")),
            right: Box::new(PhysPlan::scan("R")),
            left_keys: vec![Attr::parse("L.k")],
            right_keys: vec![Attr::parse("R.k")],
            residual: Pred::eq_attr("L.v", "R.w"),
        };
        let mut st = ExecStats::new();
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::outerjoin(
            s.get("L").unwrap().relation(),
            s.get("R").unwrap().relation(),
            &Pred::eq_attr("L.k", "R.k").and(Pred::eq_attr("L.v", "R.w")),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
    }

    #[test]
    fn explain_analyze_covers_merge_and_group_count() {
        let s = storage();
        let plan = PhysPlan::GroupCount {
            input: Box::new(PhysPlan::MergeJoin {
                kind: JoinKind::LeftOuter,
                left: Box::new(PhysPlan::scan("R2")),
                right: Box::new(PhysPlan::scan("R3")),
                left_keys: vec![Attr::parse("R2.k2")],
                right_keys: vec![Attr::parse("R3.k3")],
                residual: Pred::always(),
            }),
            group_attrs: vec![Attr::parse("R2.k2")],
            counted: Some(Attr::parse("R3.k3")),
        };
        let (rel, report) = explain_analyze(&plan, &s).unwrap();
        let mut st = ExecStats::new();
        let expect = execute(&plan, &s, &mut st).unwrap();
        assert!(rel.set_eq(&expect));
        assert!(report.contains("GroupCount"), "{report}");
        assert!(report.contains("MergeJoin(left-outer)"), "{report}");
        // Counts: k2 ∈ {1,2,3}, k3 ∈ {2,3,4} ⇒ (1,0), (2,1), (3,1).
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn full_outer_all_null_rows_do_not_duplicate() {
        // Regression: an all-null row on each side pads to the same
        // all-null wide row.
        let mut s = Storage::new();
        s.insert(
            "L",
            Relation::from_values("L", &["k"], vec![vec![Value::Null], vec![Value::Int(1)]]),
        );
        s.insert(
            "R",
            Relation::from_values("R", &["k"], vec![vec![Value::Null], vec![Value::Int(2)]]),
        );
        for plan in [
            PhysPlan::HashJoin {
                kind: JoinKind::FullOuter,
                probe: Box::new(PhysPlan::scan("L")),
                build: Box::new(PhysPlan::scan("R")),
                probe_keys: vec![Attr::parse("L.k")],
                build_keys: vec![Attr::parse("R.k")],
                residual: Pred::always(),
            },
            PhysPlan::MergeJoin {
                kind: JoinKind::FullOuter,
                left: Box::new(PhysPlan::scan("L")),
                right: Box::new(PhysPlan::scan("R")),
                left_keys: vec![Attr::parse("L.k")],
                right_keys: vec![Attr::parse("R.k")],
                residual: Pred::always(),
            },
            PhysPlan::NlJoin {
                kind: JoinKind::FullOuter,
                left: Box::new(PhysPlan::scan("L")),
                right: Box::new(PhysPlan::scan("R")),
                pred: Pred::eq_attr("L.k", "R.k"),
            },
        ] {
            let mut st = ExecStats::new();
            let out = execute(&plan, &s, &mut st).unwrap();
            let expect = ops::full_outerjoin(
                s.get("L").unwrap().relation(),
                s.get("R").unwrap().relation(),
                &Pred::eq_attr("L.k", "R.k"),
            )
            .unwrap();
            assert!(out.set_eq(&expect));
            // (null, null-pad) appears once, not twice.
            assert_eq!(out.len(), 3);
        }
    }

    #[test]
    fn null_keys_fall_out_of_hash_join_but_pad_in_outer() {
        let mut s = Storage::new();
        s.insert(
            "L",
            Relation::from_values("L", &["k"], vec![vec![Value::Null], vec![Value::Int(1)]]),
        );
        s.insert(
            "R",
            Relation::from_values("R", &["k"], vec![vec![Value::Null], vec![Value::Int(1)]]),
        );
        let mut st = ExecStats::new();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::LeftOuter,
            probe: Box::new(PhysPlan::scan("L")),
            build: Box::new(PhysPlan::scan("R")),
            probe_keys: vec![Attr::parse("L.k")],
            build_keys: vec![Attr::parse("R.k")],
            residual: Pred::always(),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::outerjoin(
            s.get("L").unwrap().relation(),
            s.get("R").unwrap().relation(),
            &Pred::eq_attr("L.k", "R.k"),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
        assert_eq!(out.len(), 2); // (null,null-pad) and (1,1)
    }

    /// A probe/build pair with duplicate keys, null keys, and a
    /// residual — enough structure that any ordering or counting bug in
    /// the parallel path shows up.
    fn skewed_storage() -> Storage {
        let mut s = Storage::new();
        let probe_rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                let k = if i % 10 == 9 {
                    Value::Null
                } else {
                    Value::Int(i % 7)
                };
                vec![Value::Int(i), k]
            })
            .collect();
        let build_rows: Vec<Vec<Value>> = (0..30)
            .map(|i| {
                let k = if i % 6 == 5 {
                    Value::Null
                } else {
                    Value::Int(i % 9)
                };
                vec![Value::Int(1000 + i), k]
            })
            .collect();
        s.insert("P", Relation::from_values("P", &["id", "k"], probe_rows));
        s.insert("B", Relation::from_values("B", &["id", "k"], build_rows));
        s
    }

    const ALL_KINDS: [JoinKind; 5] = [
        JoinKind::Inner,
        JoinKind::LeftOuter,
        JoinKind::FullOuter,
        JoinKind::Semi,
        JoinKind::Anti,
    ];

    #[test]
    fn parallel_hash_join_is_bit_identical_to_sequential() {
        let s = skewed_storage();
        for kind in ALL_KINDS {
            let plan = PhysPlan::HashJoin {
                kind,
                probe: Box::new(PhysPlan::scan("P")),
                build: Box::new(PhysPlan::scan("B")),
                probe_keys: vec![Attr::parse("P.k")],
                build_keys: vec![Attr::parse("B.k")],
                residual: Pred::cmp_attr("P.id", fro_algebra::CmpOp::Lt, "B.id"),
            };
            let mut seq_stats = ExecStats::new();
            let seq = execute(&plan, &s, &mut seq_stats).unwrap();
            for threads in [2, 3, 8] {
                for morsel in [1, 7, 64, 100_000] {
                    let cfg = ExecConfig::with_threads(threads).morsel_rows(morsel);
                    let mut st = ExecStats::new();
                    let par = execute_with(&plan, &s, &mut st, &cfg).unwrap();
                    assert_eq!(
                        par.rows(),
                        seq.rows(),
                        "{kind} threads={threads} morsel={morsel}"
                    );
                    assert_eq!(st, seq_stats, "{kind} threads={threads} morsel={morsel}");
                }
            }
        }
    }

    #[test]
    fn partitioned_hash_join_is_bit_identical_to_sequential() {
        let s = skewed_storage();
        for kind in ALL_KINDS {
            let plan = PhysPlan::HashJoin {
                kind,
                probe: Box::new(PhysPlan::scan("P")),
                build: Box::new(PhysPlan::scan("B")),
                probe_keys: vec![Attr::parse("P.k")],
                build_keys: vec![Attr::parse("B.k")],
                residual: Pred::cmp_attr("P.id", fro_algebra::CmpOp::Lt, "B.id"),
            };
            let mut seq_stats = ExecStats::new();
            let seq = execute(&plan, &s, &mut seq_stats).unwrap();
            for partitions in [1, 2, 8, 64] {
                // morsel=7 splits the 30-row build into 5 morsels, so
                // threads≥2 exercises the two-phase parallel build.
                for (threads, morsel) in [(1, 7), (2, 7), (8, 1), (3, 100_000)] {
                    let cfg = ExecConfig::with_threads(threads)
                        .morsel_rows(morsel)
                        .partitions(partitions);
                    let mut st = ExecStats::new();
                    let par = execute_with(&plan, &s, &mut st, &cfg).unwrap();
                    assert_eq!(
                        par.rows(),
                        seq.rows(),
                        "{kind} P={partitions} threads={threads} morsel={morsel}"
                    );
                    assert_eq!(
                        st, seq_stats,
                        "{kind} P={partitions} threads={threads} morsel={morsel}"
                    );
                    assert_eq!(st.partition.used(), partitions, "{kind} P={partitions}");
                    // 25 of 30 build rows carry a non-null key; the
                    // breakdown redistributes them but never loses one.
                    assert_eq!(
                        st.partition.build_rows().iter().sum::<u64>(),
                        25,
                        "{kind} P={partitions}"
                    );
                    // 90 of 100 probe rows carry a non-null key.
                    assert_eq!(
                        st.partition.probe_rows().iter().sum::<u64>(),
                        90,
                        "{kind} P={partitions}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_nl_join_is_bit_identical_to_sequential() {
        let s = skewed_storage();
        for kind in ALL_KINDS {
            let plan = PhysPlan::NlJoin {
                kind,
                left: Box::new(PhysPlan::scan("P")),
                right: Box::new(PhysPlan::scan("B")),
                pred: Pred::eq_attr("P.k", "B.k"),
            };
            let mut seq_stats = ExecStats::new();
            let seq = execute(&plan, &s, &mut seq_stats).unwrap();
            let cfg = ExecConfig::with_threads(4).morsel_rows(9);
            let mut st = ExecStats::new();
            let par = execute_with(&plan, &s, &mut st, &cfg).unwrap();
            assert_eq!(par.rows(), seq.rows(), "{kind}");
            assert_eq!(st, seq_stats, "{kind}");
        }
    }

    #[test]
    fn parallel_index_join_is_bit_identical_to_sequential() {
        let s = storage();
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            let plan = PhysPlan::IndexJoin {
                kind,
                outer: Box::new(PhysPlan::scan("R2")),
                inner: "R3".into(),
                outer_keys: vec![Attr::parse("R2.k2")],
                inner_keys: vec![Attr::parse("R3.k3")],
                residual: Pred::always(),
            };
            let mut seq_stats = ExecStats::new();
            let seq = execute(&plan, &s, &mut seq_stats).unwrap();
            let cfg = ExecConfig::with_threads(8).morsel_rows(1);
            let mut st = ExecStats::new();
            let par = execute_with(&plan, &s, &mut st, &cfg).unwrap();
            assert_eq!(par.rows(), seq.rows(), "{kind}");
            assert_eq!(st, seq_stats, "{kind}");
        }
    }

    #[test]
    fn parallel_join_on_empty_inputs() {
        let mut s = Storage::new();
        s.insert("E", Relation::from_values("E", &["k"], vec![]));
        s.insert(
            "F",
            Relation::from_values("F", &["j"], vec![vec![Value::Int(1)]]),
        );
        for (probe, build) in [("E", "F"), ("F", "E"), ("E", "E")] {
            for kind in ALL_KINDS {
                let plan = PhysPlan::HashJoin {
                    kind,
                    probe: Box::new(PhysPlan::scan(probe)),
                    build: Box::new(PhysPlan::scan(build)),
                    probe_keys: vec![Attr::parse(&format!(
                        "{probe}.{}",
                        if probe == "E" { "k" } else { "j" }
                    ))],
                    build_keys: vec![Attr::parse(&format!(
                        "{build}.{}",
                        if build == "E" { "k" } else { "j" }
                    ))],
                    residual: Pred::always(),
                };
                // E joined with itself overlaps schemes; skip that
                // combination for wide kinds (it errors identically in
                // both engines, which is all we need).
                let mut seq_stats = ExecStats::new();
                let seq = execute(&plan, &s, &mut seq_stats);
                let cfg = ExecConfig::with_threads(8).morsel_rows(4);
                let mut st = ExecStats::new();
                let par = execute_with(&plan, &s, &mut st, &cfg);
                match (seq, par) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.rows(), b.rows(), "{kind} {probe}/{build}");
                        assert_eq!(st, seq_stats, "{kind} {probe}/{build}");
                    }
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{kind} {probe}/{build}"),
                    (a, b) => panic!("engines disagree on {kind} {probe}/{build}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn auto_thread_config_runs() {
        let s = skewed_storage();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::LeftOuter,
            probe: Box::new(PhysPlan::scan("P")),
            build: Box::new(PhysPlan::scan("B")),
            probe_keys: vec![Attr::parse("P.k")],
            build_keys: vec![Attr::parse("B.k")],
            residual: Pred::always(),
        };
        let mut st = ExecStats::new();
        let cfg = ExecConfig::with_threads(0).morsel_rows(8);
        let out = execute_with(&plan, &s, &mut st, &cfg).unwrap();
        let mut seq_st = ExecStats::new();
        let seq = execute(&plan, &s, &mut seq_st).unwrap();
        assert_eq!(out.rows(), seq.rows());
    }

    #[test]
    fn dedup_rows_keeps_first_occurrence_without_cloning() {
        let t = |v: i64| Tuple::new(vec![Value::Int(v)]);
        let mut rows = vec![t(1), t(2), t(1), t(3), t(2), t(1)];
        dedup_rows(&mut rows);
        assert_eq!(rows, vec![t(1), t(2), t(3)]);
        let mut empty: Vec<Tuple> = Vec::new();
        dedup_rows(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn explain_analyze_report_is_thread_count_invariant() {
        let s = skewed_storage();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::FullOuter,
            probe: Box::new(PhysPlan::scan("P")),
            build: Box::new(PhysPlan::scan("B")),
            probe_keys: vec![Attr::parse("P.k")],
            build_keys: vec![Attr::parse("B.k")],
            residual: Pred::always(),
        };
        let (seq_rel, seq_report) = explain_analyze(&plan, &s).unwrap();
        let cfg = ExecConfig::with_threads(8).morsel_rows(16);
        let (par_rel, par_report) = explain_analyze_with(&plan, &s, &cfg).unwrap();
        assert_eq!(seq_rel.rows(), par_rel.rows());
        assert_eq!(seq_report, par_report);
    }

    #[test]
    fn explain_analyze_reports_partition_breakdown() {
        let s = skewed_storage();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::Inner,
            probe: Box::new(PhysPlan::scan("P")),
            build: Box::new(PhysPlan::scan("B")),
            probe_keys: vec![Attr::parse("P.k")],
            build_keys: vec![Attr::parse("B.k")],
            residual: Pred::always(),
        };
        let cfg = ExecConfig::new().partitions(8);
        let (_, report) = explain_analyze_with(&plan, &s, &cfg).unwrap();
        assert!(report.contains("partitions: P=8 build=["), "{report}");
        // The breakdown line is thread-count invariant at a fixed P.
        let par_cfg = ExecConfig::with_threads(8).morsel_rows(16).partitions(8);
        let (_, par_report) = explain_analyze_with(&plan, &s, &par_cfg).unwrap();
        assert_eq!(report, par_report);
    }
}
