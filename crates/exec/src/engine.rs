//! The materializing executor.
//!
//! Counter semantics (Example 1's accounting):
//! * `Scan` retrieves every tuple of its table;
//! * `IndexJoin` issues one probe per outer row and *retrieves exactly
//!   the matching inner tuples*;
//! * `HashJoin` retrieves nothing by itself (its inputs do) but counts
//!   build rows and candidate comparisons;
//! * every operator adds its output size to `rows_materialized`.
//!
//! Results are plain [`Relation`]s; the test-suite cross-checks every
//! plan against the reference evaluator in `fro-algebra`.

use crate::plan::{JoinKind, PhysPlan};
use crate::stats::ExecStats;
use crate::storage::Storage;
use fro_algebra::ops::BoundPred;
use fro_algebra::{AlgebraError, Attr, Pred, Relation, Schema, Tuple, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A scan or index join referenced an unknown table.
    UnknownTable(String),
    /// An index join required an index that does not exist.
    MissingIndex {
        /// Table that lacks the index.
        table: String,
        /// The attributes that needed indexing.
        attrs: String,
    },
    /// Key lists of a hash/index join have different lengths.
    KeyArityMismatch,
    /// An attribute failed to resolve against an input schema.
    Algebra(AlgebraError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            ExecError::MissingIndex { table, attrs } => {
                write!(f, "table `{table}` has no index on ({attrs})")
            }
            ExecError::KeyArityMismatch => write!(f, "probe/build key lists differ in length"),
            ExecError::Algebra(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<AlgebraError> for ExecError {
    fn from(e: AlgebraError) -> Self {
        ExecError::Algebra(e)
    }
}

fn resolve_cols(schema: &Schema, attrs: &[Attr]) -> Result<Vec<usize>, ExecError> {
    attrs
        .iter()
        .map(|a| {
            schema.index_of(a).ok_or_else(|| {
                ExecError::Algebra(AlgebraError::UnknownAttr {
                    attr: a.to_string(),
                    schema: schema.to_string(),
                })
            })
        })
        .collect()
}

/// An all-null unmatched row on each side of a full outerjoin pads to
/// the identical all-null wide row; dedup before materializing.
fn dedup_rows(rows: &mut Vec<Tuple>) {
    let mut seen = std::collections::HashSet::with_capacity(rows.len());
    rows.retain(|t| seen.insert(t.clone()));
}

fn key_of(row: &Tuple, cols: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        let v = row.get(c);
        if v.is_null() {
            return None; // equality on null never matches
        }
        key.push(v.clone());
    }
    Some(key)
}

/// Execute a plan against storage, accumulating counters into `stats`.
///
/// # Errors
/// [`ExecError`] for unknown tables, missing indexes, or unresolved
/// attributes.
pub fn execute(
    plan: &PhysPlan,
    storage: &Storage,
    stats: &mut ExecStats,
) -> Result<Relation, ExecError> {
    let out = run(plan, storage, stats)?;
    stats.rows_output = out.len() as u64;
    Ok(out)
}

fn run(plan: &PhysPlan, storage: &Storage, stats: &mut ExecStats) -> Result<Relation, ExecError> {
    let out = match plan {
        PhysPlan::Scan { rel } => {
            let t = storage
                .get(rel)
                .ok_or_else(|| ExecError::UnknownTable(rel.clone()))?;
            stats.tuples_retrieved += t.len() as u64;
            t.relation().clone()
        }
        PhysPlan::Filter { input, pred } => {
            let rel = run(input, storage, stats)?;
            let bound = BoundPred::bind(pred, rel.schema()).map_err(ExecError::from)?;
            let rows: Vec<Tuple> = rel
                .iter()
                .filter(|t| {
                    stats.comparisons += 1;
                    bound.eval(t).is_true()
                })
                .cloned()
                .collect();
            Relation::from_distinct_rows(rel.schema().clone(), rows)
        }
        PhysPlan::Project { input, attrs } => {
            let rel = run(input, storage, stats)?;
            fro_algebra::ops::project(&rel, attrs, true).map_err(ExecError::from)?
        }
        PhysPlan::HashJoin {
            kind,
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
        } => {
            if probe_keys.len() != build_keys.len() || probe_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let probe_rel = run(probe, storage, stats)?;
            let build_rel = run(build, storage, stats)?;
            hash_join(
                *kind, &probe_rel, &build_rel, probe_keys, build_keys, residual, stats,
            )?
        }
        PhysPlan::IndexJoin {
            kind,
            outer,
            inner,
            outer_keys,
            inner_keys,
            residual,
        } => {
            if outer_keys.len() != inner_keys.len() || outer_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let outer_rel = run(outer, storage, stats)?;
            index_join(
                *kind, &outer_rel, inner, outer_keys, inner_keys, residual, storage, stats,
            )?
        }
        PhysPlan::MergeJoin {
            kind,
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            if left_keys.len() != right_keys.len() || left_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let l = run(left, storage, stats)?;
            let r = run(right, storage, stats)?;
            merge_join(*kind, &l, &r, left_keys, right_keys, residual, stats)?
        }
        PhysPlan::NlJoin {
            kind,
            left,
            right,
            pred,
        } => {
            let l = run(left, storage, stats)?;
            let r = run(right, storage, stats)?;
            nl_join(*kind, &l, &r, pred, stats)?
        }
        PhysPlan::GroupCount {
            input,
            group_attrs,
            counted,
        } => {
            let rel = run(input, storage, stats)?;
            fro_algebra::ops::group_count(&rel, group_attrs, counted.as_ref())
                .map_err(ExecError::from)?
        }
        PhysPlan::Goj {
            left,
            right,
            pred,
            subset,
        } => {
            let l = run(left, storage, stats)?;
            let r = run(right, storage, stats)?;
            stats.comparisons += (l.len() * r.len()) as u64;
            fro_algebra::ops::goj(&l, &r, pred, subset).map_err(ExecError::from)?
        }
    };
    stats.rows_materialized += out.len() as u64;
    Ok(out)
}

fn hash_join(
    kind: JoinKind,
    probe: &Relation,
    build: &Relation,
    probe_keys: &[Attr],
    build_keys: &[Attr],
    residual: &Pred,
    stats: &mut ExecStats,
) -> Result<Relation, ExecError> {
    let probe_cols = resolve_cols(probe.schema(), probe_keys)?;
    let build_cols = resolve_cols(build.schema(), build_keys)?;

    let wide = matches!(
        kind,
        JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter
    );
    let out_schema: Arc<Schema> = if wide {
        Arc::new(probe.schema().concat(build.schema())?)
    } else {
        probe.schema().clone()
    };
    let residual_bound = if wide {
        Some(BoundPred::bind(residual, &out_schema).map_err(ExecError::from)?)
    } else {
        // Semi/anti joins evaluate the residual on the concatenated
        // scheme even though they output only the probe side.
        let concat = Arc::new(probe.schema().concat(build.schema())?);
        Some(BoundPred::bind(residual, &concat).map_err(ExecError::from)?)
    };
    let residual_bound = residual_bound.expect("bound above");

    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (rid, row) in build.rows().iter().enumerate() {
        if let Some(key) = key_of(row, &build_cols) {
            table.entry(key).or_default().push(rid);
        }
        stats.hash_build_rows += 1;
    }

    let pad = Tuple::nulls(build.schema().len());
    let probe_pad = Tuple::nulls(probe.schema().len());
    let mut build_matched = vec![false; build.len()];
    let mut rows = Vec::new();
    for prow in probe {
        let candidates: &[usize] = key_of(prow, &probe_cols)
            .as_ref()
            .and_then(|k| table.get(k))
            .map_or(&[], Vec::as_slice);
        let mut matched = false;
        for &rid in candidates {
            let cat = prow.concat(&build.rows()[rid]);
            stats.comparisons += 1;
            if residual_bound.eval(&cat).is_true() {
                matched = true;
                build_matched[rid] = true;
                match kind {
                    JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter => rows.push(cat),
                    JoinKind::Semi => {
                        rows.push(prow.clone());
                        break;
                    }
                    JoinKind::Anti => break,
                }
            }
        }
        match kind {
            JoinKind::LeftOuter | JoinKind::FullOuter if !matched => {
                rows.push(prow.concat(&pad));
            }
            JoinKind::Anti if !matched => rows.push(prow.clone()),
            _ => {}
        }
    }
    if kind == JoinKind::FullOuter {
        for (rid, brow) in build.rows().iter().enumerate() {
            if !build_matched[rid] {
                rows.push(probe_pad.concat(brow));
            }
        }
        dedup_rows(&mut rows);
    }
    Ok(Relation::from_distinct_rows(out_schema, rows))
}

#[allow(clippy::too_many_arguments)]
fn index_join(
    kind: JoinKind,
    outer: &Relation,
    inner_name: &str,
    outer_keys: &[Attr],
    inner_keys: &[Attr],
    residual: &Pred,
    storage: &Storage,
    stats: &mut ExecStats,
) -> Result<Relation, ExecError> {
    if kind == JoinKind::FullOuter {
        return Err(ExecError::Algebra(fro_algebra::AlgebraError::BadUnion(
            "index join cannot implement a full outerjoin (unmatched inner rows are unreachable)"
                .into(),
        )));
    }
    let inner_table = storage
        .get(inner_name)
        .ok_or_else(|| ExecError::UnknownTable(inner_name.to_owned()))?;
    let inner_rel = inner_table.relation();
    let mut inner_cols = resolve_cols(inner_rel.schema(), inner_keys)?;
    // The index stores sorted key columns; align outer key order with it.
    let mut outer_cols = resolve_cols(outer.schema(), outer_keys)?;
    let mut pairs: Vec<(usize, usize)> = inner_cols
        .iter()
        .copied()
        .zip(outer_cols.iter().copied())
        .collect();
    pairs.sort_unstable_by_key(|&(ic, _)| ic);
    inner_cols = pairs.iter().map(|&(ic, _)| ic).collect();
    outer_cols = pairs.iter().map(|&(_, oc)| oc).collect();

    let index = inner_table
        .index_on(&inner_cols)
        .ok_or_else(|| ExecError::MissingIndex {
            table: inner_name.to_owned(),
            attrs: inner_keys
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
        })?;

    let wide = matches!(kind, JoinKind::Inner | JoinKind::LeftOuter);
    let concat_schema = Arc::new(outer.schema().concat(inner_rel.schema())?);
    let out_schema = if wide {
        concat_schema.clone()
    } else {
        outer.schema().clone()
    };
    let residual_bound = BoundPred::bind(residual, &concat_schema).map_err(ExecError::from)?;

    let pad = Tuple::nulls(inner_rel.schema().len());
    let mut rows = Vec::new();
    for orow in outer {
        stats.index_probes += 1;
        let rids: &[usize] = key_of(orow, &outer_cols)
            .as_ref()
            .map_or(&[], |k| index.lookup(k));
        stats.tuples_retrieved += rids.len() as u64;
        let mut matched = false;
        for &rid in rids {
            let cat = orow.concat(&inner_rel.rows()[rid]);
            stats.comparisons += 1;
            if residual_bound.eval(&cat).is_true() {
                matched = true;
                match kind {
                    JoinKind::Inner | JoinKind::LeftOuter => rows.push(cat),
                    JoinKind::Semi => {
                        rows.push(orow.clone());
                        break;
                    }
                    JoinKind::Anti => break,
                    JoinKind::FullOuter => unreachable!("rejected at entry"),
                }
            }
        }
        match kind {
            JoinKind::LeftOuter if !matched => rows.push(orow.concat(&pad)),
            JoinKind::Anti if !matched => rows.push(orow.clone()),
            _ => {}
        }
    }
    Ok(Relation::from_distinct_rows(out_schema, rows))
}

/// Sort-merge join: sort row indices of both inputs on their key
/// columns, then merge equal-key groups. Rows with a null key never
/// match (SQL equality) and are emitted padded/kept for the outer/anti
/// flavors.
fn merge_join(
    kind: JoinKind,
    left: &Relation,
    right: &Relation,
    left_keys: &[Attr],
    right_keys: &[Attr],
    residual: &Pred,
    stats: &mut ExecStats,
) -> Result<Relation, ExecError> {
    let lcols = resolve_cols(left.schema(), left_keys)?;
    let rcols = resolve_cols(right.schema(), right_keys)?;
    let wide = matches!(
        kind,
        JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter
    );
    let concat_schema = Arc::new(left.schema().concat(right.schema())?);
    let out_schema = if wide {
        concat_schema.clone()
    } else {
        left.schema().clone()
    };
    let bound = BoundPred::bind(residual, &concat_schema).map_err(ExecError::from)?;

    // Sorted index runs over non-null-keyed rows; null-keyed rows go
    // straight to the unmatched sets.
    let key_at = |rel: &Relation, cols: &[usize], i: usize| -> Option<Vec<Value>> {
        key_of(&rel.rows()[i], cols)
    };
    let mut lsorted: Vec<(Vec<Value>, usize)> = Vec::with_capacity(left.len());
    let mut lnull: Vec<usize> = Vec::new();
    for i in 0..left.len() {
        match key_at(left, &lcols, i) {
            Some(k) => lsorted.push((k, i)),
            None => lnull.push(i),
        }
    }
    lsorted.sort();
    let mut rsorted: Vec<(Vec<Value>, usize)> = Vec::with_capacity(right.len());
    let mut rnull: Vec<usize> = Vec::new();
    for i in 0..right.len() {
        match key_at(right, &rcols, i) {
            Some(k) => rsorted.push((k, i)),
            None => rnull.push(i),
        }
    }
    rsorted.sort();
    stats.comparisons += (lsorted.len() + rsorted.len()) as u64; // sort work proxy

    let pad_r = Tuple::nulls(right.schema().len());
    let pad_l = Tuple::nulls(left.schema().len());
    let mut left_matched = vec![false; left.len()];
    let mut right_matched = vec![false; right.len()];
    let mut rows = Vec::new();

    let (mut i, mut j) = (0usize, 0usize);
    while i < lsorted.len() && j < rsorted.len() {
        match lsorted[i].0.cmp(&rsorted[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Group boundaries.
                let key = lsorted[i].0.clone();
                let i0 = i;
                while i < lsorted.len() && lsorted[i].0 == key {
                    i += 1;
                }
                let j0 = j;
                while j < rsorted.len() && rsorted[j].0 == key {
                    j += 1;
                }
                for &(_, li) in &lsorted[i0..i] {
                    for &(_, rj) in &rsorted[j0..j] {
                        let cat = left.rows()[li].concat(&right.rows()[rj]);
                        stats.comparisons += 1;
                        if bound.eval(&cat).is_true() {
                            left_matched[li] = true;
                            right_matched[rj] = true;
                            if wide {
                                rows.push(cat);
                            }
                        }
                    }
                }
            }
        }
    }

    match kind {
        JoinKind::Inner | JoinKind::FullOuter | JoinKind::LeftOuter => {
            if kind != JoinKind::Inner {
                for (li, lrow) in left.rows().iter().enumerate() {
                    if !left_matched[li] {
                        rows.push(lrow.concat(&pad_r));
                    }
                }
            }
            if kind == JoinKind::FullOuter {
                for (rj, rrow) in right.rows().iter().enumerate() {
                    if !right_matched[rj] {
                        rows.push(pad_l.concat(rrow));
                    }
                }
            }
        }
        JoinKind::Semi => {
            for (li, lrow) in left.rows().iter().enumerate() {
                if left_matched[li] {
                    rows.push(lrow.clone());
                }
            }
        }
        JoinKind::Anti => {
            for (li, lrow) in left.rows().iter().enumerate() {
                if !left_matched[li] {
                    rows.push(lrow.clone());
                }
            }
        }
    }
    let _ = (lnull, rnull); // null-keyed rows are covered by the unmatched passes
    if kind == JoinKind::FullOuter {
        dedup_rows(&mut rows);
    }
    Ok(Relation::from_distinct_rows(out_schema, rows))
}

fn nl_join(
    kind: JoinKind,
    left: &Relation,
    right: &Relation,
    pred: &Pred,
    stats: &mut ExecStats,
) -> Result<Relation, ExecError> {
    let concat_schema = Arc::new(left.schema().concat(right.schema())?);
    let wide = matches!(
        kind,
        JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter
    );
    let out_schema = if wide {
        concat_schema.clone()
    } else {
        left.schema().clone()
    };
    let bound = BoundPred::bind(pred, &concat_schema).map_err(ExecError::from)?;
    let pad = Tuple::nulls(right.schema().len());
    let left_pad = Tuple::nulls(left.schema().len());
    let mut right_matched = vec![false; right.len()];
    let mut rows = Vec::new();
    for lrow in left {
        let mut matched = false;
        for (ri, rrow) in right.iter().enumerate() {
            let cat = lrow.concat(rrow);
            stats.comparisons += 1;
            if bound.eval(&cat).is_true() {
                matched = true;
                right_matched[ri] = true;
                match kind {
                    JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter => rows.push(cat),
                    JoinKind::Semi => {
                        rows.push(lrow.clone());
                        break;
                    }
                    JoinKind::Anti => break,
                }
            }
        }
        match kind {
            JoinKind::LeftOuter | JoinKind::FullOuter if !matched => {
                rows.push(lrow.concat(&pad));
            }
            JoinKind::Anti if !matched => rows.push(lrow.clone()),
            _ => {}
        }
    }
    if kind == JoinKind::FullOuter {
        for (ri, rrow) in right.rows().iter().enumerate() {
            if !right_matched[ri] {
                rows.push(left_pad.concat(rrow));
            }
        }
        dedup_rows(&mut rows);
    }
    Ok(Relation::from_distinct_rows(out_schema, rows))
}

/// Execute a plan and render an `EXPLAIN ANALYZE`-style report: the
/// plan tree annotated with each operator's *actual* output rows.
///
/// # Errors
/// Same failure modes as [`execute`].
pub fn explain_analyze(
    plan: &PhysPlan,
    storage: &Storage,
) -> Result<(Relation, String), ExecError> {
    let mut stats = ExecStats::new();
    let mut lines: Vec<(usize, String, u64)> = Vec::new();
    let rel = annotate(plan, storage, &mut stats, 0, &mut lines)?;
    stats.rows_output = rel.len() as u64;
    let mut out = String::new();
    for (depth, label, rows) in &lines {
        out.push_str(&"  ".repeat(*depth));
        out.push_str(label);
        out.push_str(&format!("  (rows={rows})\n"));
    }
    out.push_str(&format!("totals: {stats}\n"));
    Ok((rel, out))
}

fn annotate(
    plan: &PhysPlan,
    storage: &Storage,
    stats: &mut ExecStats,
    depth: usize,
    lines: &mut Vec<(usize, String, u64)>,
) -> Result<Relation, ExecError> {
    // Reserve this node's line before recursing so the report reads in
    // plan (pre-)order while row counts are filled post-execution.
    let slot = lines.len();
    lines.push((depth, String::new(), 0));

    let (label, rel) = match plan {
        PhysPlan::Scan { rel } => {
            let t = storage
                .get(rel)
                .ok_or_else(|| ExecError::UnknownTable(rel.clone()))?;
            stats.tuples_retrieved += t.len() as u64;
            (format!("Scan {rel}"), t.relation().clone())
        }
        PhysPlan::Filter { input, pred } => {
            let child = annotate(input, storage, stats, depth + 1, lines)?;
            let bound = BoundPred::bind(pred, child.schema()).map_err(ExecError::from)?;
            let rows: Vec<Tuple> = child
                .iter()
                .filter(|t| {
                    stats.comparisons += 1;
                    bound.eval(t).is_true()
                })
                .cloned()
                .collect();
            (
                format!("Filter [{pred}]"),
                Relation::from_distinct_rows(child.schema().clone(), rows),
            )
        }
        PhysPlan::Project { input, attrs } => {
            let child = annotate(input, storage, stats, depth + 1, lines)?;
            (
                "Project".to_owned(),
                fro_algebra::ops::project(&child, attrs, true).map_err(ExecError::from)?,
            )
        }
        PhysPlan::HashJoin {
            kind,
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
        } => {
            if probe_keys.len() != build_keys.len() || probe_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let p = annotate(probe, storage, stats, depth + 1, lines)?;
            let b = annotate(build, storage, stats, depth + 1, lines)?;
            (
                format!("HashJoin({kind})"),
                hash_join(*kind, &p, &b, probe_keys, build_keys, residual, stats)?,
            )
        }
        PhysPlan::IndexJoin {
            kind,
            outer,
            inner,
            outer_keys,
            inner_keys,
            residual,
        } => {
            if outer_keys.len() != inner_keys.len() || outer_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let o = annotate(outer, storage, stats, depth + 1, lines)?;
            (
                format!("IndexJoin({kind}) {inner}"),
                index_join(
                    *kind, &o, inner, outer_keys, inner_keys, residual, storage, stats,
                )?,
            )
        }
        PhysPlan::MergeJoin {
            kind,
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            if left_keys.len() != right_keys.len() || left_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let l = annotate(left, storage, stats, depth + 1, lines)?;
            let r = annotate(right, storage, stats, depth + 1, lines)?;
            (
                format!("MergeJoin({kind})"),
                merge_join(*kind, &l, &r, left_keys, right_keys, residual, stats)?,
            )
        }
        PhysPlan::NlJoin {
            kind,
            left,
            right,
            pred,
        } => {
            let l = annotate(left, storage, stats, depth + 1, lines)?;
            let r = annotate(right, storage, stats, depth + 1, lines)?;
            (
                format!("NlJoin({kind})"),
                nl_join(*kind, &l, &r, pred, stats)?,
            )
        }
        PhysPlan::GroupCount {
            input,
            group_attrs,
            counted,
        } => {
            let rel = annotate(input, storage, stats, depth + 1, lines)?;
            (
                "GroupCount".to_owned(),
                fro_algebra::ops::group_count(&rel, group_attrs, counted.as_ref())
                    .map_err(ExecError::from)?,
            )
        }
        PhysPlan::Goj {
            left,
            right,
            pred,
            subset,
        } => {
            let l = annotate(left, storage, stats, depth + 1, lines)?;
            let r = annotate(right, storage, stats, depth + 1, lines)?;
            stats.comparisons += (l.len() * r.len()) as u64;
            (
                "Goj".to_owned(),
                fro_algebra::ops::goj(&l, &r, pred, subset).map_err(ExecError::from)?,
            )
        }
    };
    stats.rows_materialized += rel.len() as u64;
    lines[slot] = (depth, label, rel.len() as u64);
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::ops;

    fn storage() -> Storage {
        let mut s = Storage::new();
        s.insert("R1", Relation::from_ints("R1", &["k1"], &[&[1]]));
        s.insert(
            "R2",
            Relation::from_ints("R2", &["k2"], &[&[1], &[2], &[3]]),
        );
        s.insert(
            "R3",
            Relation::from_ints("R3", &["k3"], &[&[2], &[3], &[4]]),
        );
        s.create_index("R1", &[Attr::parse("R1.k1")]);
        s.create_index("R2", &[Attr::parse("R2.k2")]);
        s.create_index("R3", &[Attr::parse("R3.k3")]);
        s
    }

    #[test]
    fn scan_counts_tuples() {
        let s = storage();
        let mut st = ExecStats::new();
        let out = execute(&PhysPlan::scan("R2"), &s, &mut st).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(st.tuples_retrieved, 3);
        assert_eq!(st.rows_output, 3);
    }

    #[test]
    fn unknown_table_errors() {
        let s = storage();
        let mut st = ExecStats::new();
        assert!(matches!(
            execute(&PhysPlan::scan("nope"), &s, &mut st),
            Err(ExecError::UnknownTable(_))
        ));
    }

    #[test]
    fn hash_join_matches_reference_join() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::Inner,
            probe: Box::new(PhysPlan::scan("R2")),
            build: Box::new(PhysPlan::scan("R3")),
            probe_keys: vec![Attr::parse("R2.k2")],
            build_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::join(
            s.get("R2").unwrap().relation(),
            s.get("R3").unwrap().relation(),
            &Pred::eq_attr("R2.k2", "R3.k3"),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
        assert_eq!(st.hash_build_rows, 3);
    }

    #[test]
    fn hash_left_outer_pads() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::LeftOuter,
            probe: Box::new(PhysPlan::scan("R2")),
            build: Box::new(PhysPlan::scan("R3")),
            probe_keys: vec![Attr::parse("R2.k2")],
            build_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::outerjoin(
            s.get("R2").unwrap().relation(),
            s.get("R3").unwrap().relation(),
            &Pred::eq_attr("R2.k2", "R3.k3"),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
    }

    #[test]
    fn hash_semi_and_anti() {
        let s = storage();
        for (kind, expect_len) in [(JoinKind::Semi, 2), (JoinKind::Anti, 1)] {
            let mut st = ExecStats::new();
            let plan = PhysPlan::HashJoin {
                kind,
                probe: Box::new(PhysPlan::scan("R2")),
                build: Box::new(PhysPlan::scan("R3")),
                probe_keys: vec![Attr::parse("R2.k2")],
                build_keys: vec![Attr::parse("R3.k3")],
                residual: Pred::always(),
            };
            let out = execute(&plan, &s, &mut st).unwrap();
            assert_eq!(out.len(), expect_len, "{kind}");
            assert_eq!(out.schema().len(), 1);
        }
    }

    #[test]
    fn index_join_counts_retrievals_not_scans() {
        let s = storage();
        let mut st = ExecStats::new();
        // R1 (1 row) index-joins into R2: 1 scan + 1 probe + 1 match.
        let plan = PhysPlan::IndexJoin {
            kind: JoinKind::Inner,
            outer: Box::new(PhysPlan::scan("R1")),
            inner: "R2".into(),
            outer_keys: vec![Attr::parse("R1.k1")],
            inner_keys: vec![Attr::parse("R2.k2")],
            residual: Pred::always(),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(st.tuples_retrieved, 2); // scan R1 (1) + retrieved match (1)
        assert_eq!(st.index_probes, 1);
    }

    #[test]
    fn index_join_missing_index_errors() {
        let mut s = storage();
        s.insert("R4", Relation::from_ints("R4", &["k4"], &[&[1]]));
        let mut st = ExecStats::new();
        let plan = PhysPlan::IndexJoin {
            kind: JoinKind::Inner,
            outer: Box::new(PhysPlan::scan("R1")),
            inner: "R4".into(),
            outer_keys: vec![Attr::parse("R1.k1")],
            inner_keys: vec![Attr::parse("R4.k4")],
            residual: Pred::always(),
        };
        assert!(matches!(
            execute(&plan, &s, &mut st),
            Err(ExecError::MissingIndex { .. })
        ));
    }

    #[test]
    fn index_left_outer_join() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::IndexJoin {
            kind: JoinKind::LeftOuter,
            outer: Box::new(PhysPlan::scan("R2")),
            inner: "R3".into(),
            outer_keys: vec![Attr::parse("R2.k2")],
            inner_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::outerjoin(
            s.get("R2").unwrap().relation(),
            s.get("R3").unwrap().relation(),
            &Pred::eq_attr("R2.k2", "R3.k3"),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
        // Scan R2 (3) + retrieved matches (2).
        assert_eq!(st.tuples_retrieved, 5);
    }

    #[test]
    fn nl_join_arbitrary_predicate() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::NlJoin {
            kind: JoinKind::Inner,
            left: Box::new(PhysPlan::scan("R2")),
            right: Box::new(PhysPlan::scan("R3")),
            pred: Pred::cmp_attr("R2.k2", fro_algebra::CmpOp::Gt, "R3.k3"),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        // R2 values {1,2,3} vs R3 {2,3,4}: pairs with k2 > k3: (3,2).
        assert_eq!(out.len(), 1);
        assert_eq!(st.comparisons, 9);
    }

    #[test]
    fn filter_and_project() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::Project {
            input: Box::new(PhysPlan::Filter {
                input: Box::new(PhysPlan::scan("R2")),
                pred: Pred::cmp_lit("R2.k2", fro_algebra::CmpOp::Ge, 2),
            }),
            attrs: vec![Attr::parse("R2.k2")],
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn example1_cost_asymmetry_in_miniature() {
        // Same plans as Example 1 with |R1|=1, |R2|=|R3|=3.
        let s = storage();

        // Plan A: (R2 → R3) first (scan R2, index into R3), then index
        // into R1 — retrieves 2·|R2|-ish tuples.
        let oj = PhysPlan::IndexJoin {
            kind: JoinKind::LeftOuter,
            outer: Box::new(PhysPlan::scan("R2")),
            inner: "R3".into(),
            outer_keys: vec![Attr::parse("R2.k2")],
            inner_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        let plan_a = PhysPlan::IndexJoin {
            kind: JoinKind::Semi, // R1 − (…) with R1 single row: emulate via probe into R1
            outer: Box::new(oj),
            inner: "R1".into(),
            outer_keys: vec![Attr::parse("R2.k2")],
            inner_keys: vec![Attr::parse("R1.k1")],
            residual: Pred::always(),
        };
        let mut st_a = ExecStats::new();
        execute(&plan_a, &s, &mut st_a).unwrap();

        // Plan B: (R1 − R2) → R3 driven from the single-row R1.
        let jn = PhysPlan::IndexJoin {
            kind: JoinKind::Inner,
            outer: Box::new(PhysPlan::scan("R1")),
            inner: "R2".into(),
            outer_keys: vec![Attr::parse("R1.k1")],
            inner_keys: vec![Attr::parse("R2.k2")],
            residual: Pred::always(),
        };
        let plan_b = PhysPlan::IndexJoin {
            kind: JoinKind::LeftOuter,
            outer: Box::new(jn),
            inner: "R3".into(),
            outer_keys: vec![Attr::parse("R2.k2")],
            inner_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        let mut st_b = ExecStats::new();
        execute(&plan_b, &s, &mut st_b).unwrap();

        assert!(
            st_b.tuples_retrieved < st_a.tuples_retrieved,
            "join-first should retrieve fewer tuples: {st_b} vs {st_a}"
        );
        // Exact miniature numbers: plan B = scan R1 (1) + R2 match (1)
        // + R3 lookup for k=1 (0 matches) = 2.
        assert_eq!(st_b.tuples_retrieved, 2);
    }

    #[test]
    fn key_arity_mismatch_rejected() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::Inner,
            probe: Box::new(PhysPlan::scan("R2")),
            build: Box::new(PhysPlan::scan("R3")),
            probe_keys: vec![],
            build_keys: vec![],
            residual: Pred::always(),
        };
        assert!(matches!(
            execute(&plan, &s, &mut st),
            Err(ExecError::KeyArityMismatch)
        ));
    }

    #[test]
    fn goj_plan_matches_reference() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::Goj {
            left: Box::new(PhysPlan::scan("R2")),
            right: Box::new(PhysPlan::scan("R3")),
            pred: Pred::eq_attr("R2.k2", "R3.k3"),
            subset: vec![Attr::parse("R2.k2")],
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = fro_algebra::ops::goj(
            s.get("R2").unwrap().relation(),
            s.get("R3").unwrap().relation(),
            &Pred::eq_attr("R2.k2", "R3.k3"),
            &[Attr::parse("R2.k2")],
        )
        .unwrap();
        assert!(out.set_eq(&expect));
    }

    #[test]
    fn full_outer_hash_join_matches_reference() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::FullOuter,
            probe: Box::new(PhysPlan::scan("R2")),
            build: Box::new(PhysPlan::scan("R3")),
            probe_keys: vec![Attr::parse("R2.k2")],
            build_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::full_outerjoin(
            s.get("R2").unwrap().relation(),
            s.get("R3").unwrap().relation(),
            &Pred::eq_attr("R2.k2", "R3.k3"),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
        // R2 {1,2,3} vs R3 {2,3,4}: matches (2,3) + R2-unmatched (1) +
        // R3-unmatched (4) = 4 rows.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn full_outer_nl_join_matches_reference() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::NlJoin {
            kind: JoinKind::FullOuter,
            left: Box::new(PhysPlan::scan("R2")),
            right: Box::new(PhysPlan::scan("R3")),
            pred: Pred::eq_attr("R2.k2", "R3.k3"),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::full_outerjoin(
            s.get("R2").unwrap().relation(),
            s.get("R3").unwrap().relation(),
            &Pred::eq_attr("R2.k2", "R3.k3"),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
    }

    #[test]
    fn full_outer_index_join_rejected() {
        let s = storage();
        let mut st = ExecStats::new();
        let plan = PhysPlan::IndexJoin {
            kind: JoinKind::FullOuter,
            outer: Box::new(PhysPlan::scan("R2")),
            inner: "R3".into(),
            outer_keys: vec![Attr::parse("R2.k2")],
            inner_keys: vec![Attr::parse("R3.k3")],
            residual: Pred::always(),
        };
        assert!(execute(&plan, &s, &mut st).is_err());
    }

    #[test]
    fn explain_analyze_reports_actual_rows() {
        let s = storage();
        let plan = PhysPlan::Filter {
            input: Box::new(PhysPlan::IndexJoin {
                kind: JoinKind::LeftOuter,
                outer: Box::new(PhysPlan::scan("R2")),
                inner: "R3".into(),
                outer_keys: vec![Attr::parse("R2.k2")],
                inner_keys: vec![Attr::parse("R3.k3")],
                residual: Pred::always(),
            }),
            pred: Pred::cmp_lit("R2.k2", fro_algebra::CmpOp::Ge, 2),
        };
        let (rel, report) = explain_analyze(&plan, &s).unwrap();
        // Agreement with the plain executor.
        let mut st = ExecStats::new();
        let expect = execute(&plan, &s, &mut st).unwrap();
        assert!(rel.set_eq(&expect));
        assert!(report.contains("Filter"), "{report}");
        assert!(report.contains("Scan R2  (rows=3)"), "{report}");
        assert!(
            report.contains("IndexJoin(left-outer) R3  (rows=3)"),
            "{report}"
        );
        assert!(report.contains("(rows=2)"), "{report}"); // filter output
        assert!(report.contains("totals:"), "{report}");
    }

    #[test]
    fn merge_join_all_kinds_match_hash_join() {
        let s = storage();
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::FullOuter,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            let merge = PhysPlan::MergeJoin {
                kind,
                left: Box::new(PhysPlan::scan("R2")),
                right: Box::new(PhysPlan::scan("R3")),
                left_keys: vec![Attr::parse("R2.k2")],
                right_keys: vec![Attr::parse("R3.k3")],
                residual: Pred::always(),
            };
            let hash = PhysPlan::HashJoin {
                kind,
                probe: Box::new(PhysPlan::scan("R2")),
                build: Box::new(PhysPlan::scan("R3")),
                probe_keys: vec![Attr::parse("R2.k2")],
                build_keys: vec![Attr::parse("R3.k3")],
                residual: Pred::always(),
            };
            let mut st1 = ExecStats::new();
            let a = execute(&merge, &s, &mut st1).unwrap();
            let mut st2 = ExecStats::new();
            let b = execute(&hash, &s, &mut st2).unwrap();
            assert!(a.set_eq(&b), "kind {kind}");
        }
    }

    #[test]
    fn merge_join_with_residual_and_duplicate_keys() {
        let mut s = Storage::new();
        s.insert(
            "L",
            Relation::from_ints("L", &["k", "v"], &[&[1, 10], &[1, 11], &[2, 20]]),
        );
        s.insert(
            "R",
            Relation::from_ints("R", &["k", "w"], &[&[1, 10], &[1, 99], &[3, 30]]),
        );
        let plan = PhysPlan::MergeJoin {
            kind: JoinKind::LeftOuter,
            left: Box::new(PhysPlan::scan("L")),
            right: Box::new(PhysPlan::scan("R")),
            left_keys: vec![Attr::parse("L.k")],
            right_keys: vec![Attr::parse("R.k")],
            residual: Pred::eq_attr("L.v", "R.w"),
        };
        let mut st = ExecStats::new();
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::outerjoin(
            s.get("L").unwrap().relation(),
            s.get("R").unwrap().relation(),
            &Pred::eq_attr("L.k", "R.k").and(Pred::eq_attr("L.v", "R.w")),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
    }

    #[test]
    fn explain_analyze_covers_merge_and_group_count() {
        let s = storage();
        let plan = PhysPlan::GroupCount {
            input: Box::new(PhysPlan::MergeJoin {
                kind: JoinKind::LeftOuter,
                left: Box::new(PhysPlan::scan("R2")),
                right: Box::new(PhysPlan::scan("R3")),
                left_keys: vec![Attr::parse("R2.k2")],
                right_keys: vec![Attr::parse("R3.k3")],
                residual: Pred::always(),
            }),
            group_attrs: vec![Attr::parse("R2.k2")],
            counted: Some(Attr::parse("R3.k3")),
        };
        let (rel, report) = explain_analyze(&plan, &s).unwrap();
        let mut st = ExecStats::new();
        let expect = execute(&plan, &s, &mut st).unwrap();
        assert!(rel.set_eq(&expect));
        assert!(report.contains("GroupCount"), "{report}");
        assert!(report.contains("MergeJoin(left-outer)"), "{report}");
        // Counts: k2 ∈ {1,2,3}, k3 ∈ {2,3,4} ⇒ (1,0), (2,1), (3,1).
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn full_outer_all_null_rows_do_not_duplicate() {
        // Regression: an all-null row on each side pads to the same
        // all-null wide row.
        let mut s = Storage::new();
        s.insert(
            "L",
            Relation::from_values("L", &["k"], vec![vec![Value::Null], vec![Value::Int(1)]]),
        );
        s.insert(
            "R",
            Relation::from_values("R", &["k"], vec![vec![Value::Null], vec![Value::Int(2)]]),
        );
        for plan in [
            PhysPlan::HashJoin {
                kind: JoinKind::FullOuter,
                probe: Box::new(PhysPlan::scan("L")),
                build: Box::new(PhysPlan::scan("R")),
                probe_keys: vec![Attr::parse("L.k")],
                build_keys: vec![Attr::parse("R.k")],
                residual: Pred::always(),
            },
            PhysPlan::MergeJoin {
                kind: JoinKind::FullOuter,
                left: Box::new(PhysPlan::scan("L")),
                right: Box::new(PhysPlan::scan("R")),
                left_keys: vec![Attr::parse("L.k")],
                right_keys: vec![Attr::parse("R.k")],
                residual: Pred::always(),
            },
            PhysPlan::NlJoin {
                kind: JoinKind::FullOuter,
                left: Box::new(PhysPlan::scan("L")),
                right: Box::new(PhysPlan::scan("R")),
                pred: Pred::eq_attr("L.k", "R.k"),
            },
        ] {
            let mut st = ExecStats::new();
            let out = execute(&plan, &s, &mut st).unwrap();
            let expect = ops::full_outerjoin(
                s.get("L").unwrap().relation(),
                s.get("R").unwrap().relation(),
                &Pred::eq_attr("L.k", "R.k"),
            )
            .unwrap();
            assert!(out.set_eq(&expect));
            // (null, null-pad) appears once, not twice.
            assert_eq!(out.len(), 3);
        }
    }

    #[test]
    fn null_keys_fall_out_of_hash_join_but_pad_in_outer() {
        let mut s = Storage::new();
        s.insert(
            "L",
            Relation::from_values("L", &["k"], vec![vec![Value::Null], vec![Value::Int(1)]]),
        );
        s.insert(
            "R",
            Relation::from_values("R", &["k"], vec![vec![Value::Null], vec![Value::Int(1)]]),
        );
        let mut st = ExecStats::new();
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::LeftOuter,
            probe: Box::new(PhysPlan::scan("L")),
            build: Box::new(PhysPlan::scan("R")),
            probe_keys: vec![Attr::parse("L.k")],
            build_keys: vec![Attr::parse("R.k")],
            residual: Pred::always(),
        };
        let out = execute(&plan, &s, &mut st).unwrap();
        let expect = ops::outerjoin(
            s.get("L").unwrap().relation(),
            s.get("R").unwrap().relation(),
            &Pred::eq_attr("L.k", "R.k"),
        )
        .unwrap();
        assert!(out.set_eq(&expect));
        assert_eq!(out.len(), 2); // (null,null-pad) and (1,1)
    }
}
