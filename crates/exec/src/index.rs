//! Hash indexes over base tables.
//!
//! Example 1 assumes "these keys have indexes"; a hash index maps a key
//! tuple to the row ids holding it, so an index join retrieves exactly
//! the matching tuples instead of scanning. Null key values are not
//! indexed — an equality predicate can never evaluate to `True` on a
//! null, so null-keyed rows are unreachable through the index by
//! construction (this matters for outerjoins over nullable columns).

use fro_algebra::{Relation, Value};
use std::collections::HashMap;

/// A hash index on one or more columns of a base table.
#[derive(Debug, Clone)]
pub struct HashIndex {
    key_cols: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<usize>>,
}

impl HashIndex {
    /// Build an index over the given column positions of `rel`.
    #[must_use]
    pub fn build(rel: &Relation, key_cols: Vec<usize>) -> HashIndex {
        let mut idx = HashIndex {
            key_cols,
            map: HashMap::new(),
        };
        idx.insert_rows(rel, 0);
        idx
    }

    /// Index the rows of `rel` from position `from` onward — the
    /// O(|delta|) maintenance path behind base-table appends. Row ids
    /// already indexed stay untouched, so `from` must be the length
    /// the relation had when the index last saw it.
    pub fn insert_rows(&mut self, rel: &Relation, from: usize) {
        'rows: for (off, row) in rel.rows()[from..].iter().enumerate() {
            let mut key = Vec::with_capacity(self.key_cols.len());
            for &c in &self.key_cols {
                let v = row.get(c);
                if v.is_null() {
                    continue 'rows; // null keys never match equality
                }
                key.push(v.clone());
            }
            self.map.entry(key).or_default().push(from + off);
        }
    }

    /// The indexed column positions.
    #[must_use]
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Row ids matching a key (empty for unknown or null keys).
    #[must_use]
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        if key.iter().any(Value::is_null) {
            return &[];
        }
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        Relation::from_values(
            "R",
            &["k", "v"],
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
                vec![Value::Int(1), Value::Int(11)],
                vec![Value::Null, Value::Int(99)],
            ],
        )
    }

    #[test]
    fn lookup_returns_matching_rows() {
        let idx = HashIndex::build(&rel(), vec![0]);
        assert_eq!(idx.lookup(&[Value::Int(1)]), &[0, 2]);
        assert_eq!(idx.lookup(&[Value::Int(2)]), &[1]);
        assert!(idx.lookup(&[Value::Int(7)]).is_empty());
    }

    #[test]
    fn null_keys_not_indexed_and_not_matched() {
        let idx = HashIndex::build(&rel(), vec![0]);
        assert!(idx.lookup(&[Value::Null]).is_empty());
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn composite_keys() {
        let idx = HashIndex::build(&rel(), vec![0, 1]);
        assert_eq!(idx.lookup(&[Value::Int(1), Value::Int(11)]), &[2]);
        assert!(idx.lookup(&[Value::Int(1), Value::Int(12)]).is_empty());
        assert_eq!(idx.key_cols(), &[0, 1]);
    }
}
