//! # fro-exec — in-memory execution engine
//!
//! The physical substrate for reproducing the paper's cost claims
//! (Example 1) and for backing the cost-based optimizer in `fro-core`:
//!
//! * [`Storage`]: named in-memory tables with optional hash
//!   [`index::HashIndex`]es (the paper's Example 1 assumes key indexes
//!   on every relation),
//! * [`PhysPlan`]: physical operator trees — scans, filters, hash
//!   joins, index nested-loop joins, plain nested loops, generalized
//!   outerjoin — each join in the four flavors the paper's algebra
//!   needs (inner, left-outer, semi, anti),
//! * [`ExecStats`]: *tuples retrieved* accounting (the metric Example 1
//!   counts: `2·10⁷ + 1` versus `3`), plus probe/comparison/output
//!   counters,
//! * [`execute`]: the executor front door. By default plans run on the
//!   push-based **pipelined** engine ([`ExecMode::Pipelined`]):
//!   scan→filter→probe→project spines fuse into a single closure-chain
//!   pass over morsels with no intermediate row vector between fused
//!   operators, and only pipeline breakers (non-scan build sides,
//!   `GroupCount`, merge sorts, full outerjoins) materialize. The
//!   classic operator-at-a-time engine remains available via
//!   [`ExecMode::Materializing`]; both produce bit-identical results
//!   and are checked against the reference evaluator of `fro-algebra`
//!   on every random query in the test-suite.

//! ## Example
//!
//! ```
//! use fro_algebra::{Attr, Pred, Relation};
//! use fro_exec::{execute, ExecStats, JoinKind, PhysPlan, Storage};
//!
//! let mut storage = Storage::new();
//! storage.insert("R", Relation::from_ints("R", &["k"], &[&[1], &[2]]));
//! storage.insert("S", Relation::from_ints("S", &["k"], &[&[2], &[3]]));
//! storage.create_index("S", &[Attr::parse("S.k")]);
//!
//! let plan = PhysPlan::IndexJoin {
//!     kind: JoinKind::LeftOuter,
//!     outer: Box::new(PhysPlan::scan("R")),
//!     inner: "S".into(),
//!     outer_keys: vec![Attr::parse("R.k")],
//!     inner_keys: vec![Attr::parse("S.k")],
//!     residual: Pred::always(),
//! };
//! let mut stats = ExecStats::new();
//! let out = execute(&plan, &storage, &mut stats).unwrap();
//! assert_eq!(out.len(), 2);               // (1, null) and (2, 2)
//! assert_eq!(stats.tuples_retrieved, 3);  // scan R (2) + matched S row (1)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod delta;
pub mod engine;
pub mod index;
mod pipeline;
pub mod plan;
pub mod stats;
pub mod storage;

pub use config::{suggest_partitions, ExecConfig, ExecMode, MAX_PARTITIONS};
pub use delta::{BuildSidePool, DeltaPlan, RowDelta, SideIndex, SideKey};
pub use engine::{execute, execute_with, explain_analyze, explain_analyze_with, ExecError};
pub use plan::{JoinKind, PhysPlan, ReducePass};
pub use stats::{ExecStats, PartitionStats};
pub use storage::{Storage, Table, SHARD_SIZE};
