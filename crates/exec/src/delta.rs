//! Incremental delta maintenance for standing views.
//!
//! A [`DeltaPlan`] is a maintenance-shaped mirror of a [`PhysPlan`]:
//! scans, filters, and joins (every physical join flavor collapses to
//! one delta join node; [`PhysPlan::SemiReduce`] wrappers are dropped
//! because reduction is semantically transparent). Each join node keeps
//! the state a delta needs — both inputs indexed by their equi-keys,
//! per-row match counts for the preserving/filtering kinds, and a
//! derivation refcount on its output so null-pad collisions (the
//! all-null full-outer pad meeting a real all-null row) resolve exactly
//! as the execution engine resolves them.
//!
//! The delta algebra per join kind, writing `Δ` for a signed row set
//! and `pad(t)` for the null-extension of `t`:
//!
//! * **Inner** — `Δ(L ⋈ R) = ΔL ⋈ R ∪ L' ⋈ ΔR` (`L'` is `L` after
//!   `ΔL` is applied; processing is sequential, left phase first).
//! * **Left outer** — as inner, plus a per-left-row match count `m(l)`:
//!   when `m(l)` crosses `0 → 1` the pad `l∘null` is retracted, when it
//!   crosses `1 → 0` the pad is emitted.
//! * **Full outer** — left-outer bookkeeping on both sides (`m(l)` and
//!   `m(r)`, pads on either side).
//! * **Semi** — output is the left rows with `m(l) > 0`; only the
//!   `0 ↔ 1` transitions of `m(l)` emit or retract `l`.
//! * **Anti** — output is the left rows with `m(l) = 0`; the same
//!   transitions act in reverse.
//!
//! A null equi-key never matches (3VL, like every join in the engine),
//! so null-keyed rows only ever contribute pads or anti rows.
//!
//! Views are registered and owned one level up (the `fro` facade);
//! this module is pure mechanism: build a [`DeltaPlan`] from a
//! physical plan, [`DeltaPlan::initialize`] it against storage (with
//! leaf build sides optionally cloned from a [`BuildSidePool`] instead
//! of rebuilt — Finkelstein-style reuse between standing queries whose
//! graphs overlap), then [`DeltaPlan::apply`] base-relation deltas and
//! fold the returned root delta into the maintained result.

use crate::engine::ExecError;
use crate::plan::{JoinKind, PhysPlan};
use crate::stats::ExecStats;
use crate::storage::Storage;
use fro_algebra::schema::SchemaRef;
use fro_algebra::{Pred, Tuple, Value};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// A signed, set-level change to one relation: rows that became
/// present and rows that ceased to be. A tuple never appears in both
/// lists ([`RowDelta::normalize`] cancels oscillations), matching the
/// set semantics of every relation in the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowDelta {
    /// Rows that became present.
    pub inserts: Vec<Tuple>,
    /// Rows that ceased to be present.
    pub deletes: Vec<Tuple>,
}

impl RowDelta {
    /// A pure-insert delta.
    #[must_use]
    pub fn from_inserts(inserts: Vec<Tuple>) -> RowDelta {
        RowDelta {
            inserts,
            deletes: Vec::new(),
        }
    }

    /// A pure-delete delta.
    #[must_use]
    pub fn from_deletes(deletes: Vec<Tuple>) -> RowDelta {
        RowDelta {
            deletes,
            inserts: Vec::new(),
        }
    }

    /// True when the delta changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Number of signed rows (inserts plus deletes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Cancel insert/delete oscillations of the same tuple so the
    /// delta is a minimal set-level change, and sort both lists so
    /// downstream processing order is deterministic.
    #[must_use]
    pub fn normalize(self) -> RowDelta {
        let mut net: HashMap<Tuple, i64> = HashMap::new();
        for t in self.inserts {
            *net.entry(t).or_insert(0) += 1;
        }
        for t in self.deletes {
            *net.entry(t).or_insert(0) -= 1;
        }
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for (t, n) in net {
            debug_assert!((-1..=1).contains(&n), "set-level delta amplitude");
            if n > 0 {
                inserts.push(t);
            } else if n < 0 {
                deletes.push(t);
            }
        }
        inserts.sort_unstable();
        deletes.sort_unstable();
        RowDelta { inserts, deletes }
    }
}

/// The equi-key of a row: `None` when any key column is null (a null
/// key never matches). An empty key list yields `Some([])` — every row
/// in one bucket, matching decided by the residual alone (how
/// nested-loop joins are modelled).
fn key_of(t: &Tuple, cols: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        let v = t.get(c);
        if v.is_null() {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

/// One side of a delta join, indexed by its equi-key. Null-keyed rows
/// are held apart: they never match, but full-outer pads and deletions
/// still need to find them.
#[derive(Debug, Clone, Default)]
pub struct SideIndex {
    by_key: HashMap<Vec<Value>, BTreeSet<Tuple>>,
    null_keyed: BTreeSet<Tuple>,
}

impl SideIndex {
    fn insert(&mut self, key: Option<Vec<Value>>, t: Tuple) {
        let fresh = match key {
            Some(k) => self.by_key.entry(k).or_default().insert(t),
            None => self.null_keyed.insert(t),
        };
        debug_assert!(fresh, "side rows are sets; duplicate insert");
    }

    fn remove(&mut self, key: &Option<Vec<Value>>, t: &Tuple) {
        match key {
            Some(k) => {
                if let Some(set) = self.by_key.get_mut(k) {
                    set.remove(t);
                    if set.is_empty() {
                        self.by_key.remove(k);
                    }
                }
            }
            None => {
                self.null_keyed.remove(t);
            }
        }
    }

    fn bucket(&self, key: &[Value]) -> impl Iterator<Item = &Tuple> {
        self.by_key.get(key).into_iter().flatten()
    }

    /// Every row of this side, null-keyed rows included.
    pub fn rows(&self) -> impl Iterator<Item = &Tuple> {
        self.by_key.values().flatten().chain(self.null_keyed.iter())
    }

    /// Number of rows held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_key.values().map(BTreeSet::len).sum::<usize>() + self.null_keyed.len()
    }

    /// True when the side holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty() && self.null_keyed.is_empty()
    }
}

/// Identity of a poolable leaf build side: the base relation, the
/// resolved key columns, and the filter predicate applied on top of
/// the scan (rendered — predicate display is injective enough for a
/// cache key, and a miss only costs a rebuild).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SideKey {
    rel: String,
    cols: Vec<usize>,
    pred: String,
}

/// A cross-view pool of finished leaf build sides. When two standing
/// queries' graphs overlap (one a prefix or extension of the other, in
/// Finkelstein's sense), the shared base relations produce identical
/// `(rel, keys, filter)` leaf sides — the second registration clones
/// the pooled index instead of re-scanning, re-filtering and
/// re-hashing the base table. The owner invalidates pooled entries
/// whenever their base relation mutates.
#[derive(Debug, Default)]
pub struct BuildSidePool {
    sides: HashMap<SideKey, Arc<SideIndex>>,
    hits: u64,
}

impl BuildSidePool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> BuildSidePool {
        BuildSidePool::default()
    }

    /// Number of pooled sides.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sides.len()
    }

    /// True when nothing is pooled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sides.is_empty()
    }

    /// How many registrations reused a pooled side instead of
    /// rebuilding it.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Drop every pooled side built over `rel` (its contents changed).
    pub fn invalidate_rel(&mut self, rel: &str) {
        self.sides.retain(|k, _| k.rel != rel);
    }

    /// Drop everything (a structural change of unknown scope).
    pub fn clear(&mut self) {
        self.sides.clear();
    }
}

/// Per-node state of a delta join.
#[derive(Debug)]
struct JoinNode {
    kind: JoinKind,
    left: usize,
    right: usize,
    left_cols: Vec<usize>,
    right_cols: Vec<usize>,
    residual: Pred,
    /// `left ++ right` — the schema residuals evaluate against.
    pair_schema: SchemaRef,
    left_width: usize,
    right_width: usize,
    left_index: SideIndex,
    right_index: SideIndex,
    /// Current match count per left row (all kinds except `Inner`).
    match_left: HashMap<Tuple, i64>,
    /// Current match count per right row (`FullOuter` only).
    match_right: HashMap<Tuple, i64>,
    /// Derivation refcount per output tuple: pads and real rows can
    /// collide on all-null tuples, exactly like in the engine.
    out: HashMap<Tuple, i64>,
    /// Set when the right subtree is a bare or filtered scan — the
    /// shapes eligible for cross-view build-side pooling.
    right_leaf: Option<SideKey>,
}

#[derive(Debug)]
enum DeltaNode {
    Scan { rel: String },
    Filter { input: usize, pred: Pred },
    Join(Box<JoinNode>),
}

/// A maintenance plan: the delta-operator mirror of one physical plan,
/// plus all per-join state. Nodes live in a post-order arena (children
/// strictly before parents; the root is last).
#[derive(Debug)]
pub struct DeltaPlan {
    nodes: Vec<DeltaNode>,
    schemas: Vec<SchemaRef>,
    rels: Vec<String>,
}

impl DeltaPlan {
    /// Mirror `plan` into delta operators, resolving key attributes to
    /// column offsets against `storage`'s schemas. Returns `None` when
    /// the plan contains an operator with no delta form (`Project`,
    /// `GroupCount`, `Goj`) or references an unknown table/attribute —
    /// the caller then falls back to refresh-on-poll maintenance.
    #[must_use]
    pub fn try_build(plan: &PhysPlan, storage: &Storage) -> Option<DeltaPlan> {
        let mut dp = DeltaPlan {
            nodes: Vec::new(),
            schemas: Vec::new(),
            rels: Vec::new(),
        };
        dp.build(plan, storage)?;
        dp.rels.sort();
        dp.rels.dedup();
        Some(dp)
    }

    /// The distinct base relations the plan reads (sorted).
    #[must_use]
    pub fn rels(&self) -> &[String] {
        &self.rels
    }

    /// The output schema of the maintained result.
    #[must_use]
    pub fn schema(&self) -> &SchemaRef {
        self.schemas.last().expect("plan has at least one node")
    }

    fn push(&mut self, node: DeltaNode, schema: SchemaRef) -> usize {
        self.nodes.push(node);
        self.schemas.push(schema);
        self.nodes.len() - 1
    }

    fn build_scan(&mut self, rel: &str, storage: &Storage) -> Option<usize> {
        let schema = storage.get_named(rel)?.relation().schema().clone();
        self.rels.push(rel.to_string());
        Some(self.push(
            DeltaNode::Scan {
                rel: rel.to_string(),
            },
            schema,
        ))
    }

    fn build(&mut self, plan: &PhysPlan, storage: &Storage) -> Option<usize> {
        match plan {
            PhysPlan::Scan { rel } => self.build_scan(rel, storage),
            PhysPlan::Filter { input, pred } => {
                let child = self.build(input, storage)?;
                let schema = self.schemas[child].clone();
                Some(self.push(
                    DeltaNode::Filter {
                        input: child,
                        pred: pred.clone(),
                    },
                    schema,
                ))
            }
            // Reduction is semantically transparent: the reduced plan
            // computes the same relation, so the delta mirror simply
            // maintains the unreduced input.
            PhysPlan::SemiReduce { input, .. } => self.build(input, storage),
            PhysPlan::HashJoin {
                kind,
                probe,
                build,
                probe_keys,
                build_keys,
                residual,
            } => self.build_join(
                storage, *kind, probe, build, probe_keys, build_keys, residual,
            ),
            PhysPlan::IndexJoin {
                kind,
                outer,
                inner,
                outer_keys,
                inner_keys,
                residual,
            } => {
                let inner_plan = PhysPlan::scan(inner.clone());
                self.build_join(
                    storage,
                    *kind,
                    outer,
                    &inner_plan,
                    outer_keys,
                    inner_keys,
                    residual,
                )
            }
            PhysPlan::MergeJoin {
                kind,
                left,
                right,
                left_keys,
                right_keys,
                residual,
            } => self.build_join(storage, *kind, left, right, left_keys, right_keys, residual),
            PhysPlan::NlJoin {
                kind,
                left,
                right,
                pred,
            } => self.build_join(storage, *kind, left, right, &[], &[], pred),
            PhysPlan::Project { .. } | PhysPlan::GroupCount { .. } | PhysPlan::Goj { .. } => None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_join(
        &mut self,
        storage: &Storage,
        kind: JoinKind,
        left: &PhysPlan,
        right: &PhysPlan,
        left_keys: &[fro_algebra::Attr],
        right_keys: &[fro_algebra::Attr],
        residual: &Pred,
    ) -> Option<usize> {
        let l = self.build(left, storage)?;
        let r = self.build(right, storage)?;
        let ls = self.schemas[l].clone();
        let rs = self.schemas[r].clone();
        let left_cols: Option<Vec<usize>> = left_keys.iter().map(|a| ls.index_of(a)).collect();
        let right_cols: Option<Vec<usize>> = right_keys.iter().map(|a| rs.index_of(a)).collect();
        let (left_cols, right_cols) = (left_cols?, right_cols?);
        if left_cols.len() != right_cols.len() {
            return None;
        }
        let pair_schema: SchemaRef = Arc::new(ls.concat(&rs).ok()?);
        let right_leaf = leaf_side_key(right, &right_cols);
        let out_schema = match kind {
            JoinKind::Semi | JoinKind::Anti => ls.clone(),
            _ => pair_schema.clone(),
        };
        let node = JoinNode {
            kind,
            left: l,
            right: r,
            left_cols,
            right_cols,
            residual: residual.clone(),
            pair_schema,
            left_width: ls.len(),
            right_width: rs.len(),
            left_index: SideIndex::default(),
            right_index: SideIndex::default(),
            match_left: HashMap::new(),
            match_right: HashMap::new(),
            out: HashMap::new(),
            right_leaf,
        };
        Some(self.push(DeltaNode::Join(Box::new(node)), out_schema))
    }

    /// Drop all maintained join state (before a fresh
    /// [`DeltaPlan::initialize`]).
    pub fn reset(&mut self) {
        for node in &mut self.nodes {
            if let DeltaNode::Join(jn) = node {
                jn.left_index = SideIndex::default();
                jn.right_index = SideIndex::default();
                jn.match_left.clear();
                jn.match_right.clear();
                jn.out.clear();
            }
        }
    }

    /// Materialize the view from scratch against `storage`, building
    /// every join's side indexes and match counts along the way. Leaf
    /// build sides found in `pool` are cloned instead of rebuilt (and
    /// freshly built ones are contributed back). Returns the full
    /// result rows (deduplicated, unordered).
    pub fn initialize(
        &mut self,
        storage: &Storage,
        pool: &mut BuildSidePool,
        stats: &mut ExecStats,
    ) -> Result<Vec<Tuple>, ExecError> {
        self.reset();
        // Resolve pool hits up front: a hit lets the join skip
        // computing its (leaf) right subtree entirely.
        let mut pooled: HashMap<usize, SideIndex> = HashMap::new();
        let mut skip: Vec<bool> = vec![false; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            let DeltaNode::Join(jn) = node else { continue };
            let Some(key) = &jn.right_leaf else { continue };
            if let Some(side) = pool.sides.get(key) {
                pool.hits += 1;
                pooled.insert(id, (**side).clone());
                mark_subtree(&self.nodes, jn.right, &mut skip);
            }
        }
        let mut outs: Vec<Vec<Tuple>> = Vec::with_capacity(self.nodes.len());
        for (id, &skipped) in skip.iter().enumerate() {
            if skipped {
                outs.push(Vec::new());
                continue;
            }
            let mut node =
                std::mem::replace(&mut self.nodes[id], DeltaNode::Scan { rel: String::new() });
            let rows = match &mut node {
                DeltaNode::Scan { rel } => {
                    let rows = storage.lookup_named(rel)?.relation().rows().to_vec();
                    stats.tuples_retrieved += rows.len() as u64;
                    rows
                }
                DeltaNode::Filter { input, pred } => {
                    let schema = &self.schemas[*input];
                    let mut kept = Vec::new();
                    for t in std::mem::take(&mut outs[*input]) {
                        if pred.eval(&t, schema).map_err(ExecError::Algebra)?.is_true() {
                            kept.push(t);
                        }
                    }
                    kept
                }
                DeltaNode::Join(jn) => {
                    let left_rows = std::mem::take(&mut outs[jn.left]);
                    let right = match pooled.remove(&id) {
                        Some(side) => side,
                        None => {
                            let mut side = SideIndex::default();
                            for t in std::mem::take(&mut outs[jn.right]) {
                                let key = key_of(&t, &jn.right_cols);
                                side.insert(key, t);
                                stats.hash_build_rows += 1;
                            }
                            if let Some(key) = &jn.right_leaf {
                                pool.sides.insert(key.clone(), Arc::new(side.clone()));
                            }
                            side
                        }
                    };
                    init_join(jn, left_rows, right, stats)?
                }
            };
            self.nodes[id] = node;
            outs.push(rows);
        }
        Ok(outs.pop().expect("plan has at least one node"))
    }

    /// Propagate one base-relation delta through the plan, updating
    /// every join's maintained state, and return the set-level delta
    /// of the view result. `delta` must be exact (inserts really novel,
    /// deletes really present) — the mutation APIs guarantee this.
    pub fn apply(
        &mut self,
        base: &str,
        delta: &RowDelta,
        stats: &mut ExecStats,
    ) -> Result<RowDelta, ExecError> {
        let mut deltas: Vec<RowDelta> = Vec::with_capacity(self.nodes.len());
        for id in 0..self.nodes.len() {
            let mut node =
                std::mem::replace(&mut self.nodes[id], DeltaNode::Scan { rel: String::new() });
            let d = match &mut node {
                DeltaNode::Scan { rel } => {
                    if rel.as_str() == base {
                        stats.delta_rows_in += delta.len() as u64;
                        delta.clone()
                    } else {
                        RowDelta::default()
                    }
                }
                DeltaNode::Filter { input, pred } => {
                    let schema = &self.schemas[*input];
                    let child = std::mem::take(&mut deltas[*input]);
                    stats.delta_rows_in += child.len() as u64;
                    let mut d = RowDelta::default();
                    for t in child.inserts {
                        if pred.eval(&t, schema).map_err(ExecError::Algebra)?.is_true() {
                            d.inserts.push(t);
                        }
                    }
                    for t in child.deletes {
                        if pred.eval(&t, schema).map_err(ExecError::Algebra)?.is_true() {
                            d.deletes.push(t);
                        }
                    }
                    d
                }
                DeltaNode::Join(jn) => {
                    let dl = std::mem::take(&mut deltas[jn.left]);
                    let dr = std::mem::take(&mut deltas[jn.right]);
                    stats.delta_rows_in += (dl.len() + dr.len()) as u64;
                    apply_join(jn, dl, dr)?
                }
            };
            self.nodes[id] = node;
            deltas.push(d);
        }
        Ok(deltas
            .pop()
            .expect("plan has at least one node")
            .normalize())
    }
}

/// The pool key of a right subtree that is a bare or filtered scan.
fn leaf_side_key(plan: &PhysPlan, cols: &[usize]) -> Option<SideKey> {
    match plan {
        PhysPlan::Scan { rel } => Some(SideKey {
            rel: rel.clone(),
            cols: cols.to_vec(),
            pred: String::new(),
        }),
        PhysPlan::Filter { input, pred } => match input.as_ref() {
            PhysPlan::Scan { rel } => Some(SideKey {
                rel: rel.clone(),
                cols: cols.to_vec(),
                pred: pred.to_string(),
            }),
            _ => None,
        },
        _ => None,
    }
}

/// Mark `root` and its descendants in `skip`.
fn mark_subtree(nodes: &[DeltaNode], root: usize, skip: &mut [bool]) {
    skip[root] = true;
    match &nodes[root] {
        DeltaNode::Scan { .. } => {}
        DeltaNode::Filter { input, .. } => mark_subtree(nodes, *input, skip),
        DeltaNode::Join(jn) => {
            mark_subtree(nodes, jn.left, skip);
            mark_subtree(nodes, jn.right, skip);
        }
    }
}

/// Matching rows of `index` for probe row `probe`: equi-key bucket
/// filtered by the residual over the concatenated pair. `probe_is_left`
/// fixes the concatenation order.
fn matching_rows(
    index: &SideIndex,
    key: &Option<Vec<Value>>,
    probe: &Tuple,
    probe_is_left: bool,
    residual: &Pred,
    pair_schema: &SchemaRef,
) -> Result<Vec<Tuple>, ExecError> {
    let Some(key) = key else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for cand in index.bucket(key) {
        let pair = if probe_is_left {
            probe.concat(cand)
        } else {
            cand.concat(probe)
        };
        if residual
            .eval(&pair, pair_schema)
            .map_err(ExecError::Algebra)?
            .is_true()
        {
            out.push(cand.clone());
        }
    }
    Ok(out)
}

/// Bump the derivation refcount of `t`, recording a set-level insert
/// on the `0 → 1` transition.
fn emit(out: &mut HashMap<Tuple, i64>, t: Tuple, d: &mut RowDelta) {
    let c = out.entry(t.clone()).or_insert(0);
    *c += 1;
    if *c == 1 {
        d.inserts.push(t);
    }
}

/// Drop one derivation of `t`, recording a set-level delete on the
/// `1 → 0` transition.
fn retract(out: &mut HashMap<Tuple, i64>, t: Tuple, d: &mut RowDelta) {
    match out.get_mut(&t) {
        Some(c) => {
            *c -= 1;
            if *c == 0 {
                out.remove(&t);
                d.deletes.push(t);
            }
        }
        None => debug_assert!(false, "retract of underived tuple"),
    }
}

/// Initial join materialization: `right` is already indexed (built or
/// pooled); insert every left row against it, then complete the
/// full-outer right pads. Populates `jn`'s indexes, match counts, and
/// output refcounts; returns the join's full output.
fn init_join(
    jn: &mut JoinNode,
    left_rows: Vec<Tuple>,
    right: SideIndex,
    stats: &mut ExecStats,
) -> Result<Vec<Tuple>, ExecError> {
    jn.right_index = right;
    let mut sink = RowDelta::default();
    for l in left_rows {
        let key = key_of(&l, &jn.left_cols);
        let ms = matching_rows(
            &jn.right_index,
            &key,
            &l,
            true,
            &jn.residual,
            &jn.pair_schema,
        )?;
        if jn.kind != JoinKind::Inner {
            jn.match_left.insert(l.clone(), ms.len() as i64);
        }
        match jn.kind {
            JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter => {
                for r in &ms {
                    if jn.kind == JoinKind::FullOuter {
                        *jn.match_right.entry(r.clone()).or_insert(0) += 1;
                    }
                    emit(&mut jn.out, l.concat(r), &mut sink);
                }
                if ms.is_empty() && jn.kind != JoinKind::Inner {
                    emit(
                        &mut jn.out,
                        l.concat(&Tuple::nulls(jn.right_width)),
                        &mut sink,
                    );
                }
            }
            JoinKind::Semi => {
                if !ms.is_empty() {
                    emit(&mut jn.out, l.clone(), &mut sink);
                }
            }
            JoinKind::Anti => {
                if ms.is_empty() {
                    emit(&mut jn.out, l.clone(), &mut sink);
                }
            }
        }
        jn.left_index.insert(key, l);
        stats.hash_build_rows += 1;
    }
    if jn.kind == JoinKind::FullOuter {
        let pads: Vec<Tuple> = jn
            .right_index
            .rows()
            .filter(|r| jn.match_right.get(*r).copied().unwrap_or(0) == 0)
            .map(|r| Tuple::nulls(jn.left_width).concat(r))
            .collect();
        for pad in pads {
            emit(&mut jn.out, pad, &mut sink);
        }
    }
    Ok(jn.out.keys().cloned().collect())
}

/// One incremental step of a delta join: apply the left delta against
/// the old right state, then the right delta against the updated left
/// state. Returns the set-level output delta.
fn apply_join(jn: &mut JoinNode, dl: RowDelta, dr: RowDelta) -> Result<RowDelta, ExecError> {
    let mut d = RowDelta::default();
    let (lw, rw) = (jn.left_width, jn.right_width);

    // Phase A: left deletes, then left inserts, against R as it stands.
    for l in &dl.deletes {
        let key = key_of(l, &jn.left_cols);
        jn.left_index.remove(&key, l);
        let ms = matching_rows(
            &jn.right_index,
            &key,
            l,
            true,
            &jn.residual,
            &jn.pair_schema,
        )?;
        if jn.kind != JoinKind::Inner {
            let mc = jn.match_left.remove(l).unwrap_or(0);
            debug_assert_eq!(mc as usize, ms.len(), "match count drifted");
        }
        match jn.kind {
            JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter => {
                for r in &ms {
                    retract(&mut jn.out, l.concat(r), &mut d);
                    if jn.kind == JoinKind::FullOuter {
                        let rc = jn.match_right.entry(r.clone()).or_insert(0);
                        *rc -= 1;
                        if *rc == 0 {
                            emit(&mut jn.out, Tuple::nulls(lw).concat(r), &mut d);
                        }
                    }
                }
                if ms.is_empty() && jn.kind != JoinKind::Inner {
                    retract(&mut jn.out, l.concat(&Tuple::nulls(rw)), &mut d);
                }
            }
            JoinKind::Semi => {
                if !ms.is_empty() {
                    retract(&mut jn.out, l.clone(), &mut d);
                }
            }
            JoinKind::Anti => {
                if ms.is_empty() {
                    retract(&mut jn.out, l.clone(), &mut d);
                }
            }
        }
    }
    for l in &dl.inserts {
        let key = key_of(l, &jn.left_cols);
        let ms = matching_rows(
            &jn.right_index,
            &key,
            l,
            true,
            &jn.residual,
            &jn.pair_schema,
        )?;
        if jn.kind != JoinKind::Inner {
            jn.match_left.insert(l.clone(), ms.len() as i64);
        }
        match jn.kind {
            JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter => {
                for r in &ms {
                    emit(&mut jn.out, l.concat(r), &mut d);
                    if jn.kind == JoinKind::FullOuter {
                        let rc = jn.match_right.entry(r.clone()).or_insert(0);
                        *rc += 1;
                        if *rc == 1 {
                            retract(&mut jn.out, Tuple::nulls(lw).concat(r), &mut d);
                        }
                    }
                }
                if ms.is_empty() && jn.kind != JoinKind::Inner {
                    emit(&mut jn.out, l.concat(&Tuple::nulls(rw)), &mut d);
                }
            }
            JoinKind::Semi => {
                if !ms.is_empty() {
                    emit(&mut jn.out, l.clone(), &mut d);
                }
            }
            JoinKind::Anti => {
                if ms.is_empty() {
                    emit(&mut jn.out, l.clone(), &mut d);
                }
            }
        }
        jn.left_index.insert(key, l.clone());
    }

    // Phase B: right deletes, then right inserts, against updated L.
    for r in &dr.deletes {
        let key = key_of(r, &jn.right_cols);
        jn.right_index.remove(&key, r);
        let rc = if jn.kind == JoinKind::FullOuter {
            jn.match_right.remove(r).unwrap_or(0)
        } else {
            0
        };
        let ms = matching_rows(
            &jn.left_index,
            &key,
            r,
            false,
            &jn.residual,
            &jn.pair_schema,
        )?;
        for l in &ms {
            match jn.kind {
                JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter => {
                    retract(&mut jn.out, l.concat(r), &mut d);
                }
                JoinKind::Semi | JoinKind::Anti => {}
            }
            if jn.kind != JoinKind::Inner {
                let mc = jn.match_left.entry(l.clone()).or_insert(0);
                *mc -= 1;
                if *mc == 0 {
                    match jn.kind {
                        JoinKind::LeftOuter | JoinKind::FullOuter => {
                            emit(&mut jn.out, l.concat(&Tuple::nulls(rw)), &mut d);
                        }
                        JoinKind::Semi => retract(&mut jn.out, l.clone(), &mut d),
                        JoinKind::Anti => emit(&mut jn.out, l.clone(), &mut d),
                        JoinKind::Inner => unreachable!(),
                    }
                }
            }
        }
        if jn.kind == JoinKind::FullOuter && rc == 0 {
            retract(&mut jn.out, Tuple::nulls(lw).concat(r), &mut d);
        }
    }
    for r in &dr.inserts {
        let key = key_of(r, &jn.right_cols);
        let ms = matching_rows(
            &jn.left_index,
            &key,
            r,
            false,
            &jn.residual,
            &jn.pair_schema,
        )?;
        if jn.kind == JoinKind::FullOuter {
            jn.match_right.insert(r.clone(), ms.len() as i64);
            if ms.is_empty() {
                emit(&mut jn.out, Tuple::nulls(lw).concat(r), &mut d);
            }
        }
        for l in &ms {
            match jn.kind {
                JoinKind::Inner | JoinKind::LeftOuter | JoinKind::FullOuter => {
                    emit(&mut jn.out, l.concat(r), &mut d);
                }
                JoinKind::Semi | JoinKind::Anti => {}
            }
            if jn.kind != JoinKind::Inner {
                let mc = jn.match_left.entry(l.clone()).or_insert(0);
                *mc += 1;
                if *mc == 1 {
                    match jn.kind {
                        JoinKind::LeftOuter | JoinKind::FullOuter => {
                            retract(&mut jn.out, l.concat(&Tuple::nulls(rw)), &mut d);
                        }
                        JoinKind::Semi => emit(&mut jn.out, l.clone(), &mut d),
                        JoinKind::Anti => retract(&mut jn.out, l.clone(), &mut d),
                        JoinKind::Inner => unreachable!(),
                    }
                }
            }
        }
        jn.right_index.insert(key, r.clone());
    }
    Ok(d.normalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute;
    use fro_algebra::{Attr, Relation};
    use std::collections::BTreeSet;

    fn storage_rs() -> Storage {
        let mut storage = Storage::new();
        storage.insert(
            "R",
            Relation::from_ints("R", &["k", "a"], &[&[1, 10], &[2, 20], &[3, 30]]),
        );
        storage.insert(
            "S",
            Relation::from_ints("S", &["k", "b"], &[&[2, 200], &[4, 400]]),
        );
        storage
    }

    fn join_plan(kind: JoinKind) -> PhysPlan {
        PhysPlan::HashJoin {
            kind,
            probe: Box::new(PhysPlan::scan("R")),
            build: Box::new(PhysPlan::scan("S")),
            probe_keys: vec![Attr::parse("R.k")],
            build_keys: vec![Attr::parse("S.k")],
            residual: Pred::always(),
        }
    }

    /// Maintained rows after a mutation must equal a fresh engine run.
    fn check_against_engine(
        plan: &PhysPlan,
        storage: &Storage,
        dp: &DeltaPlan,
        view: &BTreeSet<Tuple>,
    ) {
        let mut stats = ExecStats::new();
        let expect = execute(plan, storage, &mut stats).unwrap();
        let mut rows: Vec<Tuple> = expect.rows().to_vec();
        rows.sort_unstable();
        let got: Vec<Tuple> = view.iter().cloned().collect();
        assert_eq!(got, rows, "maintained view diverged for {:?}", dp.rels());
    }

    fn apply_to_view(view: &mut BTreeSet<Tuple>, d: &RowDelta) {
        for t in &d.deletes {
            assert!(view.remove(t), "delete of absent view row");
        }
        for t in &d.inserts {
            assert!(view.insert(t.clone()), "insert of present view row");
        }
    }

    #[test]
    fn all_kinds_maintain_under_appends_and_deletes() {
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::FullOuter,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            let mut storage = storage_rs();
            let plan = join_plan(kind);
            let mut dp = DeltaPlan::try_build(&plan, &storage).unwrap();
            let mut pool = BuildSidePool::new();
            let mut stats = ExecStats::new();
            let init = dp.initialize(&storage, &mut pool, &mut stats).unwrap();
            let mut view: BTreeSet<Tuple> = init.into_iter().collect();
            check_against_engine(&plan, &storage, &dp, &view);

            // Append a matching and a non-matching S row.
            let add = vec![
                Tuple::new(vec![Value::Int(1), Value::Int(100)]),
                Tuple::new(vec![Value::Int(9), Value::Int(900)]),
            ];
            let mut rel = storage.get("S").unwrap().relation().clone();
            let mut rows = rel.rows().to_vec();
            rows.extend(add.clone());
            rel = Relation::new(rel.schema().clone(), rows).unwrap();
            storage.insert("S", rel);
            let d = dp
                .apply("S", &RowDelta::from_inserts(add), &mut stats)
                .unwrap();
            apply_to_view(&mut view, &d);
            check_against_engine(&plan, &storage, &dp, &view);
            assert!(stats.delta_rows_in > 0);

            // Delete the last match of R.k=2 — the outerjoin pad must
            // come back, the semi row must die, the anti row appear.
            let del = vec![Tuple::new(vec![Value::Int(2), Value::Int(200)])];
            let rel = storage.get("S").unwrap().relation().clone();
            let rows: Vec<Tuple> = rel
                .rows()
                .iter()
                .filter(|t| **t != del[0])
                .cloned()
                .collect();
            storage.insert("S", Relation::new(rel.schema().clone(), rows).unwrap());
            let d = dp
                .apply("S", &RowDelta::from_deletes(del), &mut stats)
                .unwrap();
            apply_to_view(&mut view, &d);
            check_against_engine(&plan, &storage, &dp, &view);
        }
    }

    #[test]
    fn full_outer_all_null_pad_collision_is_refcounted() {
        // L = {allnull}, R = {allnull}: both pads are the same all-null
        // output tuple; one derivation must survive deleting one side.
        let mut storage = Storage::new();
        let l = Relation::new(
            Arc::new(fro_algebra::Schema::new(vec![Attr::parse("L.x")]).unwrap()),
            vec![Tuple::new(vec![Value::Null])],
        )
        .unwrap();
        let r = Relation::new(
            Arc::new(fro_algebra::Schema::new(vec![Attr::parse("Rr.y")]).unwrap()),
            vec![Tuple::new(vec![Value::Null])],
        )
        .unwrap();
        storage.insert("L", l);
        storage.insert("Rr", r);
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::FullOuter,
            probe: Box::new(PhysPlan::scan("L")),
            build: Box::new(PhysPlan::scan("Rr")),
            probe_keys: vec![Attr::parse("L.x")],
            build_keys: vec![Attr::parse("Rr.y")],
            residual: Pred::always(),
        };
        let mut dp = DeltaPlan::try_build(&plan, &storage).unwrap();
        let mut pool = BuildSidePool::new();
        let mut stats = ExecStats::new();
        let init = dp.initialize(&storage, &mut pool, &mut stats).unwrap();
        assert_eq!(init.len(), 1, "two pads collide into one all-null row");
        let mut view: BTreeSet<Tuple> = init.into_iter().collect();
        // Deleting the L row drops one derivation; the row survives.
        let d = dp
            .apply(
                "L",
                &RowDelta::from_deletes(vec![Tuple::new(vec![Value::Null])]),
                &mut stats,
            )
            .unwrap();
        assert!(d.is_empty(), "refcount absorbs the collision: {d:?}");
        apply_to_view(&mut view, &d);
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn unsupported_operators_refuse_a_delta_plan() {
        let storage = storage_rs();
        let plan = PhysPlan::GroupCount {
            input: Box::new(PhysPlan::scan("R")),
            group_attrs: vec![Attr::parse("R.k")],
            counted: None,
        };
        assert!(DeltaPlan::try_build(&plan, &storage).is_none());
        assert!(DeltaPlan::try_build(&PhysPlan::scan("missing"), &storage).is_none());
    }

    #[test]
    fn pool_reuses_leaf_build_sides() {
        let storage = storage_rs();
        let plan = join_plan(JoinKind::Inner);
        let mut pool = BuildSidePool::new();
        let mut stats = ExecStats::new();
        let mut dp1 = DeltaPlan::try_build(&plan, &storage).unwrap();
        dp1.initialize(&storage, &mut pool, &mut stats).unwrap();
        assert_eq!(pool.hits(), 0);
        assert_eq!(pool.len(), 1);
        let built_before = stats.hash_build_rows;
        let mut dp2 = DeltaPlan::try_build(&plan, &storage).unwrap();
        dp2.initialize(&storage, &mut pool, &mut stats).unwrap();
        assert_eq!(pool.hits(), 1, "second registration reuses the side");
        // The pooled side's rows were not re-hashed; only left rows were.
        assert_eq!(stats.hash_build_rows - built_before, 3);
        pool.invalidate_rel("S");
        assert!(pool.is_empty());
    }

    #[test]
    fn normalize_cancels_oscillations() {
        let t = Tuple::new(vec![Value::Int(1)]);
        let d = RowDelta {
            inserts: vec![t.clone()],
            deletes: vec![t.clone()],
        };
        assert!(d.normalize().is_empty());
    }
}
