//! The push-based pipelined executor ([`crate::ExecMode::Pipelined`],
//! the default).
//!
//! A [`PhysPlan`] is compiled into **pipelines**: maximal
//! scan → filter → probe → project spines that fuse into a single
//! closure-chain pass over morsels with *no intermediate `Vec<Tuple>`
//! between fused operators*. A probe-side row travels the whole spine
//! as a stack of borrowed **fragments** (`Vec<&Tuple>`: the source row,
//! then one matched build row or null pad per wide join); residuals are
//! evaluated on the virtual concatenation
//! ([`BoundPred::eval_parts`]) and the wide output tuple is allocated
//! exactly once, at the sink. Hash-join build sides that are bare
//! scans are read zero-copy straight out of [`Storage`] — a fully
//! fused plan therefore reports `rows_materialized = 0`.
//!
//! **Pipeline breakers** — hash-join build sides that are themselves
//! plans, `GroupCount`, merge joins (sort barrier), full outerjoins
//! (their unmatched-side epilogue needs the whole probe result), `Goj`,
//! and mid-spine projections — keep the existing radix-partitioned
//! morsel-parallel materializing operators from [`crate::engine`]: the
//! compiler cuts the spine at each breaker, executes the breaker's
//! pipelines first (build before probe), and the materialized result
//! becomes the next pipeline's source.
//!
//! The invariant, enforced by `tests/pipelined_property.rs` and by
//! routing every existing engine property suite through this path (it
//! is the default), is **bit-identical output**: rows, row order, and
//! every work counter (`tuples_retrieved`, `index_probes`,
//! `comparisons`, `hash_build_rows`, `rows_output`) match the
//! materializing engine exactly, at every thread count, morsel size,
//! and partition count. Only the bookkeeping split differs:
//! `rows_materialized` counts breaker results alone, and
//! `rows_pipelined` / `pipelines` count the flow that never touched an
//! intermediate buffer.

use crate::config::ExecConfig;
use crate::engine::{
    bind_pred, dedup_rows, group_count_partitioned, hash_join, merge_join, nl_join, render_report,
    resolve_cols, ExecError, JoinTable,
};
use crate::plan::{JoinKind, PhysPlan};
use crate::stats::ExecStats;
use crate::storage::Storage;
use fro_algebra::ops::BoundPred;
use fro_algebra::{AlgebraError, Attr, Bitmap, ColumnSet, Relation, Schema, Tuple, Value};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Immutable per-run context.
struct Cx<'s> {
    storage: &'s Storage,
    cfg: &'s ExecConfig,
}

/// Mutable per-run state: counters, per-plan-node output-row slots
/// (pre-order indexed, for `explain_analyze`), and the pipeline trace.
struct Rs<'a> {
    stats: &'a mut ExecStats,
    slots: &'a mut [u64],
    trace: &'a mut Vec<String>,
}

/// Number of plan nodes, counted exactly as the explain walk does
/// (an `IndexJoin`'s inner table is not a node).
fn n_nodes(plan: &PhysPlan) -> usize {
    1 + match plan {
        PhysPlan::Scan { .. } => 0,
        PhysPlan::Filter { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::GroupCount { input, .. } => n_nodes(input),
        PhysPlan::IndexJoin { outer, .. } => n_nodes(outer),
        PhysPlan::HashJoin { probe, build, .. } => n_nodes(probe) + n_nodes(build),
        PhysPlan::SemiReduce { input, source, .. } => n_nodes(input) + n_nodes(source),
        PhysPlan::MergeJoin { left, right, .. }
        | PhysPlan::NlJoin { left, right, .. }
        | PhysPlan::Goj { left, right, .. } => n_nodes(left) + n_nodes(right),
    }
}

/// The node label `explain_analyze` prints — byte-identical to the
/// materializing annotator's labels.
fn label_of(plan: &PhysPlan) -> String {
    match plan {
        PhysPlan::Scan { rel } => format!("Scan {rel}"),
        PhysPlan::Filter { pred, .. } => format!("Filter [{pred}]"),
        PhysPlan::Project { .. } => "Project".to_owned(),
        PhysPlan::HashJoin { kind, .. } => format!("HashJoin({kind})"),
        PhysPlan::IndexJoin { kind, inner, .. } => format!("IndexJoin({kind}) {inner}"),
        PhysPlan::MergeJoin { kind, .. } => format!("MergeJoin({kind})"),
        PhysPlan::NlJoin { kind, .. } => format!("NlJoin({kind})"),
        PhysPlan::GroupCount { .. } => "GroupCount".to_owned(),
        PhysPlan::SemiReduce { pass, .. } => format!("SemiReduce({pass})"),
        PhysPlan::Goj { .. } => "Goj".to_owned(),
    }
}

/// Pre-order `(depth, label)` walk in the exact order the materializing
/// annotator reserves report lines; zipped with the slot counts it
/// reproduces its report byte for byte.
fn collect_lines(plan: &PhysPlan, depth: usize, lines: &mut Vec<(usize, String)>) {
    lines.push((depth, label_of(plan)));
    match plan {
        PhysPlan::Scan { .. } => {}
        PhysPlan::Filter { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::GroupCount { input, .. } => collect_lines(input, depth + 1, lines),
        PhysPlan::IndexJoin { outer, .. } => collect_lines(outer, depth + 1, lines),
        PhysPlan::HashJoin { probe, build, .. } => {
            collect_lines(probe, depth + 1, lines);
            collect_lines(build, depth + 1, lines);
        }
        PhysPlan::SemiReduce { input, source, .. } => {
            collect_lines(input, depth + 1, lines);
            collect_lines(source, depth + 1, lines);
        }
        PhysPlan::MergeJoin { left, right, .. }
        | PhysPlan::NlJoin { left, right, .. }
        | PhysPlan::Goj { left, right, .. } => {
            collect_lines(left, depth + 1, lines);
            collect_lines(right, depth + 1, lines);
        }
    }
}

/// Execute `plan` with the pipelined engine. Entry point for
/// [`crate::execute_with`]; the caller sets `rows_output`.
pub(crate) fn run_pipelined(
    plan: &PhysPlan,
    storage: &Storage,
    stats: &mut ExecStats,
    cfg: &ExecConfig,
) -> Result<Relation, ExecError> {
    let mut slots = vec![0u64; n_nodes(plan)];
    let mut trace = Vec::new();
    let cx = Cx { storage, cfg };
    let mut rs = Rs {
        stats,
        slots: &mut slots,
        trace: &mut trace,
    };
    exec_region(plan, 0, &cx, &mut rs)
}

/// Execute `plan` and render the `EXPLAIN ANALYZE` report: the same
/// per-node row counts and totals the materializing engine prints,
/// followed by the pipeline breakdown (which operators fused into each
/// pipeline, and where breakers cut the plan).
pub(crate) fn explain_pipelined(
    plan: &PhysPlan,
    storage: &Storage,
    cfg: &ExecConfig,
) -> Result<(Relation, String), ExecError> {
    let mut stats = ExecStats::new();
    let mut slots = vec![0u64; n_nodes(plan)];
    let mut trace = Vec::new();
    let cx = Cx { storage, cfg };
    let rel = {
        let mut rs = Rs {
            stats: &mut stats,
            slots: &mut slots,
            trace: &mut trace,
        };
        exec_region(plan, 0, &cx, &mut rs)?
    };
    stats.rows_output = rel.len() as u64;
    let mut labels = Vec::new();
    collect_lines(plan, 0, &mut labels);
    let lines: Vec<(usize, String, u64)> = labels
        .into_iter()
        .zip(&slots)
        .map(|((depth, label), &rows)| (depth, label, rows))
        .collect();
    let mut out = render_report(&lines, &stats);
    out.push_str(&format!(
        "pipelines: {} (rows pipelined={}, rows materialized={})\n",
        stats.pipelines, stats.rows_pipelined, stats.rows_materialized
    ));
    for t in &trace {
        out.push_str("  ");
        out.push_str(t);
        out.push('\n');
    }
    Ok((rel, out))
}

/// Execute a plan subtree rooted at pre-order slot `base` and return
/// its (region-root) result. Dispatches between the streaming spine
/// compiler and the breaker operators.
fn exec_region(
    plan: &PhysPlan,
    base: usize,
    cx: &Cx<'_>,
    rs: &mut Rs<'_>,
) -> Result<Relation, ExecError> {
    match plan {
        PhysPlan::MergeJoin { .. }
        | PhysPlan::GroupCount { .. }
        | PhysPlan::Goj { .. }
        | PhysPlan::HashJoin {
            kind: JoinKind::FullOuter,
            ..
        }
        | PhysPlan::NlJoin {
            kind: JoinKind::FullOuter,
            ..
        } => exec_breaker(plan, base, cx, rs),
        _ => exec_stream(plan, base, cx, rs),
    }
}

/// Execute a subtree whose result feeds a parent as a materialized
/// intermediate: same as [`exec_region`] plus the `rows_materialized`
/// tick (the pipelined engine counts *only* these buffers).
fn exec_inter(
    plan: &PhysPlan,
    base: usize,
    cx: &Cx<'_>,
    rs: &mut Rs<'_>,
) -> Result<Relation, ExecError> {
    let rel = exec_region(plan, base, cx, rs)?;
    rs.stats.rows_materialized += rel.len() as u64;
    Ok(rel)
}

/// Pipeline-breaker nodes: execute the operand subtrees into
/// materialized relations, then run the engine's deterministic
/// morsel-parallel operator — counters tick exactly as in
/// materializing mode.
fn exec_breaker(
    plan: &PhysPlan,
    base: usize,
    cx: &Cx<'_>,
    rs: &mut Rs<'_>,
) -> Result<Relation, ExecError> {
    let out = match plan {
        PhysPlan::HashJoin {
            kind,
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
        } => {
            if probe_keys.len() != build_keys.len() || probe_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let p = exec_inter(probe, base + 1, cx, rs)?;
            let b = exec_inter(build, base + 1 + n_nodes(probe), cx, rs)?;
            rs.trace
                .push(format!("breaker: {} (materialized inputs)", label_of(plan)));
            hash_join(
                *kind,
                &p,
                &b,
                probe_keys,
                build_keys,
                residual,
                Some(cx.storage.interner()),
                rs.stats,
                cx.cfg,
                None,
            )?
        }
        PhysPlan::NlJoin {
            kind,
            left,
            right,
            pred,
        } => {
            let l = exec_inter(left, base + 1, cx, rs)?;
            let r = exec_inter(right, base + 1 + n_nodes(left), cx, rs)?;
            rs.trace
                .push(format!("breaker: {} (materialized inputs)", label_of(plan)));
            nl_join(
                *kind,
                &l,
                &r,
                pred,
                Some(cx.storage.interner()),
                rs.stats,
                cx.cfg,
            )?
        }
        PhysPlan::MergeJoin {
            kind,
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            if left_keys.len() != right_keys.len() || left_keys.is_empty() {
                return Err(ExecError::KeyArityMismatch);
            }
            let l = exec_inter(left, base + 1, cx, rs)?;
            let r = exec_inter(right, base + 1 + n_nodes(left), cx, rs)?;
            rs.trace
                .push(format!("breaker: {} (materialized inputs)", label_of(plan)));
            merge_join(
                *kind,
                &l,
                &r,
                left_keys,
                right_keys,
                residual,
                Some(cx.storage.interner()),
                rs.stats,
            )?
        }
        PhysPlan::GroupCount {
            input,
            group_attrs,
            counted,
        } => {
            let rel = exec_inter(input, base + 1, cx, rs)?;
            rs.trace
                .push(format!("breaker: {} (materialized input)", label_of(plan)));
            group_count_partitioned(&rel, group_attrs, counted.as_ref(), cx.cfg)?
        }
        PhysPlan::Goj {
            left,
            right,
            pred,
            subset,
        } => {
            let l = exec_inter(left, base + 1, cx, rs)?;
            let r = exec_inter(right, base + 1 + n_nodes(left), cx, rs)?;
            rs.stats.comparisons += (l.len() * r.len()) as u64;
            rs.trace
                .push(format!("breaker: {} (materialized inputs)", label_of(plan)));
            fro_algebra::ops::goj(&l, &r, pred, subset).map_err(ExecError::from)?
        }
        _ => unreachable!("exec_breaker only receives breaker nodes"),
    };
    rs.slots[base] += out.len() as u64;
    Ok(out)
}

/// Where a probe stage's non-spine operand rows come from: zero-copy
/// out of storage (bare-scan build/right sides), or from a
/// materialized breaker result held in the region arena.
enum RowsSrc<'s> {
    Storage(&'s [Tuple]),
    Arena(usize),
}

/// One fused operator of a compiled spine, bottom-up order. `slot` is
/// the operator's pre-order explain slot; `key_map` entries are
/// `(fragment index, column within fragment)` resolved from the global
/// concatenated-scheme offsets.
enum StageSpec<'s> {
    Filter {
        pred: BoundPred,
        slot: usize,
    },
    HashProbe {
        kind: JoinKind,
        table_idx: usize,
        key_map: Vec<(u32, u32)>,
        build_cols: Vec<usize>,
        residual: BoundPred,
        pad: Tuple,
        slot: usize,
    },
    IndexProbe {
        kind: JoinKind,
        index: &'s crate::index::HashIndex,
        inner_rows: &'s [Tuple],
        key_map: Vec<(u32, u32)>,
        residual: BoundPred,
        pad: Tuple,
        slot: usize,
    },
    NlProbe {
        kind: JoinKind,
        side_idx: usize,
        residual: BoundPred,
        pad: Tuple,
        slot: usize,
    },
    /// Semijoin-reduction membership probe: pass the fragment chain
    /// through unchanged iff its key has a partner in the source's
    /// hash table. No residual, no pad, no schema growth.
    Reduce {
        table_idx: usize,
        key_map: Vec<(u32, u32)>,
        source_cols: Vec<usize>,
        slot: usize,
    },
}

/// The sink at the top of a spine.
enum Tail {
    /// Concatenate the fragments into the wide output tuple.
    Collect { width: usize },
    /// Fused root projection: emit only the mapped columns (dedup
    /// happens once, after the drive).
    Project { map: Vec<(u32, u32)>, slot: usize },
}

/// Map a global column offset of the spine's concatenated scheme to
/// `(fragment, column)` given the fragment widths.
fn map_col(widths: &[usize], mut col: usize) -> (u32, u32) {
    for (i, &w) in widths.iter().enumerate() {
        if col < w {
            #[allow(clippy::cast_possible_truncation)]
            return (i as u32, col as u32);
        }
        col -= w;
    }
    unreachable!("column offset past the end of the fragment chain")
}

/// Key hash over fragment-mapped columns — the same values, hashed in
/// the same order, as [`crate::engine`]'s `hash_key` over the
/// materialized wide row, hence the same partition and bucket.
/// `None` when any key value is null.
fn hash_parts(parts: &[&Tuple], key_map: &[(u32, u32)]) -> Option<u64> {
    let mut h = DefaultHasher::new();
    for &(p, c) in key_map {
        let v = parts[p as usize].get(c as usize);
        if v.is_null() {
            return None;
        }
        v.hash(&mut h);
    }
    Some(h.finish())
}

/// Column-wise key equality between the fragment chain and a build row.
fn keys_eq_parts(parts: &[&Tuple], key_map: &[(u32, u32)], brow: &Tuple, bcols: &[usize]) -> bool {
    key_map
        .iter()
        .zip(bcols)
        .all(|(&(p, c), &bc)| parts[p as usize].get(c as usize) == brow.get(bc))
}

/// Fill `out` with the fragment-mapped key columns; `false` (and a
/// cleared buffer) when any value is null — SQL equality never matches
/// on null.
fn key_into_parts(parts: &[&Tuple], key_map: &[(u32, u32)], out: &mut Vec<Value>) -> bool {
    out.clear();
    for &(p, c) in key_map {
        let v = parts[p as usize].get(c as usize);
        if v.is_null() {
            out.clear();
            return false;
        }
        out.push(v.clone());
    }
    true
}

/// Compile the maximal streaming spine rooted at `plan` and drive it.
///
/// The walk peels an optional root `Project` as the fused sink, then
/// descends through `Filter`, non-full-outer `HashJoin` (probe side),
/// `IndexJoin` (outer side) and non-full-outer `NlJoin` (left side)
/// until it reaches a `Scan` (the pipeline source) or any other node —
/// a breaker, executed recursively into the region arena.
#[allow(clippy::too_many_lines)]
fn exec_stream(
    plan: &PhysPlan,
    base: usize,
    cx: &Cx<'_>,
    rs: &mut Rs<'_>,
) -> Result<Relation, ExecError> {
    // --- Walk: top-down spine discovery (arity checks mirror the
    // materializing engine's pre-child checks, topmost first).
    let mut tail_attrs: Option<(&[Attr], usize)> = None;
    let mut node = plan;
    let mut slot = base;
    if let PhysPlan::Project { input, attrs } = node {
        tail_attrs = Some((attrs, slot));
        node = input;
        slot += 1;
    }
    let mut chain: Vec<(&PhysPlan, usize)> = Vec::new();
    loop {
        match node {
            PhysPlan::Filter { input, .. } => {
                chain.push((node, slot));
                node = input;
                slot += 1;
            }
            PhysPlan::HashJoin {
                kind,
                probe,
                probe_keys,
                build_keys,
                ..
            } if *kind != JoinKind::FullOuter => {
                if probe_keys.len() != build_keys.len() || probe_keys.is_empty() {
                    return Err(ExecError::KeyArityMismatch);
                }
                chain.push((node, slot));
                node = probe;
                slot += 1;
            }
            PhysPlan::SemiReduce {
                input,
                input_keys,
                source_keys,
                ..
            } => {
                if input_keys.len() != source_keys.len() || input_keys.is_empty() {
                    return Err(ExecError::KeyArityMismatch);
                }
                chain.push((node, slot));
                node = input;
                slot += 1;
            }
            PhysPlan::IndexJoin {
                kind,
                outer,
                outer_keys,
                inner_keys,
                ..
            } => {
                if *kind == JoinKind::FullOuter {
                    return Err(ExecError::Algebra(AlgebraError::BadUnion(
                        "index join cannot implement a full outerjoin (unmatched inner rows are unreachable)"
                            .into(),
                    )));
                }
                if outer_keys.len() != inner_keys.len() || outer_keys.is_empty() {
                    return Err(ExecError::KeyArityMismatch);
                }
                chain.push((node, slot));
                node = outer;
                slot += 1;
            }
            PhysPlan::NlJoin { kind, left, .. } if *kind != JoinKind::FullOuter => {
                chain.push((node, slot));
                node = left;
                slot += 1;
            }
            _ => break,
        }
    }
    let (src_plan, src_slot) = (node, slot);

    // --- Compile, bottom-up: resolve the source, then each stage
    // against the running concatenated scheme. Breaker operands are
    // executed here (build pipelines run before their probe pipeline)
    // and parked in the arena.
    let mut arena: Vec<Relation> = Vec::new();
    let mut desc = String::from("pipeline: ");

    // Columnar mirror of the pipeline source (base-table scans only):
    // lets the drive below evaluate leading filters as vectorized
    // kernels instead of per-row predicate calls.
    let mut src_cols: Option<&ColumnSet> = None;
    let (src, src_schema): (RowsSrc<'_>, Arc<Schema>) = match src_plan {
        PhysPlan::Scan { rel } => {
            let t = cx.storage.lookup_named(rel)?;
            rs.stats.tuples_retrieved += t.len() as u64;
            rs.stats.rows_pipelined += t.len() as u64;
            rs.slots[src_slot] += t.len() as u64;
            desc.push_str(&format!("Scan {rel}"));
            src_cols = Some(t.columns());
            (
                RowsSrc::Storage(t.relation().rows()),
                t.relation().schema().clone(),
            )
        }
        breaker => {
            let rel = exec_inter(breaker, src_slot, cx, rs)?;
            rs.stats.rows_pipelined += rel.len() as u64;
            desc.push_str(&format!("[{}]", label_of(breaker)));
            let schema = rel.schema().clone();
            arena.push(rel);
            (RowsSrc::Arena(arena.len() - 1), schema)
        }
    };

    let mut widths: Vec<usize> = vec![src_schema.len()];
    let mut cur_schema = src_schema;
    let mut specs: Vec<StageSpec<'_>> = Vec::new();
    // Non-spine operand rows (hash build sides, NL right sides) in
    // stage order; arena-backed entries are resolved after the arena
    // freezes. `side_cols` carries the columnar mirror of each side
    // that is a base-table scan (hash builds hash those columns
    // directly).
    let mut sides: Vec<RowsSrc<'_>> = Vec::new();
    let mut side_cols: Vec<Option<&ColumnSet>> = Vec::new();
    // Partition count + side index per hash stage, for the table
    // builds below.
    let mut hash_builds: Vec<(usize, usize)> = Vec::new(); // (side_idx, partitions)

    for &(stage_plan, stage_slot) in chain.iter().rev() {
        match stage_plan {
            PhysPlan::Filter { pred, .. } => {
                let bound = bind_pred(pred, &cur_schema, Some(cx.storage.interner()))?;
                specs.push(StageSpec::Filter {
                    pred: bound,
                    slot: stage_slot,
                });
                desc.push_str(" -> Filter");
            }
            PhysPlan::HashJoin {
                kind,
                probe,
                build,
                probe_keys,
                build_keys,
                residual,
            } => {
                // Resolve the build operand first: child errors surface
                // before key-resolution errors, as in the materializing
                // engine's child-then-join order.
                let build_slot = stage_slot + 1 + n_nodes(probe);
                let (build_len, build_schema, side, bcols) = match build.as_ref() {
                    PhysPlan::Scan { rel } => {
                        let t = cx.storage.lookup_named(rel)?;
                        rs.stats.tuples_retrieved += t.len() as u64;
                        rs.stats.rows_pipelined += t.len() as u64;
                        rs.slots[build_slot] += t.len() as u64;
                        desc.push_str(&format!(" -> HashJoin({kind}, build=Scan {rel})"));
                        (
                            t.len(),
                            t.relation().schema().clone(),
                            RowsSrc::Storage(t.relation().rows()),
                            Some(t.columns()),
                        )
                    }
                    other => {
                        let rel = exec_inter(other, build_slot, cx, rs)?;
                        desc.push_str(&format!(" -> HashJoin({kind}, build=materialized)"));
                        let schema = rel.schema().clone();
                        let len = rel.len();
                        arena.push(rel);
                        (len, schema, RowsSrc::Arena(arena.len() - 1), None)
                    }
                };
                let probe_cols = resolve_cols(&cur_schema, probe_keys)?;
                let build_cols = resolve_cols(&build_schema, build_keys)?;
                let concat = Arc::new(cur_schema.concat(&build_schema)?);
                let residual_bound = bind_pred(residual, &concat, Some(cx.storage.interner()))?;
                let key_map = probe_cols.iter().map(|&c| map_col(&widths, c)).collect();
                let p = cx.cfg.effective_partitions(build_len);
                sides.push(side);
                side_cols.push(bcols);
                hash_builds.push((sides.len() - 1, p));
                specs.push(StageSpec::HashProbe {
                    kind: *kind,
                    table_idx: hash_builds.len() - 1,
                    key_map,
                    build_cols,
                    residual: residual_bound,
                    pad: Tuple::nulls(build_schema.len()),
                    slot: stage_slot,
                });
                if matches!(kind, JoinKind::Inner | JoinKind::LeftOuter) {
                    widths.push(build_schema.len());
                    cur_schema = concat;
                }
            }
            PhysPlan::SemiReduce {
                input,
                source,
                input_keys,
                source_keys,
                pass,
            } => {
                // Resolve the source operand exactly like a hash-join
                // build side: zero-copy out of storage when it is a
                // bare scan, else a materialized arena entry.
                let source_slot = stage_slot + 1 + n_nodes(input);
                let (source_len, source_schema, side, scols) = match source.as_ref() {
                    PhysPlan::Scan { rel } => {
                        let t = cx.storage.lookup_named(rel)?;
                        rs.stats.tuples_retrieved += t.len() as u64;
                        rs.stats.rows_pipelined += t.len() as u64;
                        rs.slots[source_slot] += t.len() as u64;
                        desc.push_str(&format!(" -> SemiReduce({pass}, src=Scan {rel})"));
                        (
                            t.len(),
                            t.relation().schema().clone(),
                            RowsSrc::Storage(t.relation().rows()),
                            Some(t.columns()),
                        )
                    }
                    other => {
                        let rel = exec_inter(other, source_slot, cx, rs)?;
                        desc.push_str(&format!(" -> SemiReduce({pass}, src=materialized)"));
                        let schema = rel.schema().clone();
                        let len = rel.len();
                        arena.push(rel);
                        (len, schema, RowsSrc::Arena(arena.len() - 1), None)
                    }
                };
                let input_cols = resolve_cols(&cur_schema, input_keys)?;
                let source_cols = resolve_cols(&source_schema, source_keys)?;
                let key_map = input_cols.iter().map(|&c| map_col(&widths, c)).collect();
                let p = cx.cfg.effective_partitions(source_len);
                sides.push(side);
                side_cols.push(scols);
                hash_builds.push((sides.len() - 1, p));
                // One reduction pass per compiled stage — ticked here,
                // on the main thread, so the count is deterministic at
                // every thread count (workers merge fresh stats).
                rs.stats.reducer_passes += 1;
                specs.push(StageSpec::Reduce {
                    table_idx: hash_builds.len() - 1,
                    key_map,
                    source_cols,
                    slot: stage_slot,
                });
            }
            PhysPlan::IndexJoin {
                kind,
                inner,
                outer_keys,
                inner_keys,
                residual,
                ..
            } => {
                let inner_table = cx.storage.lookup_named(inner)?;
                let inner_rel = inner_table.relation();
                let mut inner_cols = resolve_cols(inner_rel.schema(), inner_keys)?;
                let mut outer_cols = resolve_cols(&cur_schema, outer_keys)?;
                // The index stores sorted key columns; align the outer
                // key order with it, exactly as the engine does.
                let mut pairs: Vec<(usize, usize)> = inner_cols
                    .iter()
                    .copied()
                    .zip(outer_cols.iter().copied())
                    .collect();
                pairs.sort_unstable_by_key(|&(ic, _)| ic);
                inner_cols = pairs.iter().map(|&(ic, _)| ic).collect();
                outer_cols = pairs.iter().map(|&(_, oc)| oc).collect();
                let index =
                    inner_table
                        .index_on(&inner_cols)
                        .ok_or_else(|| ExecError::MissingIndex {
                            table: inner.clone(),
                            attrs: inner_keys
                                .iter()
                                .map(ToString::to_string)
                                .collect::<Vec<_>>()
                                .join(","),
                        })?;
                let concat = Arc::new(cur_schema.concat(inner_rel.schema())?);
                let residual_bound = bind_pred(residual, &concat, Some(cx.storage.interner()))?;
                let key_map = outer_cols.iter().map(|&c| map_col(&widths, c)).collect();
                specs.push(StageSpec::IndexProbe {
                    kind: *kind,
                    index,
                    inner_rows: inner_rel.rows(),
                    key_map,
                    residual: residual_bound,
                    pad: Tuple::nulls(inner_rel.schema().len()),
                    slot: stage_slot,
                });
                desc.push_str(&format!(" -> IndexJoin({kind}) {inner}"));
                if matches!(kind, JoinKind::Inner | JoinKind::LeftOuter) {
                    widths.push(inner_rel.schema().len());
                    cur_schema = concat;
                }
            }
            PhysPlan::NlJoin {
                kind,
                left,
                right,
                pred,
            } => {
                let right_slot = stage_slot + 1 + n_nodes(left);
                let (right_schema, side) = match right.as_ref() {
                    PhysPlan::Scan { rel } => {
                        let t = cx.storage.lookup_named(rel)?;
                        rs.stats.tuples_retrieved += t.len() as u64;
                        rs.stats.rows_pipelined += t.len() as u64;
                        rs.slots[right_slot] += t.len() as u64;
                        desc.push_str(&format!(" -> NlJoin({kind}, right=Scan {rel})"));
                        (
                            t.relation().schema().clone(),
                            RowsSrc::Storage(t.relation().rows()),
                        )
                    }
                    other => {
                        let rel = exec_inter(other, right_slot, cx, rs)?;
                        desc.push_str(&format!(" -> NlJoin({kind}, right=materialized)"));
                        let schema = rel.schema().clone();
                        arena.push(rel);
                        (schema, RowsSrc::Arena(arena.len() - 1))
                    }
                };
                let concat = Arc::new(cur_schema.concat(&right_schema)?);
                let bound = bind_pred(pred, &concat, Some(cx.storage.interner()))?;
                sides.push(side);
                side_cols.push(None);
                specs.push(StageSpec::NlProbe {
                    kind: *kind,
                    side_idx: sides.len() - 1,
                    residual: bound,
                    pad: Tuple::nulls(right_schema.len()),
                    slot: stage_slot,
                });
                if matches!(kind, JoinKind::Inner | JoinKind::LeftOuter) {
                    widths.push(right_schema.len());
                    cur_schema = concat;
                }
            }
            _ => unreachable!("spine walk only collects fusable stages"),
        }
    }

    // --- Sink: fused root projection, or plain collection.
    let (tail, out_schema) = match tail_attrs {
        None => (
            Tail::Collect {
                width: cur_schema.len(),
            },
            cur_schema.clone(),
        ),
        Some((attrs, proj_slot)) => {
            // Resolve exactly as `ops::project`, error surface included.
            let mut cols = Vec::with_capacity(attrs.len());
            for a in attrs {
                cols.push(
                    cur_schema
                        .index_of(a)
                        .ok_or_else(|| AlgebraError::BadProjection(a.to_string()))
                        .map_err(ExecError::from)?,
                );
            }
            let schema = Arc::new(Schema::new(attrs.to_vec()).map_err(ExecError::from)?);
            let map = cols.iter().map(|&c| map_col(&widths, c)).collect();
            desc.push_str(" -> Project");
            (
                Tail::Project {
                    map,
                    slot: proj_slot,
                },
                schema,
            )
        }
    };
    if matches!(tail, Tail::Collect { .. }) {
        desc.push_str(" -> out");
    }

    rs.stats.pipelines += 1;
    rs.trace.push(desc);

    // Bare-scan pipeline: the sink would clone every row anyway, so
    // clone the table relation wholesale (identical result, one
    // allocation).
    if specs.is_empty() {
        if let (RowsSrc::Storage(_), Tail::Collect { .. }, PhysPlan::Scan { .. }) =
            (&src, &tail, src_plan)
        {
            let t = cx.storage.lookup_named(match src_plan {
                PhysPlan::Scan { rel } => rel,
                _ => unreachable!(),
            })?;
            return Ok(t.relation().clone());
        }
    }

    // --- Freeze the arena, resolve operand rows, build hash tables.
    let arena = arena;
    let specs = specs;
    let side_rows: Vec<&[Tuple]> = sides
        .iter()
        .map(|s| match s {
            RowsSrc::Storage(rows) => *rows,
            RowsSrc::Arena(i) => arena[*i].rows(),
        })
        .collect();
    let mut tables: Vec<JoinTable<'_>> = Vec::with_capacity(hash_builds.len());
    for spec in &specs {
        if let StageSpec::HashProbe {
            table_idx,
            build_cols,
            ..
        }
        | StageSpec::Reduce {
            table_idx,
            source_cols: build_cols,
            ..
        } = spec
        {
            let (side_idx, p) = hash_builds[*table_idx];
            tables.push(JoinTable::build(
                side_rows[side_idx],
                build_cols,
                p,
                cx.cfg,
                rs.stats,
                if cx.cfg.columnar {
                    side_cols[side_idx]
                } else {
                    None
                },
            ));
        }
    }
    let src_rows: &[Tuple] = match &src {
        RowsSrc::Storage(rows) => rows,
        RowsSrc::Arena(i) => arena[*i].rows(),
    };

    // --- Columnar filter hoist: when the source is a base-table scan,
    // the leading run of Filter stages is evaluated as vectorized
    // kernels over the table's columns (they are bound against the
    // scan schema — no join fragment exists yet), producing one
    // selection bitmap the drive consumes. Every counter is derived
    // from bitmap popcounts exactly as the per-row path ticks it: a
    // filter is "evaluated" once per row that survived the filters
    // below it, and passes exactly the rows where its mask is
    // definitely true — so counters, rows, and order are bit-identical.
    let mut hoisted = 0usize;
    let mut sel: Option<Bitmap> = None;
    if cx.cfg.columnar {
        if let Some(cols) = src_cols {
            let mut skipped = 0u64;
            for spec in &specs {
                let StageSpec::Filter { pred, slot } = spec else {
                    break;
                };
                let reaching = sel.as_ref().map_or(src_rows.len(), Bitmap::count_ones);
                let mut mask = cols.eval_pred(pred, &mut skipped).into_trues();
                if let Some(prev) = &sel {
                    mask.and_assign(prev);
                }
                let passing = mask.count_ones();
                rs.stats.comparisons += reaching as u64;
                rs.stats.rows_pipelined += passing as u64;
                rs.slots[*slot] += passing as u64;
                sel = Some(mask);
                hoisted += 1;
            }
            rs.stats.morsels_skipped += skipped;
        }
    }

    // --- Drive: push every (selected) source row through the fused
    // stage chain, entering above any hoisted filters.
    let mut out_rows: Vec<Tuple> = Vec::new();
    let n_slots = rs.slots.len();
    let depth = widths.len() + 1;
    drive_morsels(
        src_rows.len(),
        cx.cfg,
        rs.stats,
        rs.slots,
        &mut out_rows,
        n_slots,
        |range, buf, st, sl| {
            let mut parts: Vec<&Tuple> = Vec::with_capacity(depth);
            let mut scratch: Vec<Vec<Value>> = vec![Vec::new(); specs.len()];
            match &sel {
                Some(mask) => mask.for_each_one_in(range.start, range.end, |i| {
                    parts.clear();
                    parts.push(&src_rows[i]);
                    push_row(
                        &specs,
                        &side_rows,
                        &tables,
                        &tail,
                        hoisted,
                        &mut parts,
                        &mut scratch,
                        buf,
                        st,
                        sl,
                    );
                }),
                None => {
                    for row in &src_rows[range] {
                        parts.clear();
                        parts.push(row);
                        push_row(
                            &specs,
                            &side_rows,
                            &tables,
                            &tail,
                            0,
                            &mut parts,
                            &mut scratch,
                            buf,
                            st,
                            sl,
                        );
                    }
                }
            }
        },
    );

    // A fused projection dedups once, after the drive — first
    // occurrence wins, which is exactly `ops::project`'s output order
    // over the (bit-identical) materialized input.
    if let Tail::Project { slot, .. } = &tail {
        dedup_rows(&mut out_rows);
        rs.slots[*slot] += out_rows.len() as u64;
        rs.stats.rows_pipelined += out_rows.len() as u64;
    }

    Ok(Relation::from_distinct_rows(out_schema, out_rows))
}

/// One row's journey through the fused stages above `idx`. Emission
/// order per stage replicates the engine's `JoinKernel::probe_row`
/// exactly: candidates in build-row order, `comparisons` ticking only
/// on exact-key candidates, pads/probe-rows on the unmatched epilogue.
#[allow(clippy::too_many_arguments)]
fn push_row<'a>(
    specs: &'a [StageSpec<'a>],
    side_rows: &[&'a [Tuple]],
    tables: &'a [JoinTable<'a>],
    tail: &Tail,
    idx: usize,
    parts: &mut Vec<&'a Tuple>,
    scratch: &mut [Vec<Value>],
    buf: &mut Vec<Tuple>,
    st: &mut ExecStats,
    slots: &mut [u64],
) {
    let Some(spec) = specs.get(idx) else {
        buf.push(emit(tail, parts));
        return;
    };
    match spec {
        StageSpec::Filter { pred, slot } => {
            st.comparisons += 1;
            if pred.eval_parts(parts).is_true() {
                slots[*slot] += 1;
                st.rows_pipelined += 1;
                push_row(
                    specs,
                    side_rows,
                    tables,
                    tail,
                    idx + 1,
                    parts,
                    scratch,
                    buf,
                    st,
                    slots,
                );
            }
        }
        StageSpec::HashProbe {
            kind,
            table_idx,
            key_map,
            build_cols,
            residual,
            pad,
            slot,
        } => {
            let table = &tables[*table_idx];
            let h = hash_parts(parts, key_map);
            if let Some(h) = h {
                st.partition.add_probe(table.partition_index(h));
            }
            let mut matched = false;
            for &rid in table.bucket(h) {
                let brow = table.row(rid);
                if !keys_eq_parts(parts, key_map, brow, build_cols) {
                    continue;
                }
                st.comparisons += 1;
                parts.push(brow);
                let ok = residual.eval_parts(parts).is_true();
                match kind {
                    JoinKind::Inner | JoinKind::LeftOuter => {
                        if ok {
                            matched = true;
                            slots[*slot] += 1;
                            st.rows_pipelined += 1;
                            push_row(
                                specs,
                                side_rows,
                                tables,
                                tail,
                                idx + 1,
                                parts,
                                scratch,
                                buf,
                                st,
                                slots,
                            );
                        }
                        parts.pop();
                    }
                    JoinKind::Semi => {
                        parts.pop();
                        if ok {
                            matched = true;
                            slots[*slot] += 1;
                            st.rows_pipelined += 1;
                            push_row(
                                specs,
                                side_rows,
                                tables,
                                tail,
                                idx + 1,
                                parts,
                                scratch,
                                buf,
                                st,
                                slots,
                            );
                            break;
                        }
                    }
                    JoinKind::Anti => {
                        parts.pop();
                        if ok {
                            matched = true;
                            break;
                        }
                    }
                    JoinKind::FullOuter => unreachable!("full outerjoins are breakers"),
                }
            }
            if !matched {
                match kind {
                    JoinKind::LeftOuter => {
                        slots[*slot] += 1;
                        st.rows_pipelined += 1;
                        parts.push(pad);
                        push_row(
                            specs,
                            side_rows,
                            tables,
                            tail,
                            idx + 1,
                            parts,
                            scratch,
                            buf,
                            st,
                            slots,
                        );
                        parts.pop();
                    }
                    JoinKind::Anti => {
                        slots[*slot] += 1;
                        st.rows_pipelined += 1;
                        push_row(
                            specs,
                            side_rows,
                            tables,
                            tail,
                            idx + 1,
                            parts,
                            scratch,
                            buf,
                            st,
                            slots,
                        );
                    }
                    _ => {}
                }
            }
        }
        StageSpec::IndexProbe {
            kind,
            index,
            inner_rows,
            key_map,
            residual,
            pad,
            slot,
        } => {
            st.index_probes += 1;
            let mut key = std::mem::take(&mut scratch[idx]);
            let rids: &[usize] = if key_into_parts(parts, key_map, &mut key) {
                index.lookup(&key)
            } else {
                &[]
            };
            st.tuples_retrieved += rids.len() as u64;
            let mut matched = false;
            for &rid in rids {
                let irow = &inner_rows[rid];
                st.comparisons += 1;
                parts.push(irow);
                let ok = residual.eval_parts(parts).is_true();
                match kind {
                    JoinKind::Inner | JoinKind::LeftOuter => {
                        if ok {
                            matched = true;
                            slots[*slot] += 1;
                            st.rows_pipelined += 1;
                            push_row(
                                specs,
                                side_rows,
                                tables,
                                tail,
                                idx + 1,
                                parts,
                                scratch,
                                buf,
                                st,
                                slots,
                            );
                        }
                        parts.pop();
                    }
                    JoinKind::Semi => {
                        parts.pop();
                        if ok {
                            matched = true;
                            slots[*slot] += 1;
                            st.rows_pipelined += 1;
                            push_row(
                                specs,
                                side_rows,
                                tables,
                                tail,
                                idx + 1,
                                parts,
                                scratch,
                                buf,
                                st,
                                slots,
                            );
                            break;
                        }
                    }
                    JoinKind::Anti => {
                        parts.pop();
                        if ok {
                            matched = true;
                            break;
                        }
                    }
                    JoinKind::FullOuter => unreachable!("rejected at compile"),
                }
            }
            if !matched {
                match kind {
                    JoinKind::LeftOuter => {
                        slots[*slot] += 1;
                        st.rows_pipelined += 1;
                        parts.push(pad);
                        push_row(
                            specs,
                            side_rows,
                            tables,
                            tail,
                            idx + 1,
                            parts,
                            scratch,
                            buf,
                            st,
                            slots,
                        );
                        parts.pop();
                    }
                    JoinKind::Anti => {
                        slots[*slot] += 1;
                        st.rows_pipelined += 1;
                        push_row(
                            specs,
                            side_rows,
                            tables,
                            tail,
                            idx + 1,
                            parts,
                            scratch,
                            buf,
                            st,
                            slots,
                        );
                    }
                    _ => {}
                }
            }
            scratch[idx] = key;
        }
        StageSpec::Reduce {
            table_idx,
            key_map,
            source_cols,
            slot,
        } => {
            let table = &tables[*table_idx];
            let h = hash_parts(parts, key_map);
            if let Some(h) = h {
                st.partition.add_probe(table.partition_index(h));
            }
            let mut matched = false;
            for &rid in table.bucket(h) {
                let brow = table.row(rid);
                if !keys_eq_parts(parts, key_map, brow, source_cols) {
                    continue;
                }
                st.comparisons += 1;
                matched = true;
                break;
            }
            if matched {
                slots[*slot] += 1;
                st.rows_pipelined += 1;
                push_row(
                    specs,
                    side_rows,
                    tables,
                    tail,
                    idx + 1,
                    parts,
                    scratch,
                    buf,
                    st,
                    slots,
                );
            } else {
                st.rows_reduced += 1;
            }
        }
        StageSpec::NlProbe {
            kind,
            side_idx,
            residual,
            pad,
            slot,
        } => {
            let mut matched = false;
            for brow in side_rows[*side_idx] {
                st.comparisons += 1;
                parts.push(brow);
                let ok = residual.eval_parts(parts).is_true();
                match kind {
                    JoinKind::Inner | JoinKind::LeftOuter => {
                        if ok {
                            matched = true;
                            slots[*slot] += 1;
                            st.rows_pipelined += 1;
                            push_row(
                                specs,
                                side_rows,
                                tables,
                                tail,
                                idx + 1,
                                parts,
                                scratch,
                                buf,
                                st,
                                slots,
                            );
                        }
                        parts.pop();
                    }
                    JoinKind::Semi => {
                        parts.pop();
                        if ok {
                            matched = true;
                            slots[*slot] += 1;
                            st.rows_pipelined += 1;
                            push_row(
                                specs,
                                side_rows,
                                tables,
                                tail,
                                idx + 1,
                                parts,
                                scratch,
                                buf,
                                st,
                                slots,
                            );
                            break;
                        }
                    }
                    JoinKind::Anti => {
                        parts.pop();
                        if ok {
                            matched = true;
                            break;
                        }
                    }
                    JoinKind::FullOuter => unreachable!("full outerjoins are breakers"),
                }
            }
            if !matched {
                match kind {
                    JoinKind::LeftOuter => {
                        slots[*slot] += 1;
                        st.rows_pipelined += 1;
                        parts.push(pad);
                        push_row(
                            specs,
                            side_rows,
                            tables,
                            tail,
                            idx + 1,
                            parts,
                            scratch,
                            buf,
                            st,
                            slots,
                        );
                        parts.pop();
                    }
                    JoinKind::Anti => {
                        slots[*slot] += 1;
                        st.rows_pipelined += 1;
                        push_row(
                            specs,
                            side_rows,
                            tables,
                            tail,
                            idx + 1,
                            parts,
                            scratch,
                            buf,
                            st,
                            slots,
                        );
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Materialize one output tuple at the sink — the only per-row
/// allocation a fused pipeline makes.
fn emit(tail: &Tail, parts: &[&Tuple]) -> Tuple {
    match tail {
        Tail::Collect { width } => {
            let mut vals = Vec::with_capacity(*width);
            for p in parts {
                for i in 0..p.arity() {
                    vals.push(p.get(i).clone());
                }
            }
            Tuple::new(vals)
        }
        Tail::Project { map, .. } => {
            let mut vals = Vec::with_capacity(map.len());
            for &(p, c) in map {
                vals.push(parts[p as usize].get(c as usize).clone());
            }
            Tuple::new(vals)
        }
    }
}

/// A pipeline worker's take-home: output rows tagged with their morsel
/// index, private counters, private per-node slot counts.
type PipeWorkerOutput = (Vec<(usize, Vec<Tuple>)>, ExecStats, Vec<u64>);

/// The pipelined twin of the engine's `probe_in_morsels`: run `work`
/// over `0..n_rows` in fixed-size morsels, fanning out to worker
/// threads when it pays, appending rows to `out` in morsel-index order
/// and merging worker-private counters and slot counts (plain sums) —
/// bit-identical to a sequential drive at any thread count.
fn drive_morsels<F>(
    n_rows: usize,
    cfg: &ExecConfig,
    stats: &mut ExecStats,
    slots: &mut [u64],
    out: &mut Vec<Tuple>,
    n_slots: usize,
    work: F,
) where
    F: Fn(Range<usize>, &mut Vec<Tuple>, &mut ExecStats, &mut [u64]) + Sync,
{
    let morsel = cfg.morsel_rows.max(1);
    let n_morsels = n_rows.div_ceil(morsel);
    let threads = cfg.effective_threads().min(n_morsels.max(1));
    if threads <= 1 || n_morsels <= 1 {
        work(0..n_rows, out, stats, slots);
        return;
    }
    let next = AtomicUsize::new(0);
    let results: Vec<PipeWorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced: Vec<(usize, Vec<Tuple>)> = Vec::new();
                    let mut local = ExecStats::new();
                    let mut local_slots = vec![0u64; n_slots];
                    loop {
                        let m = next.fetch_add(1, Ordering::Relaxed);
                        if m >= n_morsels {
                            break;
                        }
                        let lo = m * morsel;
                        let hi = (lo + morsel).min(n_rows);
                        let mut buf = Vec::with_capacity(hi - lo);
                        work(lo..hi, &mut buf, &mut local, &mut local_slots);
                        produced.push((m, buf));
                    }
                    (produced, local, local_slots)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pipeline worker panicked"))
            .collect()
    });
    let mut morsels: Vec<(usize, Vec<Tuple>)> = Vec::with_capacity(n_morsels);
    for (produced, local, local_slots) in results {
        stats.merge(&local);
        for (s, l) in slots.iter_mut().zip(local_slots) {
            *s += l;
        }
        morsels.extend(produced);
    }
    morsels.sort_unstable_by_key(|&(m, _)| m);
    for (_, buf) in morsels {
        out.extend(buf);
    }
}
