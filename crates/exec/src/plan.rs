//! Physical plans.

use fro_algebra::{Attr, Pred};
use std::fmt;

/// Join flavor, interpreted relative to the *probe/outer/left* input:
/// that side is preserved (`LeftOuter`), filtered (`Semi`/`Anti`), or
/// neither (`Inner`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// Regular join.
    Inner,
    /// Probe/outer side preserved, other side null-supplied.
    LeftOuter,
    /// Both sides preserved (two-sided outerjoin). Supported by hash
    /// and nested-loop joins (an index join cannot enumerate unmatched
    /// inner rows without scanning).
    FullOuter,
    /// Keep probe rows with at least one match.
    Semi,
    /// Keep probe rows with no match.
    Anti,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "inner",
            JoinKind::LeftOuter => "left-outer",
            JoinKind::FullOuter => "full-outer",
            JoinKind::Semi => "semi",
            JoinKind::Anti => "anti",
        };
        write!(f, "{s}")
    }
}

/// Which Yannakakis pass a [`PhysPlan::SemiReduce`] node belongs to:
/// the leaves→root sweep that shrinks the probe spine before joins
/// expand it, or the root→leaves sweep that shrinks build sides.
/// Execution is identical either way — the pass is schedule metadata
/// surfaced by EXPLAIN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReducePass {
    /// Leaves→root: reduce a probe-side input by a build-side source.
    Up,
    /// Root→leaves: reduce a build-side input by a probe-side source.
    Down,
}

impl fmt::Display for ReducePass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReducePass::Up => "up",
            ReducePass::Down => "down",
        };
        write!(f, "{s}")
    }
}

/// A physical operator tree.
///
/// Join output schemas are `probe ++ build` (hash), `outer ++ inner`
/// (index), `left ++ right` (nested loop); semi/anti joins output the
/// probe/outer/left schema only.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysPlan {
    /// Full scan of a stored table.
    Scan {
        /// Table name.
        rel: String,
    },
    /// Filter rows by a predicate (3VL: keep on `True`).
    Filter {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Filter predicate.
        pred: Pred,
    },
    /// Duplicate-removing projection.
    Project {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Output attributes.
        attrs: Vec<Attr>,
    },
    /// Hash join: build a table on `build`, probe with `probe`.
    HashJoin {
        /// Join flavor (relative to the probe side).
        kind: JoinKind,
        /// Probe input (preserved side for `LeftOuter`).
        probe: Box<PhysPlan>,
        /// Build input.
        build: Box<PhysPlan>,
        /// Equi-key attributes on the probe side.
        probe_keys: Vec<Attr>,
        /// Equi-key attributes on the build side (same arity).
        build_keys: Vec<Attr>,
        /// Residual predicate applied to candidate pairs.
        residual: Pred,
    },
    /// Index nested-loop join against a stored, indexed table.
    IndexJoin {
        /// Join flavor (relative to the outer side).
        kind: JoinKind,
        /// Outer input.
        outer: Box<PhysPlan>,
        /// Inner stored table (must have an index on `inner_keys`).
        inner: String,
        /// Equi-key attributes on the outer side.
        outer_keys: Vec<Attr>,
        /// Indexed attributes of the inner table.
        inner_keys: Vec<Attr>,
        /// Residual predicate applied to candidate pairs.
        residual: Pred,
    },
    /// Sort-merge join: sort both inputs on the equi-keys and merge.
    MergeJoin {
        /// Join flavor (relative to the left side).
        kind: JoinKind,
        /// Left input.
        left: Box<PhysPlan>,
        /// Right input.
        right: Box<PhysPlan>,
        /// Equi-key attributes on the left side.
        left_keys: Vec<Attr>,
        /// Equi-key attributes on the right side (same arity).
        right_keys: Vec<Attr>,
        /// Residual predicate applied to candidate pairs.
        residual: Pred,
    },
    /// Plain nested-loop join (arbitrary predicate).
    NlJoin {
        /// Join flavor (relative to the left side).
        kind: JoinKind,
        /// Left input.
        left: Box<PhysPlan>,
        /// Right input.
        right: Box<PhysPlan>,
        /// Join predicate.
        pred: Pred,
    },
    /// Group by `group_attrs`, counting non-null `counted` values
    /// (all rows when `None`); output scheme is the group attributes
    /// plus `agg.count`.
    GroupCount {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Grouping attributes.
        group_attrs: Vec<Attr>,
        /// Attribute whose non-null occurrences are counted.
        counted: Option<Attr>,
    },
    /// Semijoin reduction: keep the `input` rows that have at least
    /// one join partner in `source` on the equi-keys — a
    /// Yannakakis-style reducer pass chosen by the optimizer. Output
    /// schema and row order are the `input`'s; a null key never
    /// matches (3VL, like every equi-join in the engine). `source` is
    /// always a shallow base-relation plan (a scan, possibly
    /// filtered), so reducing never re-executes a join subtree.
    SemiReduce {
        /// The input being reduced (its schema is the output schema).
        input: Box<PhysPlan>,
        /// The reducing side: rows are kept iff a partner exists here.
        source: Box<PhysPlan>,
        /// Equi-key attributes on the input side.
        input_keys: Vec<Attr>,
        /// Equi-key attributes on the source side (same arity).
        source_keys: Vec<Attr>,
        /// Which reduction sweep this node implements (EXPLAIN
        /// metadata; execution is pass-independent).
        pass: ReducePass,
    },
    /// Generalized outerjoin `left GOJ[subset] right` (§6.2).
    Goj {
        /// Left input (`R1`).
        left: Box<PhysPlan>,
        /// Right input (`R2`).
        right: Box<PhysPlan>,
        /// Join predicate.
        pred: Pred,
        /// Projection subset `S ⊆ sch(left)`.
        subset: Vec<Attr>,
    },
}

impl PhysPlan {
    /// Scan shorthand.
    #[must_use]
    pub fn scan(rel: impl Into<String>) -> PhysPlan {
        PhysPlan::Scan { rel: rel.into() }
    }

    /// Visit every base-relation reference in the tree in plan order:
    /// each `Scan` leaf and each `IndexJoin` inner table. The count of
    /// visits is exactly the number of relation slots the plan
    /// occupies, so a cached plan for a `k`-relation subset makes
    /// exactly `k` calls — the invariant the wire-format snapshot
    /// validator checks.
    pub fn for_each_base_rel<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            PhysPlan::Scan { rel } => f(rel),
            PhysPlan::Filter { input, .. } | PhysPlan::Project { input, .. } => {
                input.for_each_base_rel(f);
            }
            PhysPlan::HashJoin { probe, build, .. } => {
                probe.for_each_base_rel(f);
                build.for_each_base_rel(f);
            }
            PhysPlan::IndexJoin { outer, inner, .. } => {
                outer.for_each_base_rel(f);
                f(inner);
            }
            PhysPlan::MergeJoin { left, right, .. }
            | PhysPlan::NlJoin { left, right, .. }
            | PhysPlan::Goj { left, right, .. } => {
                left.for_each_base_rel(f);
                right.for_each_base_rel(f);
            }
            PhysPlan::GroupCount { input, .. } => input.for_each_base_rel(f),
            PhysPlan::SemiReduce { input, source, .. } => {
                input.for_each_base_rel(f);
                source.for_each_base_rel(f);
            }
        }
    }

    /// Number of base-relation references in the tree (see
    /// [`PhysPlan::for_each_base_rel`]).
    #[must_use]
    pub fn base_rel_refs(&self) -> usize {
        let mut n = 0;
        self.for_each_base_rel(&mut |_| n += 1);
        n
    }

    /// Multi-line indented EXPLAIN-style rendering.
    #[must_use]
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(&mut s, 0);
        s
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PhysPlan::Scan { rel } => out.push_str(&format!("{pad}Scan {rel}\n")),
            PhysPlan::Filter { input, pred } => {
                out.push_str(&format!("{pad}Filter [{pred}]\n"));
                input.explain_into(out, depth + 1);
            }
            PhysPlan::Project { input, attrs } => {
                let names: Vec<String> = attrs.iter().map(ToString::to_string).collect();
                out.push_str(&format!("{pad}Project [{}]\n", names.join(", ")));
                input.explain_into(out, depth + 1);
            }
            PhysPlan::HashJoin {
                kind,
                probe,
                build,
                probe_keys,
                build_keys,
                ..
            } => {
                let pk: Vec<String> = probe_keys.iter().map(ToString::to_string).collect();
                let bk: Vec<String> = build_keys.iter().map(ToString::to_string).collect();
                out.push_str(&format!(
                    "{pad}HashJoin({kind}) [{} = {}]\n",
                    pk.join(","),
                    bk.join(",")
                ));
                probe.explain_into(out, depth + 1);
                build.explain_into(out, depth + 1);
            }
            PhysPlan::IndexJoin {
                kind,
                outer,
                inner,
                outer_keys,
                inner_keys,
                ..
            } => {
                let ok: Vec<String> = outer_keys.iter().map(ToString::to_string).collect();
                let ik: Vec<String> = inner_keys.iter().map(ToString::to_string).collect();
                out.push_str(&format!(
                    "{pad}IndexJoin({kind}) {inner} [{} = {}]\n",
                    ok.join(","),
                    ik.join(",")
                ));
                outer.explain_into(out, depth + 1);
            }
            PhysPlan::MergeJoin {
                kind,
                left,
                right,
                left_keys,
                right_keys,
                ..
            } => {
                let lk: Vec<String> = left_keys.iter().map(ToString::to_string).collect();
                let rk: Vec<String> = right_keys.iter().map(ToString::to_string).collect();
                out.push_str(&format!(
                    "{pad}MergeJoin({kind}) [{} = {}]\n",
                    lk.join(","),
                    rk.join(",")
                ));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysPlan::NlJoin {
                kind,
                left,
                right,
                pred,
            } => {
                out.push_str(&format!("{pad}NlJoin({kind}) [{pred}]\n"));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysPlan::GroupCount {
                input, group_attrs, ..
            } => {
                let names: Vec<String> = group_attrs.iter().map(ToString::to_string).collect();
                out.push_str(&format!("{pad}GroupCount [{}]\n", names.join(", ")));
                input.explain_into(out, depth + 1);
            }
            PhysPlan::SemiReduce {
                input,
                source,
                input_keys,
                source_keys,
                pass,
            } => {
                let ik: Vec<String> = input_keys.iter().map(ToString::to_string).collect();
                let sk: Vec<String> = source_keys.iter().map(ToString::to_string).collect();
                out.push_str(&format!(
                    "{pad}SemiReduce({pass}) [{} = {}]\n",
                    ik.join(","),
                    sk.join(",")
                ));
                input.explain_into(out, depth + 1);
                source.explain_into(out, depth + 1);
            }
            PhysPlan::Goj {
                left,
                right,
                pred,
                subset,
            } => {
                let names: Vec<String> = subset.iter().map(ToString::to_string).collect();
                out.push_str(&format!("{pad}Goj[{}] [{pred}]\n", names.join(",")));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
        }
    }
}

impl fmt::Display for PhysPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_renders_tree() {
        let plan = PhysPlan::HashJoin {
            kind: JoinKind::LeftOuter,
            probe: Box::new(PhysPlan::scan("R")),
            build: Box::new(PhysPlan::Filter {
                input: Box::new(PhysPlan::scan("S")),
                pred: Pred::always(),
            }),
            probe_keys: vec![Attr::parse("R.k")],
            build_keys: vec![Attr::parse("S.k")],
            residual: Pred::always(),
        };
        let text = plan.explain();
        assert!(text.contains("HashJoin(left-outer)"));
        assert!(text.contains("Scan R"));
        assert!(text.contains("Filter"));
        // Indentation shows structure.
        assert!(text.contains("\n  Scan R"));
    }

    #[test]
    fn join_kind_display() {
        assert_eq!(JoinKind::Anti.to_string(), "anti");
        assert_eq!(JoinKind::Inner.to_string(), "inner");
    }

    #[test]
    fn semireduce_explains_and_counts_base_rels() {
        let plan = PhysPlan::SemiReduce {
            input: Box::new(PhysPlan::scan("F")),
            source: Box::new(PhysPlan::scan("D1")),
            input_keys: vec![Attr::parse("F.d1")],
            source_keys: vec![Attr::parse("D1.k")],
            pass: ReducePass::Up,
        };
        let text = plan.explain();
        assert!(text.contains("SemiReduce(up) [F.d1 = D1.k]"));
        assert!(text.contains("\n  Scan F"));
        assert!(text.contains("\n  Scan D1"));
        assert_eq!(plan.base_rel_refs(), 2);
        assert_eq!(ReducePass::Down.to_string(), "down");
    }
}
