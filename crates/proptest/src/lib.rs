//! Offline stand-in for the subset of `proptest` 1.x this workspace
//! uses.
//!
//! The build environment has no registry access, so the workspace
//! supplies its own property-testing harness behind the same paths
//! (`proptest::prelude::*`, `proptest!`, `prop_oneof!`, …). Unlike
//! upstream proptest it does **no shrinking**: a failing case panics
//! with the case number, and every run is fully deterministic — case
//! `i` of test `t` always draws the same values, so a failure
//! reproduces by itself.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, OneOf, Strategy};
pub use test_runner::TestRng;

/// Per-test configuration (`#![proptest_config(…)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy::new(|rng: &mut TestRng| rng.random_bool(0.5))
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                BoxedStrategy::new(|rng: &mut TestRng| rng.random_u64() as $t)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `A` — mirror of `proptest::arbitrary::any`.
#[must_use]
pub fn any<A: Arbitrary>() -> BoxedStrategy<A> {
    A::arbitrary()
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A range of collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// `Vec` strategy: a length drawn from `size`, then that many
    /// elements.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        let size = size.into();
        BoxedStrategy::new(move |rng: &mut TestRng| {
            let len = rng.random_usize(size.lo, size.hi_inclusive);
            (0..len).map(|_| element.sample(rng)).collect()
        })
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// `None` half the time, `Some(inner)` otherwise.
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        BoxedStrategy::new(move |rng: &mut TestRng| {
            if rng.random_bool(0.5) {
                Some(inner.sample(rng))
            } else {
                None
            }
        })
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_oneof, proptest, Arbitrary, ProptestConfig};
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.rng_mut().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.rng_mut().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Assert inside a property; mirrors `proptest::prop_assert!` except
/// that failure panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption fails. Upstream proptest
/// re-draws; this harness simply returns from the case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Pick one strategy uniformly among the arms; all arms must share a
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Define deterministic property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut _proptest_rng =
                        $crate::TestRng::deterministic(stringify!($name), case);
                    $(let $arg =
                        $crate::Strategy::sample(&($strat), &mut _proptest_rng);)*
                    // One closure per case so `prop_assume!` can early-
                    // return without aborting the whole property.
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_draws() {
        let s = 0u64..1000;
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![Just(1i64), (10i64..20).prop_map(|v| v * 2)];
        let mut rng = crate::TestRng::deterministic("compose", 0);
        let mut saw_just = false;
        let mut saw_mapped = false;
        for _ in 0..200 {
            match s.sample(&mut rng) {
                1 => saw_just = true,
                v if (20..40).contains(&v) && v % 2 == 0 => saw_mapped = true,
                v => panic!("unexpected draw {v}"),
            }
        }
        assert!(saw_just && saw_mapped);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum E {
            Leaf(#[allow(dead_code)] i64),
            Pair(Box<E>, Box<E>),
        }
        fn depth(e: &E) -> usize {
            match e {
                E::Leaf(_) => 0,
                E::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..3).prop_map(E::Leaf);
        let strat = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| E::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::TestRng::deterministic("rec", 1);
        for _ in 0..100 {
            assert!(depth(&strat.sample(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_draws_in_range(x in 2usize..6, y in 0i64..=3) {
            prop_assert!((2..6).contains(&x));
            prop_assert!((0..=3).contains(&y));
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x > 4);
            prop_assert!(x > 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(opt in crate::option::of(0i64..5),
                                v in crate::collection::vec(0usize..4, 0..3)) {
            if let Some(x) = opt { prop_assert!(x < 5); }
            prop_assert!(v.len() < 3);
        }
    }
}
