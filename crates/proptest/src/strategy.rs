//! Strategy combinators: sampling-only versions of the upstream
//! proptest combinators the workspace uses.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of values of `Self::Value`. Upstream proptest couples
/// generation with shrinking; this harness only samples.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `recurse` wraps an inner strategy
    /// into one more level of structure, up to `depth` levels. Each
    /// level also re-draws the base strategy half the time, so all
    /// depths up to the bound occur.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            level = OneOf::new(vec![leaf.clone(), deeper]).boxed();
        }
        level
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(move |rng: &mut TestRng| self.sample(rng))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> BoxedStrategy<T> {
    /// Wrap a sampling function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Choose uniformly among `arms`. Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.random_usize(0, self.arms.len() - 1);
        self.arms[i].sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
