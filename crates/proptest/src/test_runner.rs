//! Deterministic per-case RNG for the property harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies. Case `i` of test `name` always produces
/// the same stream, in every run, on every machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seed from a test name and case index (FNV-1a over the name,
    /// mixed with the case number).
    #[must_use]
    pub fn deterministic(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let seed = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying generator, for range sampling.
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Uniform `usize` in `lo..=hi`.
    #[must_use]
    pub fn random_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..=hi)
    }

    /// A raw 64-bit draw.
    #[must_use]
    pub fn random_u64(&mut self) -> u64 {
        self.rng.gen_range(0u64..=u64::MAX)
    }

    /// `true` with probability `p`.
    #[must_use]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }
}
