//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses.
//!
//! The build environment has no registry access, so benches link
//! against this std-only harness instead: same macro and builder
//! surface (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter`), wall-clock medians printed to
//! stdout, no plots or statistics machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; this harness accepts and
    /// ignores them.
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Run a single benchmark.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.to_string(), self.default_sample_size, f);
    }
}

/// A named benchmark group; mirrors `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a benchmark that closes over an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Run a benchmark by name.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// End the group (upstream flushes reports here).
    pub fn finish(self) {}
}

/// A function+parameter benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Label for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Label carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, repeating it enough to get a stable wall-clock
    /// reading per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: aim for ~25ms per sample, capped so tiny routines
        // don't spin forever.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(25);
        let iters = (target.as_nanos() / one.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn median_per_iter(&self) -> Option<Duration> {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2] / u32::try_from(self.iters_per_sample).unwrap_or(u32::MAX))
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 0,
        sample_size,
    };
    f(&mut bencher);
    match bencher.median_per_iter() {
        Some(median) => println!("{label:<60} time: {}", format_duration(median)),
        None => println!("{label:<60} time: (no samples)"),
    }
}

/// Mirror of `criterion_group!`: bundles bench functions into one
/// callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`: a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u64, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            });
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
