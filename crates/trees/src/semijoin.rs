//! §6.3's future-work conjecture, made executable: *"for join/semijoin
//! queries, it appears that fewer basic transforms preserve the result,
//! and therefore a smaller set of graphs will be freely reorderable —
//! semijoin edges in series appear to be an additional forbidden
//! subgraph."*
//!
//! This module defines query graphs over **join + semijoin** edges, the
//! corresponding implementing trees, and a brute-force free-
//! reorderability oracle, so the conjecture can be tested exhaustively
//! on small worlds (see the `sj_conjecture` integration tests and
//! experiment E12).
//!
//! Two departures from the join/outerjoin theory are forced by
//! semijoin's *consuming* nature (the filter operand's attributes do
//! not survive):
//!
//! * an implementing tree is valid only if every operator's predicate
//!   references attributes that are still **visible** at that point —
//!   a relation used as a semijoin filter disappears from its side;
//! * consequently some graphs have *fewer* implementing trees than
//!   their join/outerjoin analogues, and a graph whose semijoin edges
//!   sit "in series" may admit associations that do not commute.
//!
//! The niceness analogue implemented by [`is_sj_nice`] forbids, on top
//! of connectivity:
//!
//! 1. a semijoin edge chain `X ⋉→ Y ⋉→ Z` (semijoins in series — the
//!    paper's conjectured new pattern),
//! 2. a join edge incident to a node that some semijoin consumes
//!    (`X ⋉→ Y − Z`), and
//! 3. two semijoins consuming the same node (`X ⋉→ Y ←⋉ Z`),
//! 4. semijoin-edge cycles,
//!
//! mirroring Lemma 1 with "null-supplied" replaced by "consumed".

use fro_algebra::{Database, Pred, Query, Relation};
use fro_graph::NodeSet;
use std::fmt;

/// Edge kinds in a join/semijoin graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SjEdgeKind {
    /// Undirected join edge.
    Join,
    /// Directed semijoin edge `a ⋉→ b`: `a`'s side is filtered by (and
    /// consumes) `b`'s side.
    Semi,
}

/// An edge of a join/semijoin graph.
#[derive(Debug, Clone)]
pub struct SjEdge {
    /// Edge kind.
    pub kind: SjEdgeKind,
    /// First endpoint (the surviving side for semijoin edges).
    pub a: usize,
    /// Second endpoint (the consumed side for semijoin edges).
    pub b: usize,
    /// The predicate label.
    pub pred: Pred,
}

/// A query graph over join and semijoin edges.
#[derive(Debug, Clone)]
pub struct SjGraph {
    nodes: Vec<String>,
    edges: Vec<SjEdge>,
}

impl SjGraph {
    /// Create a graph with the given node names.
    ///
    /// # Panics
    /// If more than 64 nodes are supplied.
    #[must_use]
    pub fn new(nodes: Vec<String>) -> SjGraph {
        assert!(nodes.len() <= 64);
        SjGraph {
            nodes,
            edges: Vec::new(),
        }
    }

    /// Node names.
    #[must_use]
    pub fn node_names(&self) -> &[String] {
        &self.nodes
    }

    /// Number of nodes.
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The edges.
    #[must_use]
    pub fn edges(&self) -> &[SjEdge] {
        &self.edges
    }

    /// Add a join edge.
    pub fn add_join(&mut self, a: usize, b: usize, pred: Pred) {
        assert!(a != b && a < self.nodes.len() && b < self.nodes.len());
        self.edges.push(SjEdge {
            kind: SjEdgeKind::Join,
            a,
            b,
            pred,
        });
    }

    /// Add a semijoin edge `a ⋉→ b` (`b` consumed).
    pub fn add_semi(&mut self, a: usize, b: usize, pred: Pred) {
        assert!(a != b && a < self.nodes.len() && b < self.nodes.len());
        self.edges.push(SjEdge {
            kind: SjEdgeKind::Semi,
            a,
            b,
            pred,
        });
    }

    /// Whether the node set is connected (over all edges).
    #[must_use]
    pub fn connected_in(&self, set: NodeSet) -> bool {
        let Some(start) = set.lowest() else {
            return true;
        };
        let mut seen = NodeSet::singleton(start);
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for e in &self.edges {
                let w = if e.a == v {
                    e.b
                } else if e.b == v {
                    e.a
                } else {
                    continue;
                };
                if set.contains(w) && !seen.contains(w) {
                    seen = seen.with(w);
                    stack.push(w);
                }
            }
        }
        seen == set
    }
}

impl fmt::Display for SjGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nodes: {}", self.nodes.join(", "))?;
        for e in &self.edges {
            let sym = match e.kind {
                SjEdgeKind::Join => "—",
                SjEdgeKind::Semi => "⋉→",
            };
            writeln!(
                f,
                "  {} {sym} {}  [{}]",
                self.nodes[e.a], self.nodes[e.b], e.pred
            )?;
        }
        Ok(())
    }
}

/// The niceness analogue for join/semijoin graphs (see module docs).
#[must_use]
pub fn is_sj_nice(g: &SjGraph) -> bool {
    if !g.connected_in(NodeSet::full(g.n_nodes())) {
        return false;
    }
    // Consumed-in-degree and series detection.
    for y in 0..g.n_nodes() {
        let consumers: Vec<usize> = g
            .edges()
            .iter()
            .filter(|e| e.kind == SjEdgeKind::Semi && e.b == y)
            .map(|e| e.a)
            .collect();
        if consumers.len() >= 2 {
            return false; // X ⋉→ Y ←⋉ Z
        }
        if consumers.is_empty() {
            continue;
        }
        // Y is consumed: it must touch no join edge …
        if g.edges()
            .iter()
            .any(|e| e.kind == SjEdgeKind::Join && (e.a == y || e.b == y))
        {
            return false; // X ⋉→ Y − Z
        }
        // … and must not itself be the surviving side of a semijoin
        // (semijoins in series — the §6.3 conjecture's new pattern).
        if g.edges()
            .iter()
            .any(|e| e.kind == SjEdgeKind::Semi && e.a == y)
        {
            return false; // X ⋉→ Y ⋉→ Z
        }
    }
    // No cycles among semijoin edges (undirected).
    let mut parent: Vec<usize> = (0..g.n_nodes()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut i = i;
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for e in g.edges() {
        if e.kind != SjEdgeKind::Semi {
            continue;
        }
        let (ra, rb) = (find(&mut parent, e.a), find(&mut parent, e.b));
        if ra == rb {
            return false;
        }
        parent[ra] = rb;
    }
    true
}

/// Enumerate the implementing trees of a join/semijoin graph.
///
/// A cut is implementable by a join when every crossing edge is a join
/// edge whose endpoints are *visible* on their sides; by a semijoin
/// when exactly one semijoin edge crosses, its surviving endpoint is
/// visible on its side and its consumed endpoint visible on the other.
/// The tree's visible set after a semijoin is the surviving side's.
/// Returns `(tree, visible-node-set)` pairs for the full graph.
#[must_use]
pub fn enumerate_sj_trees(g: &SjGraph) -> Vec<(Query, NodeSet)> {
    let full = NodeSet::full(g.n_nodes());
    if !g.connected_in(full) {
        return Vec::new();
    }
    build(g, full)
}

fn build(g: &SjGraph, s: NodeSet) -> Vec<(Query, NodeSet)> {
    if s.len() == 1 {
        let i = s.lowest().expect("non-empty");
        return vec![(Query::rel(g.node_names()[i].clone()), s)];
    }
    let mut out = Vec::new();
    for left in s.anchored_proper_subsets() {
        let right = s.minus(left);
        if !g.connected_in(left) || !g.connected_in(right) {
            continue;
        }
        // Crossing edges.
        let crossing: Vec<&SjEdge> = g
            .edges()
            .iter()
            .filter(|e| {
                (left.contains(e.a) && right.contains(e.b))
                    || (left.contains(e.b) && right.contains(e.a))
            })
            .collect();
        if crossing.is_empty() {
            continue; // Cartesian
        }
        let semis = crossing
            .iter()
            .filter(|e| e.kind == SjEdgeKind::Semi)
            .count();
        let lefts = build(g, left);
        let rights = build(g, right);
        if semis == 0 {
            // Join cut: all endpoints must be visible.
            let pred = Pred::from_conjuncts(crossing.iter().map(|e| e.pred.clone()));
            for (lq, lv) in &lefts {
                for (rq, rv) in &rights {
                    let ok = crossing.iter().all(|e| {
                        let (la, ra) = if left.contains(e.a) {
                            (e.a, e.b)
                        } else {
                            (e.b, e.a)
                        };
                        lv.contains(la) && rv.contains(ra)
                    });
                    if ok {
                        out.push((lq.clone().join(rq.clone(), pred.clone()), lv.union(*rv)));
                    }
                }
            }
        } else if semis == 1 && crossing.len() == 1 {
            let e = crossing[0];
            let forward = left.contains(e.a); // surviving side on the left?
            for (lq, lv) in &lefts {
                for (rq, rv) in &rights {
                    let (surv_q, surv_v, cons_q, cons_v, sa, sb) = if forward {
                        (lq, lv, rq, rv, e.a, e.b)
                    } else {
                        (rq, rv, lq, lv, e.a, e.b)
                    };
                    if surv_v.contains(sa) && cons_v.contains(sb) {
                        out.push((
                            surv_q.clone().semijoin(cons_q.clone(), e.pred.clone()),
                            *surv_v,
                        ));
                    }
                }
            }
        }
    }
    // Deduplicate (different splits can reconstruct the same tree via
    // commuted joins) — canonicalize join operand order.
    let mut seen = std::collections::HashSet::new();
    out.retain(|(q, _)| seen.insert(crate::transform::canonical_tree(q)));
    out
}

/// Brute-force free-reorderability oracle: do all implementing trees
/// evaluate equal on all the given databases? Returns `None` when the
/// graph has fewer than two implementing trees (trivially reorderable).
#[must_use]
pub fn brute_force_reorderable(g: &SjGraph, dbs: &[Database]) -> Option<bool> {
    let trees = enumerate_sj_trees(g);
    if trees.len() < 2 {
        return None;
    }
    for db in dbs {
        let mut first: Option<Relation> = None;
        for (t, _) in &trees {
            let r = t.eval(db).expect("sj tree evaluates");
            match &first {
                None => first = Some(r),
                Some(f) => {
                    if !r.set_eq(f) {
                        return Some(false);
                    }
                }
            }
        }
    }
    Some(true)
}

/// All connected join/semijoin graphs on 3 nodes (each unordered pair
/// absent, join, or a semijoin in either direction) — the exhaustive
/// universe for the §6.3 conjecture test.
#[must_use]
pub fn all_three_node_graphs() -> Vec<SjGraph> {
    let key_eq = |a: usize, b: usize| Pred::eq_attr(&format!("R{a}.k"), &format!("R{b}.k"));
    let pairs = [(0usize, 1usize), (0, 2), (1, 2)];
    let mut out = Vec::new();
    for mask in 0..(4u32.pow(3)) {
        let mut g = SjGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        let mut m = mask;
        for &(a, b) in &pairs {
            match m % 4 {
                1 => g.add_join(a, b, key_eq(a, b)),
                2 => g.add_semi(a, b, key_eq(a, b)),
                3 => g.add_semi(b, a, key_eq(b, a)),
                _ => {}
            }
            m /= 4;
        }
        if g.connected_in(NodeSet::full(3)) {
            out.push(g);
        }
    }
    out
}

/// Summary of the exhaustive §6.3 study on a graph universe.
///
/// The empirical finding this records: semijoin consumption makes the
/// *dangerous* associations ill-typed rather than wrong — where a
/// forbidden outerjoin pattern yields two well-formed trees that
/// disagree (Example 2), the analogous semijoin pattern yields a
/// **single** valid tree. "Fewer basic transforms preserve the result"
/// thus manifests as plan-space collapse: the non-nice graphs are the
/// ones an optimizer cannot reassociate at all.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SjStudy {
    /// Graphs with ≥ 2 implementing trees that always agreed.
    pub reorderable: usize,
    /// Graphs with ≥ 2 implementing trees that disagreed somewhere.
    pub not_reorderable: usize,
    /// Graphs with exactly 1 implementing tree.
    pub single_tree: usize,
    /// Graphs with no implementing tree at all.
    pub no_tree: usize,
    /// Non-nice graphs that nevertheless had ≥ 2 implementing trees
    /// (0 ⇒ the forbidden patterns always collapse the plan space).
    pub non_nice_multi_tree: usize,
    /// Nice graphs with ≥ 2 trees that disagreed somewhere (0 ⇒ the
    /// conjectured class is sound).
    pub false_accepts: usize,
}

/// Run the exhaustive study over a universe of graphs and databases.
#[must_use]
pub fn run_sj_study(graphs: &[SjGraph], dbs: &[Database]) -> SjStudy {
    let mut s = SjStudy::default();
    for g in graphs {
        let n_trees = enumerate_sj_trees(g).len();
        let nice = is_sj_nice(g);
        match n_trees {
            0 => s.no_tree += 1,
            1 => s.single_tree += 1,
            _ => {
                if !nice {
                    s.non_nice_multi_tree += 1;
                }
                match brute_force_reorderable(g, dbs) {
                    Some(true) => s.reorderable += 1,
                    Some(false) => {
                        s.not_reorderable += 1;
                        if nice {
                            s.false_accepts += 1;
                        }
                    }
                    None => unreachable!("≥2 trees"),
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Value;

    fn key_eq(a: usize, b: usize) -> Pred {
        Pred::eq_attr(&format!("R{a}.k"), &format!("R{b}.k"))
    }

    /// Tiny exhaustive databases: each single-column relation holds a
    /// subset of {0, 1}.
    fn tiny_dbs() -> Vec<Database> {
        let values = [Value::Int(0), Value::Int(1)];
        let mut dbs = Vec::new();
        for mask in 0..(4u32.pow(3)) {
            let mut db = Database::new();
            let mut m = mask;
            for r in 0..3 {
                let sub = m % 4;
                m /= 4;
                let rows: Vec<Vec<Value>> = (0..2)
                    .filter(|i| sub & (1 << i) != 0)
                    .map(|i| vec![values[i as usize].clone()])
                    .collect();
                let name = format!("R{r}");
                db.insert_named(name.clone(), Relation::from_values(&name, &["k"], rows));
            }
            dbs.push(db);
        }
        dbs
    }

    #[test]
    fn join_semijoin_star_is_reorderable() {
        // A − B, A ⋉→ C: both hang off A; should reorder.
        let mut g = SjGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_join(0, 1, key_eq(0, 1));
        g.add_semi(0, 2, key_eq(0, 2));
        assert!(is_sj_nice(&g));
        let trees = enumerate_sj_trees(&g);
        assert!(trees.len() >= 2, "{}", trees.len());
        assert_eq!(brute_force_reorderable(&g, &tiny_dbs()), Some(true));
    }

    #[test]
    fn semijoin_into_joined_node_not_reorderable() {
        // A ⋉→ B, B − C: the filter's relation also joins C.
        let mut g = SjGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_semi(0, 1, key_eq(0, 1));
        g.add_join(1, 2, key_eq(1, 2));
        assert!(!is_sj_nice(&g));
        // Trees: R0 ⋉ (R1 − R2) and … (R0 ⋉ R1) − R2 is INVALID (R1
        // consumed), so visibility may leave a single tree.
        let trees = enumerate_sj_trees(&g);
        for (t, _) in &trees {
            // Every tree must evaluate without attribute errors.
            for db in tiny_dbs().iter().take(4) {
                let _ = t.eval(db).unwrap();
            }
        }
    }

    #[test]
    fn semijoins_in_series_detected() {
        let mut g = SjGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_semi(0, 1, key_eq(0, 1));
        g.add_semi(1, 2, key_eq(1, 2));
        assert!(!is_sj_nice(&g));
    }

    #[test]
    fn two_semijoins_same_filter_detected() {
        let mut g = SjGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_semi(0, 2, key_eq(0, 2));
        g.add_semi(1, 2, key_eq(1, 2));
        assert!(!is_sj_nice(&g));
    }

    #[test]
    fn visibility_excludes_consumed_attributes() {
        // A ⋉→ B with B − C: the association ((A ⋉ B) − C) would
        // reference B after consumption — must not be enumerated.
        let mut g = SjGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_semi(0, 1, key_eq(0, 1));
        g.add_join(1, 2, key_eq(1, 2));
        let trees = enumerate_sj_trees(&g);
        for (t, _) in &trees {
            let shape = t.shape();
            assert!(
                !shape.contains("(R0 ⋉ R1)"),
                "consumed-attribute association enumerated: {shape}"
            );
        }
    }

    #[test]
    fn sj_study_exhaustive_three_nodes_conjecture() {
        let graphs = all_three_node_graphs();
        let dbs = tiny_dbs();
        let study = run_sj_study(&graphs, &dbs);
        // The conjectured class is SOUND: no nice multi-tree graph ever
        // disagreed.
        assert_eq!(study.false_accepts, 0, "{study:?}");
        // The §6.3 phenomenon, sharply: every non-nice graph's plan
        // space collapses to ≤ 1 tree — the forbidden patterns are
        // exactly the shapes where reassociation is impossible.
        assert_eq!(study.non_nice_multi_tree, 0, "{study:?}");
        // Every well-typed pair of associations agreed (semijoins do
        // not pad, so no Example 2-style divergence is expressible).
        assert_eq!(study.not_reorderable, 0, "{study:?}");
        // Non-vacuity.
        assert!(study.reorderable > 0, "{study:?}");
        assert!(study.single_tree > 0, "{study:?}");
        assert!(study.no_tree > 0, "{study:?}");
    }

    #[test]
    fn pure_join_graphs_still_reorderable_here() {
        let mut g = SjGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_join(0, 1, key_eq(0, 1));
        g.add_join(1, 2, key_eq(1, 2));
        assert!(is_sj_nice(&g));
        assert_eq!(brute_force_reorderable(&g, &tiny_dbs()), Some(true));
    }

    #[test]
    fn display_shows_semijoin_arrows() {
        let mut g = SjGraph::new(vec!["A".into(), "B".into()]);
        g.add_semi(0, 1, Pred::eq_attr("A.k", "B.k"));
        assert!(g.to_string().contains("⋉→"));
    }
}
