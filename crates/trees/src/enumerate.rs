//! Enumeration and counting of the implementing trees of a query
//! graph (§1.3, §3.1).
//!
//! An IT of graph `G` is built by recursively splitting a connected
//! node set `S` into two connected halves `(L, R)`:
//!
//! * if every crossing edge is a join edge, a regular-join operator
//!   implements the cut, with the conjunction of the crossing labels as
//!   its predicate;
//! * if exactly one outerjoin edge crosses (and nothing else), an
//!   outerjoin implements it, preserved side dictated by the edge
//!   direction;
//! * otherwise no operator implements the cut (Cartesian products and
//!   mixed cuts are excluded).
//!
//! Trees are produced in *canonical form*: outerjoins keep the
//! preserved operand on the left (the paper's `←` is notation for the
//! mirrored drawing of the same operator), and join operands are
//! ordered by their smallest leaf name. The paper's *reversal* BT maps
//! between mirror drawings; enumerating canonical forms counts each
//! reorderable association once, which is what an optimizer's plan
//! space (and Theorem 1) care about. [`count_implementing_trees`] also
//! offers the ordered count, where every join node doubles the tally.

use fro_algebra::{Pred, Query};
use fro_graph::{classify_cut, CutKind, NodeSet, QueryGraph};
use std::collections::HashMap;
use std::fmt;

/// A cap on enumeration size, to keep exhaustive walks safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumLimit {
    /// Maximum number of trees to materialize before aborting.
    pub max_trees: usize,
}

impl Default for EnumLimit {
    fn default() -> Self {
        EnumLimit { max_trees: 200_000 }
    }
}

/// Enumeration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumError {
    /// The graph admits more trees than the configured limit.
    TooManyTrees {
        /// The configured cap.
        limit: usize,
    },
    /// The graph is disconnected: it has no implementing tree.
    Disconnected,
}

impl fmt::Display for EnumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumError::TooManyTrees { limit } => {
                write!(f, "more than {limit} implementing trees; raise EnumLimit")
            }
            EnumError::Disconnected => write!(f, "disconnected graph has no implementing tree"),
        }
    }
}

impl std::error::Error for EnumError {}

/// The predicate implementing a join cut: the conjunction of all
/// crossing edge labels.
fn cut_pred(g: &QueryGraph, edges: &[usize]) -> Pred {
    Pred::from_conjuncts(edges.iter().map(|&i| g.edges()[i].pred().clone()))
}

/// The smallest leaf name of a query — the canonical ordering key for
/// join operands.
fn min_leaf(q: &Query) -> String {
    q.leaves().into_iter().min().unwrap_or_default()
}

/// Order join operands canonically.
fn canonical_join(l: Query, r: Query, pred: Pred) -> Query {
    if min_leaf(&l) <= min_leaf(&r) {
        l.join(r, pred)
    } else {
        r.join(l, pred)
    }
}

struct Enumerator<'g> {
    g: &'g QueryGraph,
    memo: HashMap<NodeSet, Vec<Query>>,
    limit: usize,
    produced: usize,
}

impl<'g> Enumerator<'g> {
    fn trees(&mut self, s: NodeSet) -> Result<Vec<Query>, EnumError> {
        if let Some(cached) = self.memo.get(&s) {
            return Ok(cached.clone());
        }
        let mut out = Vec::new();
        if s.len() == 1 {
            out.push(Query::rel(self.g.node_name(s.lowest().expect("non-empty"))));
        } else {
            for left in s.anchored_proper_subsets() {
                let right = s.minus(left);
                if !self.g.connected_in(left) || !self.g.connected_in(right) {
                    continue;
                }
                match classify_cut(self.g, left, right) {
                    CutKind::Joins(edges) => {
                        let pred = cut_pred(self.g, &edges);
                        let ls = self.trees(left)?;
                        let rs = self.trees(right)?;
                        for l in &ls {
                            for r in &rs {
                                self.produced += 1;
                                if self.produced > self.limit {
                                    return Err(EnumError::TooManyTrees { limit: self.limit });
                                }
                                out.push(canonical_join(l.clone(), r.clone(), pred.clone()));
                            }
                        }
                    }
                    CutKind::SingleOuterjoin { edge, forward } => {
                        let pred = self.g.edges()[edge].pred().clone();
                        let ls = self.trees(left)?;
                        let rs = self.trees(right)?;
                        for l in &ls {
                            for r in &rs {
                                self.produced += 1;
                                if self.produced > self.limit {
                                    return Err(EnumError::TooManyTrees { limit: self.limit });
                                }
                                out.push(if forward {
                                    l.clone().outerjoin(r.clone(), pred.clone())
                                } else {
                                    r.clone().outerjoin(l.clone(), pred.clone())
                                });
                            }
                        }
                    }
                    CutKind::Cartesian | CutKind::Mixed => {}
                }
            }
        }
        self.memo.insert(s, out.clone());
        Ok(out)
    }
}

/// Enumerate all implementing trees of `g`, in canonical form.
///
/// # Errors
/// [`EnumError::Disconnected`] when no IT exists,
/// [`EnumError::TooManyTrees`] past the limit.
pub fn enumerate_trees(g: &QueryGraph, limit: EnumLimit) -> Result<Vec<Query>, EnumError> {
    let all = NodeSet::full(g.n_nodes());
    if !g.connected_in(all) {
        return Err(EnumError::Disconnected);
    }
    let mut e = Enumerator {
        g,
        memo: HashMap::new(),
        limit: limit.max_trees,
        produced: 0,
    };
    e.trees(all)
}

/// One implementing tree of `g` (the first found), or `None` when the
/// graph is disconnected.
#[must_use]
pub fn some_implementing_tree(g: &QueryGraph) -> Option<Query> {
    let all = NodeSet::full(g.n_nodes());
    if !g.connected_in(all) {
        return None;
    }
    fn first(g: &QueryGraph, s: NodeSet) -> Option<Query> {
        if s.len() == 1 {
            return Some(Query::rel(g.node_name(s.lowest()?)));
        }
        for left in s.anchored_proper_subsets() {
            let right = s.minus(left);
            if !g.connected_in(left) || !g.connected_in(right) {
                continue;
            }
            match classify_cut(g, left, right) {
                CutKind::Joins(edges) => {
                    let pred = cut_pred(g, &edges);
                    if let (Some(l), Some(r)) = (first(g, left), first(g, right)) {
                        return Some(canonical_join(l, r, pred));
                    }
                }
                CutKind::SingleOuterjoin { edge, forward } => {
                    let pred = g.edges()[edge].pred().clone();
                    if let (Some(l), Some(r)) = (first(g, left), first(g, right)) {
                        return Some(if forward {
                            l.outerjoin(r, pred)
                        } else {
                            r.outerjoin(l, pred)
                        });
                    }
                }
                _ => {}
            }
        }
        None
    }
    first(g, all)
}

/// Count the implementing trees of `g` without materializing them.
///
/// `ordered = false` counts canonical trees (mirror-image joins
/// identified, as enumerated by [`enumerate_trees`]); `ordered = true`
/// counts expression trees where the two operand orders of every
/// operator are distinct (the paper's reversal BT maps between them).
#[must_use]
pub fn count_implementing_trees(g: &QueryGraph, ordered: bool) -> u128 {
    let all = NodeSet::full(g.n_nodes());
    if !g.connected_in(all) {
        return 0;
    }
    fn count(g: &QueryGraph, s: NodeSet, ordered: bool, memo: &mut HashMap<NodeSet, u128>) -> u128 {
        if s.len() == 1 {
            return 1;
        }
        if let Some(&c) = memo.get(&s) {
            return c;
        }
        let mut total = 0u128;
        for left in s.anchored_proper_subsets() {
            let right = s.minus(left);
            if !g.connected_in(left) || !g.connected_in(right) {
                continue;
            }
            let per_split = match classify_cut(g, left, right) {
                CutKind::Joins(_) => {
                    if ordered {
                        2
                    } else {
                        1
                    }
                }
                CutKind::SingleOuterjoin { .. } => {
                    if ordered {
                        2 // `X → Y` and its mirror drawing `Y ← X`
                    } else {
                        1
                    }
                }
                _ => 0,
            };
            if per_split > 0 {
                total += per_split * count(g, left, ordered, memo) * count(g, right, ordered, memo);
            }
        }
        memo.insert(s, total);
        total
    }
    count(g, all, ordered, &mut HashMap::new())
}

/// Whether `q` is an implementing tree of `g`, i.e. `graph(q)` is
/// defined and equals `g` (§1.3).
#[must_use]
pub fn is_implementing_tree(q: &Query, g: &QueryGraph) -> bool {
    match fro_graph::graph_of(q) {
        Ok(gq) => gq.same_graph(g),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Pred;

    fn p(a: &str, b: &str) -> Pred {
        Pred::eq_attr(&format!("{a}.k{a}"), &format!("{b}.k{b}"))
    }

    fn chain_join(n: usize) -> QueryGraph {
        let names: Vec<String> = (0..n).map(|i| format!("R{i}")).collect();
        let mut g = QueryGraph::new(names);
        for i in 0..n - 1 {
            g.add_join_edge(i, i + 1, p(&format!("R{i}"), &format!("R{}", i + 1)))
                .unwrap();
        }
        g
    }

    #[test]
    fn two_node_join_graph_has_one_canonical_tree() {
        let g = chain_join(2);
        let ts = enumerate_trees(&g, EnumLimit::default()).unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(count_implementing_trees(&g, false), 1);
        assert_eq!(count_implementing_trees(&g, true), 2);
    }

    #[test]
    fn join_chain_counts_match_catalan_style_recurrence() {
        // For a join chain of n nodes the canonical tree count is the
        // number of ways to parenthesize while staying connected.
        // Chain of 3: splits {R0}|{R1,R2}, {R0,R1}|{R2} → 2 trees.
        assert_eq!(count_implementing_trees(&chain_join(3), false), 2);
        // Chain of 4: C(3) = 5 connected parenthesizations.
        assert_eq!(count_implementing_trees(&chain_join(4), false), 5);
        // Chain of 5: Catalan(4) = 14.
        assert_eq!(count_implementing_trees(&chain_join(5), false), 14);
        let ts = enumerate_trees(&chain_join(4), EnumLimit::default()).unwrap();
        assert_eq!(ts.len(), 5);
    }

    #[test]
    fn star_join_counts() {
        // Star: R0 joined to R1, R2, R3. Canonical trees: orderings of
        // attaching the three satellites = 3! = 6? Each tree is a
        // sequence of binary joins around the hub; splits must keep
        // connectivity: satellites peel off one at a time ⇒ 3! / ...
        let mut g = QueryGraph::new((0..4).map(|i| format!("R{i}")).collect::<Vec<_>>());
        for i in 1..4 {
            g.add_join_edge(0, i, p("R0", &format!("R{i}"))).unwrap();
        }
        let ts = enumerate_trees(&g, EnumLimit::default()).unwrap();
        assert_eq!(ts.len() as u128, count_implementing_trees(&g, false));
        assert_eq!(ts.len(), 6);
    }

    #[test]
    fn oj_edge_orientation_fixes_preserved_side() {
        // R0 −(join) R1 →(oj) R2: ITs (canonical):
        //   (R0 − R1) → R2  and  R0 − (R1 → R2).
        let mut g = QueryGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_join_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_outerjoin_edge(1, 2, p("R1", "R2")).unwrap();
        let ts = enumerate_trees(&g, EnumLimit::default()).unwrap();
        let shapes: Vec<String> = ts.iter().map(Query::shape).collect();
        assert_eq!(ts.len(), 2, "{shapes:?}");
        assert!(shapes.contains(&"((R0 − R1) → R2)".to_owned()));
        assert!(shapes.contains(&"(R0 − (R1 → R2))".to_owned()));
    }

    #[test]
    fn example2_graph_has_both_trees_despite_not_nice() {
        // R0 → R1 − R2 (Example 2 shape): both associations are ITs —
        // they implement the same graph but evaluate differently.
        let mut g = QueryGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_outerjoin_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_join_edge(1, 2, p("R1", "R2")).unwrap();
        let ts = enumerate_trees(&g, EnumLimit::default()).unwrap();
        let shapes: Vec<String> = ts.iter().map(Query::shape).collect();
        assert_eq!(ts.len(), 2);
        assert!(shapes.contains(&"((R0 → R1) − R2)".to_owned()));
        assert!(shapes.contains(&"(R0 → (R1 − R2))".to_owned()));
    }

    #[test]
    fn oj_cut_with_extra_crossing_edges_is_excluded() {
        // Triangle: join R0−R1, join R0−R2, oj R1→R2. The cut
        // {R0,R1}|{R2} crosses a join AND the oj edge: excluded.
        let mut g = QueryGraph::new(vec!["R0".into(), "R1".into(), "R2".into()]);
        g.add_join_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_join_edge(0, 2, p("R0", "R2")).unwrap();
        g.add_outerjoin_edge(1, 2, p("R1", "R2")).unwrap();
        let ts = enumerate_trees(&g, EnumLimit::default()).unwrap();
        // Remaining ITs must all place the oj edge on a pure cut — none
        // exists except ... let's check every tree implements g.
        for t in &ts {
            assert!(is_implementing_tree(t, &g), "{}", t.shape());
        }
        // Cut {R1}|{R0,R2}: crossing join R0−R1 + oj R1→R2 → mixed.
        // Cut {R2}|{R0,R1}: crossing join R0−R2 + oj → mixed.
        // Cut {R0}|{R1,R2}: {R1,R2} connected via oj edge: crossing
        // joins R0−R1, R0−R2 → join cut with conjunction; inner {R1,R2}
        // split by the oj edge. So exactly 1 canonical tree.
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].shape(), "(R0 − (R1 → R2))");
    }

    #[test]
    fn every_enumerated_tree_implements_the_graph() {
        let mut g = QueryGraph::new((0..5).map(|i| format!("R{i}")).collect::<Vec<_>>());
        g.add_join_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_join_edge(1, 2, p("R1", "R2")).unwrap();
        g.add_outerjoin_edge(1, 3, p("R1", "R3")).unwrap();
        g.add_outerjoin_edge(3, 4, p("R3", "R4")).unwrap();
        let ts = enumerate_trees(&g, EnumLimit::default()).unwrap();
        assert!(!ts.is_empty());
        for t in &ts {
            assert!(is_implementing_tree(t, &g), "{}", t.paper_notation());
            assert!(t.relations_distinct());
        }
        // Counting agrees with enumeration.
        assert_eq!(ts.len() as u128, count_implementing_trees(&g, false));
    }

    #[test]
    fn disconnected_graph_has_no_trees() {
        let g = QueryGraph::new(vec!["A".into(), "B".into()]);
        assert!(matches!(
            enumerate_trees(&g, EnumLimit::default()),
            Err(EnumError::Disconnected)
        ));
        assert!(some_implementing_tree(&g).is_none());
        assert_eq!(count_implementing_trees(&g, false), 0);
    }

    #[test]
    fn limit_respected() {
        let g = chain_join(8);
        let e = enumerate_trees(&g, EnumLimit { max_trees: 10 });
        assert!(matches!(e, Err(EnumError::TooManyTrees { limit: 10 })));
    }

    #[test]
    fn some_tree_is_an_it() {
        let g = chain_join(6);
        let t = some_implementing_tree(&g).unwrap();
        assert!(is_implementing_tree(&t, &g));
    }

    #[test]
    fn single_node_graph() {
        let g = QueryGraph::new(vec!["A".into()]);
        let ts = enumerate_trees(&g, EnumLimit::default()).unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0], Query::rel("A"));
        assert_eq!(count_implementing_trees(&g, true), 1);
    }

    #[test]
    fn ordered_count_doubles_per_operator() {
        // Chain of 3 joins: canonical 2 trees, each with 2 binary ops:
        // ordered = 2 trees × 2^2 = 8.
        assert_eq!(count_implementing_trees(&chain_join(3), true), 8);
    }
}
