//! BT closure and BT-sequence search (the constructive side of
//! Lemma 3).
//!
//! Lemma 3 states that any two implementing trees of the same graph are
//! connected by a sequence of basic transforms; Theorem 1 then follows
//! because on nice graphs (with strong predicates) every applicable BT
//! is result-preserving (Lemma 2). [`bt_closure`] computes the set of
//! trees reachable from a starting IT — optionally restricted to
//! result-preserving BTs — and [`find_bt_sequence`] recovers an actual
//! transform sequence between two ITs. The workspace test-suite uses
//! these to *prove Lemma 3 exhaustively* on small graphs: the closure
//! under all BTs must equal the full enumerated IT set.

use crate::preserve::is_result_preserving;
use crate::transform::{applicable_bts, apply_bt, canonical_tree, Bt};
use fro_algebra::Query;
use std::collections::{HashMap, HashSet, VecDeque};

/// Options for closure/search walks.
#[derive(Debug, Clone, Copy)]
pub struct ClosureOptions {
    /// Only follow BTs classified result-preserving by Lemma 2.
    pub only_preserving: bool,
    /// Abort after visiting this many distinct trees.
    pub max_states: usize,
}

impl Default for ClosureOptions {
    fn default() -> Self {
        ClosureOptions {
            only_preserving: false,
            max_states: 100_000,
        }
    }
}

/// All canonical tree forms reachable from `q` by basic transforms.
///
/// The result always contains `canonical_tree(q)` itself. Reversals
/// are implicit: states are canonical forms (join operands ordered),
/// which identifies mirror-image trees exactly as the paper's reversal
/// BT relates them.
#[must_use]
pub fn bt_closure(q: &Query, opts: ClosureOptions) -> Vec<Query> {
    // Walk over *raw* trees (reversals are genuine intermediate states:
    // a conjunct-moving reassociation may only apply after a reversal),
    // then report one canonical representative per reversal class.
    let mut seen: HashSet<Query> = HashSet::from([q.clone()]);
    let mut queue = VecDeque::from([q.clone()]);
    while let Some(cur) = queue.pop_front() {
        if seen.len() >= opts.max_states {
            break;
        }
        for bt in applicable_bts(&cur) {
            if opts.only_preserving && is_result_preserving(&cur, &bt) != Some(true) {
                continue;
            }
            if let Ok(next) = apply_bt(&cur, &bt) {
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
    }
    let canon: HashSet<Query> = seen.iter().map(canonical_tree).collect();
    let mut out: Vec<Query> = canon.into_iter().collect();
    out.sort();
    out
}

/// Find a sequence of BTs transforming `from` into a tree whose
/// canonical form matches `to`'s. Returns `None` when unreachable
/// within `opts.max_states`.
///
/// Each returned [`Bt`] applies to the exact tree produced by the
/// preceding step, so the sequence replays with [`replay`].
#[must_use]
pub fn find_bt_sequence(from: &Query, to: &Query, opts: ClosureOptions) -> Option<Vec<Bt>> {
    let goal = canonical_tree(to);
    if canonical_tree(from) == goal {
        return Some(Vec::new());
    }
    let mut parent: HashMap<Query, (Query, Bt)> = HashMap::new();
    let mut seen: HashSet<Query> = HashSet::from([from.clone()]);
    let mut queue = VecDeque::from([from.clone()]);
    while let Some(cur) = queue.pop_front() {
        if seen.len() >= opts.max_states {
            return None;
        }
        for bt in applicable_bts(&cur) {
            if opts.only_preserving && is_result_preserving(&cur, &bt) != Some(true) {
                continue;
            }
            let Ok(next) = apply_bt(&cur, &bt) else {
                continue;
            };
            if !seen.insert(next.clone()) {
                continue;
            }
            parent.insert(next.clone(), (cur.clone(), bt.clone()));
            if canonical_tree(&next) == goal {
                // Reconstruct.
                let mut seq = Vec::new();
                let mut node = next;
                while let Some((prev, bt)) = parent.get(&node) {
                    seq.push(bt.clone());
                    node = prev.clone();
                }
                seq.reverse();
                return Some(seq);
            }
            queue.push_back(next);
        }
    }
    None
}

/// Replay a BT sequence from `start`.
///
/// # Errors
/// Propagates the first [`crate::transform::BtError`].
pub fn replay(start: &Query, seq: &[Bt]) -> Result<Query, crate::transform::BtError> {
    let mut cur = start.clone();
    for bt in seq {
        cur = apply_bt(&cur, bt)?;
    }
    Ok(cur)
}

// ---------------------------------------------------------------------
// The constructive Lemma 3 procedure.
// ---------------------------------------------------------------------

use crate::transform::{Dir, Primitive};
use std::collections::BTreeSet as Set;

fn node_at<'a>(q: &'a Query, path: &[Dir]) -> Option<&'a Query> {
    let mut cur = q;
    for d in path {
        let (_, l, r, _) = crate::transform::split(cur)?;
        cur = match d {
            Dir::L => l,
            Dir::R => r,
        };
    }
    Some(cur)
}

/// The unique operator in `q` whose cut separates relations `a` and
/// `b` (the operator "holding" the graph edge `a–b`), as a path.
fn separating_op(q: &Query, a: &str, b: &str) -> Option<Vec<Dir>> {
    let mut path = Vec::new();
    let mut cur = q;
    loop {
        let (_, l, r, _) = crate::transform::split(cur)?;
        let (lr, rr) = (l.rels(), r.rels());
        let la = lr.contains(a);
        let lb = lr.contains(b);
        let ra = rr.contains(a);
        let rb = rr.contains(b);
        if (la && rb) || (lb && ra) {
            return Some(path);
        }
        if la && lb {
            path.push(Dir::L);
            cur = l;
        } else if ra && rb {
            path.push(Dir::R);
            cur = r;
        } else {
            return None; // one of the relations is absent
        }
    }
}

/// Raise the operator at `path` one level (it must have a parent),
/// choosing the reassociation/exchange primitive the paper's proof
/// sketch implies; returns the applied BT. Fails when no primitive is
/// applicable (possible off the nice class).
fn raise_once(q: &Query, path: &[Dir]) -> Option<(Query, Bt)> {
    let (parent_path, last) = path.split_at(path.len() - 1);
    let prims: &[Primitive] = match last[0] {
        Dir::L => &[Primitive::AssocRtl, Primitive::Exchange],
        Dir::R => &[Primitive::AssocLtr, Primitive::ExchangeMirror],
    };
    for &prim in prims {
        let bt = Bt {
            prim,
            path: parent_path.to_vec(),
        };
        if let Ok(next) = apply_bt(q, &bt) {
            return Some((next, bt));
        }
    }
    None
}

/// The constructive Lemma 3 procedure: a BT sequence mapping `from`
/// onto `to` (up to reversal / canonical form), built by hoisting the
/// operator that holds each target cut's edge to the corresponding
/// root and recursing — exactly the induction of the paper's proof
/// sketch ("the application of k reassociations will map Q to an
/// expression in which ⊙ is the root").
///
/// Complete when every target cut is held together by a *bridge* edge
/// of the query graph (always true when the join core is acyclic —
/// in particular for every chain/star/tree workload and every §5
/// block). Returns `None` when a hoist stalls or a hoisted cut does
/// not match the target (a cyclic-core case) — callers should fall
/// back to [`find_bt_sequence`].
#[must_use]
pub fn constructive_sequence(from: &Query, to: &Query) -> Option<Vec<Bt>> {
    let mut cur = from.clone();
    let mut seq = Vec::new();
    align(&mut cur, &mut Vec::new(), to, &mut seq).map(|()| seq)
}

fn align(cur: &mut Query, base: &mut Vec<Dir>, target: &Query, seq: &mut Vec<Bt>) -> Option<()> {
    let sub = node_at(cur, base).expect("base path valid");
    if canonical_tree(sub) == canonical_tree(target) {
        return Some(());
    }
    // Leaf mismatch fails via split below.
    let (_, tl, tr, tp) = crate::transform::split(target)?;
    // The edge that holds the target root's cut.
    let conjunct = tp.conjuncts().into_iter().next()?;
    let rels: Vec<String> = conjunct.rels().into_iter().collect();
    if rels.len() != 2 {
        return None;
    }

    // Hoist the separating operator to the root of the aligned subtree.
    loop {
        let sub = node_at(cur, base).expect("base path valid");
        let rel_path = separating_op(sub, &rels[0], &rels[1])?;
        if rel_path.is_empty() {
            break;
        }
        let mut abs: Vec<Dir> = base.clone();
        abs.extend(rel_path.iter().copied());
        let (next, bt) = raise_once(cur, &abs)?;
        *cur = next;
        seq.push(bt);
    }

    // The hoisted cut must match the target partition (bridge case).
    let sub = node_at(cur, base).expect("base path valid");
    let (_, sl, sr, _) = crate::transform::split(sub)?;
    let (slr, srr): (Set<String>, Set<String>) = (sl.rels(), sr.rels());
    let (tlr, trr): (Set<String>, Set<String>) = (tl.rels(), tr.rels());
    if slr == trr && srr == tlr {
        // Mirrored: swap (joins only; outerjoin orientation is fixed by
        // the edge, so a mirrored outerjoin cut cannot occur).
        let bt = Bt {
            prim: Primitive::Swap,
            path: base.clone(),
        };
        let next = apply_bt(cur, &bt).ok()?;
        *cur = next;
        seq.push(bt);
    } else if !(slr == tlr && srr == trr) {
        return None; // non-bridge cut (cyclic core): bail out
    }

    // Recurse into both operands.
    base.push(Dir::L);
    let ok_l = align(cur, base, tl, seq);
    base.pop();
    ok_l?;
    base.push(Dir::R);
    let ok_r = align(cur, base, tr, seq);
    base.pop();
    ok_r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_trees, EnumLimit};
    use fro_algebra::Pred;
    use fro_graph::QueryGraph;

    fn p(a: &str, b: &str) -> Pred {
        Pred::eq_attr(&format!("{a}.k{a}"), &format!("{b}.k{b}"))
    }

    /// Closure under *all* BTs from any IT must equal the enumerated IT
    /// set (Lemma 3), for each given graph.
    fn assert_lemma3(g: &QueryGraph) {
        let all = enumerate_trees(g, EnumLimit::default()).unwrap();
        let canon_all: std::collections::BTreeSet<Query> = all.iter().map(canonical_tree).collect();
        let start = all.first().expect("non-empty IT set");
        let closure: std::collections::BTreeSet<Query> =
            bt_closure(start, ClosureOptions::default())
                .into_iter()
                .collect();
        assert_eq!(
            closure,
            canon_all,
            "closure ({}) vs enumeration ({}) differ on graph\n{g}",
            closure.len(),
            canon_all.len()
        );
    }

    #[test]
    fn lemma3_join_chain() {
        let mut g = QueryGraph::new((0..4).map(|i| format!("R{i}")).collect());
        for i in 0..3 {
            g.add_join_edge(i, i + 1, p(&format!("R{i}"), &format!("R{}", i + 1)))
                .unwrap();
        }
        assert_lemma3(&g);
    }

    #[test]
    fn lemma3_join_cycle() {
        // Triangle with conjunct-movement reassociations.
        let mut g = QueryGraph::new((0..3).map(|i| format!("R{i}")).collect());
        g.add_join_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_join_edge(1, 2, p("R1", "R2")).unwrap();
        g.add_join_edge(0, 2, p("R0", "R2")).unwrap();
        assert_lemma3(&g);
    }

    #[test]
    fn lemma3_nice_mixed_graph() {
        // Join core R0−R1 with OJ chain R1→R2→R3 and OJ leaf R0→R4.
        let mut g = QueryGraph::new((0..5).map(|i| format!("R{i}")).collect());
        g.add_join_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_outerjoin_edge(1, 2, p("R1", "R2")).unwrap();
        g.add_outerjoin_edge(2, 3, p("R2", "R3")).unwrap();
        g.add_outerjoin_edge(0, 4, p("R0", "R4")).unwrap();
        assert_lemma3(&g);
    }

    #[test]
    fn lemma3_oj_star() {
        // R0 → R1, R0 → R2, R0 → R3 (identity 13 territory).
        let mut g = QueryGraph::new((0..4).map(|i| format!("R{i}")).collect());
        for i in 1..4 {
            g.add_outerjoin_edge(0, i, p("R0", &format!("R{i}")))
                .unwrap();
        }
        assert_lemma3(&g);
    }

    #[test]
    fn lemma3_non_nice_example2() {
        // Even on the non-nice Example 2 graph, BTs connect both ITs —
        // they are just not result-preserving.
        let mut g = QueryGraph::new((0..3).map(|i| format!("R{i}")).collect());
        g.add_outerjoin_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_join_edge(1, 2, p("R1", "R2")).unwrap();
        assert_lemma3(&g);
    }

    #[test]
    fn preserving_closure_on_nice_graph_is_complete() {
        // On a nice graph with strong predicates, even the
        // preserving-only closure reaches every IT (Theorem 1's engine).
        let mut g = QueryGraph::new((0..4).map(|i| format!("R{i}")).collect());
        g.add_join_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_outerjoin_edge(1, 2, p("R1", "R2")).unwrap();
        g.add_outerjoin_edge(2, 3, p("R2", "R3")).unwrap();
        let all = enumerate_trees(&g, EnumLimit::default()).unwrap();
        let start = &all[0];
        let closure = bt_closure(
            start,
            ClosureOptions {
                only_preserving: true,
                max_states: 100_000,
            },
        );
        assert_eq!(closure.len(), all.len());
    }

    #[test]
    fn preserving_closure_on_example2_graph_is_partial() {
        let mut g = QueryGraph::new((0..3).map(|i| format!("R{i}")).collect());
        g.add_outerjoin_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_join_edge(1, 2, p("R1", "R2")).unwrap();
        let all = enumerate_trees(&g, EnumLimit::default()).unwrap();
        assert_eq!(all.len(), 2);
        let closure = bt_closure(
            &all[0],
            ClosureOptions {
                only_preserving: true,
                max_states: 100_000,
            },
        );
        // Stuck at the starting tree: the only connecting BT is
        // non-preserving.
        assert_eq!(closure.len(), 1);
    }

    #[test]
    fn find_sequence_and_replay() {
        let q1 = Query::rel("A")
            .join(Query::rel("B"), p("A", "B"))
            .join(Query::rel("C"), p("B", "C"));
        let q2 = Query::rel("A").join(
            Query::rel("B").join(Query::rel("C"), p("B", "C")),
            p("A", "B"),
        );
        let seq = find_bt_sequence(&q1, &q2, ClosureOptions::default()).unwrap();
        assert!(!seq.is_empty());
        let end = replay(&q1, &seq).unwrap();
        assert_eq!(canonical_tree(&end), canonical_tree(&q2));
    }

    #[test]
    fn find_sequence_identity() {
        let q = Query::rel("A").join(Query::rel("B"), p("A", "B"));
        assert_eq!(
            find_bt_sequence(&q, &q, ClosureOptions::default()),
            Some(vec![])
        );
    }

    #[test]
    fn constructive_sequence_on_chain() {
        // (R0 − R1) − R2 … left-deep to right-deep.
        let ldeep = Query::rel("R0")
            .join(Query::rel("R1"), p("R0", "R1"))
            .join(Query::rel("R2"), p("R1", "R2"));
        let rdeep = Query::rel("R0").join(
            Query::rel("R1").join(Query::rel("R2"), p("R1", "R2")),
            p("R0", "R1"),
        );
        let seq = constructive_sequence(&ldeep, &rdeep).expect("bridge cuts");
        let end = replay(&ldeep, &seq).unwrap();
        assert_eq!(canonical_tree(&end), canonical_tree(&rdeep));
    }

    #[test]
    fn constructive_matches_bfs_on_random_nice_tree_graphs() {
        use fro_graph::QueryGraph;
        // Acyclic join core + OJ tails: constructive must succeed and
        // land on the same canonical tree BFS reaches.
        for seed in 0..12u64 {
            let mut g = QueryGraph::new((0..5).map(|i| format!("R{i}")).collect());
            g.add_join_edge(0, 1, p("R0", "R1")).unwrap();
            g.add_join_edge(1, 2, p("R1", "R2")).unwrap();
            let oj_src = 1 + (seed as usize % 2);
            g.add_outerjoin_edge(oj_src, 3, p(&format!("R{oj_src}"), "R3"))
                .unwrap();
            g.add_outerjoin_edge(3, 4, p("R3", "R4")).unwrap();
            let trees = enumerate_trees(&g, EnumLimit::default()).unwrap();
            let a = &trees[seed as usize % trees.len()];
            let b = &trees[(seed as usize * 7 + 3) % trees.len()];
            let seq = constructive_sequence(a, b).unwrap_or_else(|| {
                panic!(
                    "constructive failed seed {seed}: {} → {}",
                    a.shape(),
                    b.shape()
                )
            });
            let end = replay(a, &seq).unwrap();
            assert_eq!(canonical_tree(&end), canonical_tree(b), "seed {seed}");
            // On nice graphs with strong predicates every hoist step is
            // result-preserving (Lemma 2): verify end-to-end.
            let db = fro_testkit_free::db(&g, seed);
            assert!(a.eval(&db).unwrap().set_eq(&b.eval(&db).unwrap()));
        }
    }

    /// Minimal local data generator (fro-testkit depends on this crate,
    /// so tests here cannot use it).
    mod fro_testkit_free {
        use fro_algebra::{Database, Relation, Value};
        pub fn db(g: &fro_graph::QueryGraph, seed: u64) -> Database {
            let mut db = Database::new();
            for (i, name) in g.node_names().iter().enumerate() {
                let key_col = format!("k{name}");
                let rows: Vec<Vec<Value>> = (0..4)
                    .map(|j| {
                        vec![
                            Value::Int(((seed + j + i as u64) % 3) as i64),
                            Value::Int(j as i64),
                        ]
                    })
                    .collect();
                db.insert_named(
                    name.clone(),
                    Relation::from_values(name, &[&key_col, "v"], rows),
                );
            }
            db
        }
    }

    #[test]
    fn constructive_gives_up_gracefully_on_cyclic_core() {
        // Triangle: cuts are 2-edge sets — constructive declines, BFS
        // still succeeds.
        let mut g = fro_graph::QueryGraph::new((0..3).map(|i| format!("R{i}")).collect());
        g.add_join_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_join_edge(1, 2, p("R1", "R2")).unwrap();
        g.add_join_edge(0, 2, p("R0", "R2")).unwrap();
        let trees = enumerate_trees(&g, EnumLimit::default()).unwrap();
        let (a, b) = (&trees[0], &trees[trees.len() - 1]);
        match constructive_sequence(a, b) {
            Some(seq) => {
                // If it succeeds anyway, the result must be correct.
                let end = replay(a, &seq).unwrap();
                assert_eq!(canonical_tree(&end), canonical_tree(b));
            }
            None => {
                assert!(find_bt_sequence(a, b, ClosureOptions::default()).is_some());
            }
        }
    }

    #[test]
    fn unreachable_under_preserving_only() {
        let mut g = QueryGraph::new((0..3).map(|i| format!("R{i}")).collect());
        g.add_outerjoin_edge(0, 1, p("R0", "R1")).unwrap();
        g.add_join_edge(1, 2, p("R1", "R2")).unwrap();
        let all = enumerate_trees(&g, EnumLimit::default()).unwrap();
        let seq = find_bt_sequence(
            &all[0],
            &all[1],
            ClosureOptions {
                only_preserving: true,
                max_states: 10_000,
            },
        );
        assert!(seq.is_none());
        // But reachable with the full BT set.
        assert!(find_bt_sequence(&all[0], &all[1], ClosureOptions::default()).is_some());
    }
}
