//! Basic transforms (BTs) on implementing trees (§3.2, Fig. 4).
//!
//! The paper defines two BTs — *reversal* (swap operands, replacing the
//! operator by its symmetric form `←`/`◁`) and *reassociation*
//! (`((Q1 ⊙1 Q2) ⊙2 Q3) ⇒ (Q1 ⊙1 (Q2 ⊙2 Q3))`, moving any `⊙2`
//! conjunct that references `Q1` up into `⊙1`, which is only legal when
//! both operators are regular joins).
//!
//! Our [`Query`] algebra keeps the preserved operand of an outerjoin on
//! the left (there is no `←` constructor), so the paper's
//! reversal-conjugated reassociations surface here as five concrete
//! primitives:
//!
//! | primitive | rewrite | paper derivation |
//! |-----------|---------|------------------|
//! | [`Primitive::Swap`] | `(A − B) ⇒ (B − A)` | reversal (join only) |
//! | [`Primitive::AssocRtl`] | `((A ⊙1 B) ⊙2 C) ⇒ (A ⊙1 (B ⊙2 C))` | reassociation |
//! | [`Primitive::AssocLtr`] | `(A ⊙1 (B ⊙2 C)) ⇒ ((A ⊙1 B) ⊙2 C)` | reversal ∘ reassociation ∘ reversal |
//! | [`Primitive::Exchange`] | `((A ⊙1 B) ⊙2 C) ⇒ ((A ⊙2 C) ⊙1 B)` when `⊙2` hangs off `A` | reversal-conjugated reassociation (identity 13 shape) |
//! | [`Primitive::ExchangeMirror`] | `(A ⊙1 (B ⊙2 C)) ⇒ (B ⊙2 (A ⊙1 C))` when `⊙1` hangs off `C` | reversal-conjugated reassociation |
//!
//! Every primitive maps an implementing tree of `G` to another
//! implementing tree of the same `G` (validated in tests); whether it
//! also preserves `eval` is the subject of [`crate::preserve`].

use fro_algebra::{Pred, Query};
use std::collections::BTreeSet;
use std::fmt;

/// Direction steps addressing a node in a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Descend into the left operand.
    L,
    /// Descend into the right operand.
    R,
}

/// The rewrite primitives (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// Reversal of a join's operands.
    Swap,
    /// Left-deep to right-deep reassociation.
    AssocRtl,
    /// Right-deep to left-deep reassociation.
    AssocLtr,
    /// Exchange the two operators hanging off the left-deep operand.
    Exchange,
    /// Exchange the two operators hanging off the right-deep operand.
    ExchangeMirror,
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Primitive::Swap => "swap",
            Primitive::AssocRtl => "assoc→",
            Primitive::AssocLtr => "assoc←",
            Primitive::Exchange => "exchange",
            Primitive::ExchangeMirror => "exchange~",
        };
        write!(f, "{s}")
    }
}

/// A basic transform: a primitive applied at the node reached by
/// `path` from the root.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bt {
    /// The rewrite to perform.
    pub prim: Primitive,
    /// Steps from the root to the rewrite site.
    pub path: Vec<Dir>,
}

impl fmt::Display for Bt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@", self.prim)?;
        if self.path.is_empty() {
            write!(f, "root")?;
        }
        for d in &self.path {
            write!(f, "{}", if *d == Dir::L { 'L' } else { 'R' })?;
        }
        Ok(())
    }
}

/// Why a BT could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BtError {
    /// The path does not address a node.
    BadPath,
    /// The primitive's structural/predicate preconditions failed.
    NotApplicable(&'static str),
}

impl fmt::Display for BtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BtError::BadPath => write!(f, "path does not address a node"),
            BtError::NotApplicable(why) => write!(f, "transform not applicable: {why}"),
        }
    }
}

impl std::error::Error for BtError {}

/// Operator kind of a join-like binary node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// Regular join.
    Join,
    /// Left outerjoin (left operand preserved).
    Oj,
}

pub(crate) fn split(q: &Query) -> Option<(OpKind, &Query, &Query, &Pred)> {
    match q {
        Query::Join { left, right, pred } => Some((OpKind::Join, left, right, pred)),
        Query::OuterJoin { left, right, pred } => Some((OpKind::Oj, left, right, pred)),
        _ => None,
    }
}

pub(crate) fn rebuild(kind: OpKind, l: Query, r: Query, pred: Pred) -> Query {
    match kind {
        OpKind::Join => l.join(r, pred),
        OpKind::Oj => l.outerjoin(r, pred),
    }
}

/// Whether the predicate references at least one relation from `rels`.
fn refs_any(p: &Pred, rels: &BTreeSet<String>) -> bool {
    p.rels().iter().any(|r| rels.contains(r))
}

/// Apply a primitive at the root of `q`.
fn apply_at_root(q: &Query, prim: Primitive) -> Result<Query, BtError> {
    match prim {
        Primitive::Swap => match q {
            Query::Join { left, right, pred } => Ok(Query::Join {
                left: right.clone(),
                right: left.clone(),
                pred: pred.clone(),
            }),
            Query::OuterJoin { .. } => Err(BtError::NotApplicable(
                "outerjoin reversal is the notational mirror (←); not a distinct tree here",
            )),
            _ => Err(BtError::NotApplicable("not a join-like node")),
        },
        Primitive::AssocRtl => assoc_rtl(q),
        Primitive::AssocLtr => assoc_ltr(q),
        Primitive::Exchange => exchange(q),
        Primitive::ExchangeMirror => exchange_mirror(q),
    }
}

/// `((A ⊙1 B) ⊙2 C) ⇒ (A ⊙1 (B ⊙2 C))`.
fn assoc_rtl(q: &Query) -> Result<Query, BtError> {
    let (k2, l, c, p2) = split(q).ok_or(BtError::NotApplicable("root not join-like"))?;
    let (k1, a, b, p1) = split(l).ok_or(BtError::NotApplicable("left child not join-like"))?;
    let rels_a = a.rels();
    let rels_b = b.rels();

    match k2 {
        OpKind::Oj => {
            // Outerjoin predicates are atomic single edges: no
            // conjunct movement. The predicate must reference B (so the
            // new inner operator spans B and C) and must not reference A.
            if refs_any(p2, &rels_a) {
                return Err(BtError::NotApplicable("outerjoin predicate references Q1"));
            }
            if !refs_any(p2, &rels_b) {
                return Err(BtError::NotApplicable("predicate references nothing in Q2"));
            }
            Ok(rebuild(
                k1,
                a.clone(),
                rebuild(k2, b.clone(), c.clone(), p2.clone()),
                p1.clone(),
            ))
        }
        OpKind::Join => {
            let mut moved = Vec::new();
            let mut stay = Vec::new();
            for conj in p2.conjuncts() {
                let refs_a = refs_any(&conj, &rels_a);
                let refs_b = refs_any(&conj, &rels_b);
                match (refs_a, refs_b) {
                    (true, true) => {
                        return Err(BtError::NotApplicable(
                            "conjunct references both Q1 and Q2 (malformed IT)",
                        ))
                    }
                    (true, false) => moved.push(conj),
                    (false, true) => stay.push(conj),
                    (false, false) => {
                        return Err(BtError::NotApplicable(
                            "conjunct references neither operand side",
                        ))
                    }
                }
            }
            if stay.is_empty() {
                return Err(BtError::NotApplicable(
                    "predicate in ⊙2 references no relation in Q2",
                ));
            }
            if !moved.is_empty() && k1 != OpKind::Join {
                return Err(BtError::NotApplicable(
                    "conjunct movement requires both operators to be regular joins",
                ));
            }
            let new_inner = Query::Join {
                left: Box::new(b.clone()),
                right: Box::new(c.clone()),
                pred: Pred::from_conjuncts(stay),
            };
            let new_p1 = Pred::from_conjuncts(p1.conjuncts().into_iter().chain(moved));
            Ok(rebuild(k1, a.clone(), new_inner, new_p1))
        }
    }
}

/// `(A ⊙1 (B ⊙2 C)) ⇒ ((A ⊙1 B) ⊙2 C)`.
fn assoc_ltr(q: &Query) -> Result<Query, BtError> {
    let (k1, a, r, p1) = split(q).ok_or(BtError::NotApplicable("root not join-like"))?;
    let (k2, b, c, p2) = split(r).ok_or(BtError::NotApplicable("right child not join-like"))?;
    let rels_b = b.rels();
    let rels_c = c.rels();

    match k1 {
        OpKind::Oj => {
            if refs_any(p1, &rels_c) {
                return Err(BtError::NotApplicable("outerjoin predicate references Q3"));
            }
            if !refs_any(p1, &rels_b) {
                return Err(BtError::NotApplicable("predicate references nothing in Q2"));
            }
            Ok(rebuild(
                k2,
                rebuild(k1, a.clone(), b.clone(), p1.clone()),
                c.clone(),
                p2.clone(),
            ))
        }
        OpKind::Join => {
            let mut moved = Vec::new();
            let mut stay = Vec::new();
            for conj in p1.conjuncts() {
                let refs_b = refs_any(&conj, &rels_b);
                let refs_c = refs_any(&conj, &rels_c);
                match (refs_b, refs_c) {
                    (true, true) => {
                        return Err(BtError::NotApplicable(
                            "conjunct references both Q2 and Q3 (malformed IT)",
                        ))
                    }
                    (false, true) => moved.push(conj),
                    (true, false) => stay.push(conj),
                    (false, false) => {
                        return Err(BtError::NotApplicable(
                            "conjunct references neither operand side",
                        ))
                    }
                }
            }
            if stay.is_empty() {
                return Err(BtError::NotApplicable(
                    "predicate in ⊙1 references no relation in Q2",
                ));
            }
            if !moved.is_empty() && k2 != OpKind::Join {
                return Err(BtError::NotApplicable(
                    "conjunct movement requires both operators to be regular joins",
                ));
            }
            let new_inner = Query::Join {
                left: Box::new(a.clone()),
                right: Box::new(b.clone()),
                pred: Pred::from_conjuncts(stay),
            };
            let new_p2 = Pred::from_conjuncts(p2.conjuncts().into_iter().chain(moved));
            Ok(rebuild(k2, new_inner, c.clone(), new_p2))
        }
    }
}

/// `((A ⊙1 B) ⊙2 C) ⇒ ((A ⊙2 C) ⊙1 B)` when `⊙2` references only
/// the `A` side of the left operand.
fn exchange(q: &Query) -> Result<Query, BtError> {
    let (k2, l, c, p2) = split(q).ok_or(BtError::NotApplicable("root not join-like"))?;
    let (k1, a, b, p1) = split(l).ok_or(BtError::NotApplicable("left child not join-like"))?;
    let rels_a = a.rels();
    let rels_b = b.rels();
    if refs_any(p2, &rels_b) {
        return Err(BtError::NotApplicable(
            "⊙2 predicate references Q2 (use reassociation)",
        ));
    }
    if !refs_any(p2, &rels_a) {
        return Err(BtError::NotApplicable(
            "⊙2 predicate references nothing in Q1",
        ));
    }
    Ok(rebuild(
        k1,
        rebuild(k2, a.clone(), c.clone(), p2.clone()),
        b.clone(),
        p1.clone(),
    ))
}

/// `(A ⊙1 (B ⊙2 C)) ⇒ (B ⊙2 (A ⊙1 C))` when `⊙1` references only
/// the `C` side of the right operand.
fn exchange_mirror(q: &Query) -> Result<Query, BtError> {
    let (k1, a, r, p1) = split(q).ok_or(BtError::NotApplicable("root not join-like"))?;
    let (k2, b, c, p2) = split(r).ok_or(BtError::NotApplicable("right child not join-like"))?;
    let rels_b = b.rels();
    let rels_c = c.rels();
    if refs_any(p1, &rels_b) {
        return Err(BtError::NotApplicable(
            "⊙1 predicate references Q2 (use reassociation)",
        ));
    }
    if !refs_any(p1, &rels_c) {
        return Err(BtError::NotApplicable(
            "⊙1 predicate references nothing in Q3",
        ));
    }
    Ok(rebuild(
        k2,
        b.clone(),
        rebuild(k1, a.clone(), c.clone(), p1.clone()),
        p2.clone(),
    ))
}

/// Apply a BT to `q`.
///
/// # Errors
/// [`BtError`] when the path is invalid or the primitive's
/// preconditions fail at the addressed node.
pub fn apply_bt(q: &Query, bt: &Bt) -> Result<Query, BtError> {
    fn go(q: &Query, path: &[Dir], prim: Primitive) -> Result<Query, BtError> {
        let Some((&step, rest)) = path.split_first() else {
            return apply_at_root(q, prim);
        };
        let (kind, l, r, pred) = split(q).ok_or(BtError::BadPath)?;
        Ok(match step {
            Dir::L => rebuild(kind, go(l, rest, prim)?, r.clone(), pred.clone()),
            Dir::R => rebuild(kind, l.clone(), go(r, rest, prim)?, pred.clone()),
        })
    }
    go(q, &bt.path, bt.prim)
}

/// All BTs applicable anywhere in `q` (tried by construction).
#[must_use]
pub fn applicable_bts(q: &Query) -> Vec<Bt> {
    let mut out = Vec::new();
    fn walk(q: &Query, path: &mut Vec<Dir>, out: &mut Vec<Bt>) {
        if let Some((_, l, r, _)) = split(q) {
            for prim in [
                Primitive::Swap,
                Primitive::AssocRtl,
                Primitive::AssocLtr,
                Primitive::Exchange,
                Primitive::ExchangeMirror,
            ] {
                if apply_at_root(q, prim).is_ok() {
                    out.push(Bt {
                        prim,
                        path: path.clone(),
                    });
                }
            }
            path.push(Dir::L);
            walk(l, path, out);
            path.pop();
            path.push(Dir::R);
            walk(r, path, out);
            path.pop();
        }
    }
    walk(q, &mut Vec::new(), &mut out);
    out
}

/// Canonical form of a join/outerjoin tree: join operands ordered by
/// smallest leaf name, conjunct lists sorted. Two trees equal modulo
/// reversal BTs (and conjunct bookkeeping) have identical canonical
/// forms.
#[must_use]
pub fn canonical_tree(q: &Query) -> Query {
    fn canon_pred(p: &Pred) -> Pred {
        let mut cs: Vec<Pred> = p.conjuncts();
        cs.sort();
        Pred::from_conjuncts(cs)
    }
    match q {
        Query::Join { left, right, pred } => {
            let l = canonical_tree(left);
            let r = canonical_tree(right);
            let (l, r) = {
                let lk = l.leaves().into_iter().min().unwrap_or_default();
                let rk = r.leaves().into_iter().min().unwrap_or_default();
                if lk <= rk {
                    (l, r)
                } else {
                    (r, l)
                }
            };
            l.join(r, canon_pred(pred))
        }
        Query::OuterJoin { left, right, pred } => {
            canonical_tree(left).outerjoin(canonical_tree(right), canon_pred(pred))
        }
        // Non-commutative / auxiliary operators: canonicalize children
        // in place (needed e.g. for the §6.3 semijoin study, where join
        // subtrees sit under semijoin operators).
        Query::SemiJoin { left, right, pred } => {
            canonical_tree(left).semijoin(canonical_tree(right), canon_pred(pred))
        }
        Query::AntiJoin { left, right, pred } => {
            canonical_tree(left).antijoin(canonical_tree(right), canon_pred(pred))
        }
        Query::FullOuterJoin { left, right, pred } => {
            canonical_tree(left).full_outerjoin(canonical_tree(right), canon_pred(pred))
        }
        Query::Union { left, right } => canonical_tree(left).union(canonical_tree(right)),
        Query::Restrict { input, pred } => canonical_tree(input).restrict(canon_pred(pred)),
        Query::Project { input, attrs } => canonical_tree(input).project(attrs.clone()),
        Query::GroupCount {
            input,
            group_attrs,
            counted,
        } => canonical_tree(input).group_count(group_attrs.clone(), counted.clone()),
        Query::Goj {
            left,
            right,
            pred,
            subset,
        } => canonical_tree(left).goj(canonical_tree(right), canon_pred(pred), subset.clone()),
        leaf @ Query::Rel(_) => leaf.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::{Database, Pred, Relation};

    fn pq(a: &str, b: &str) -> Pred {
        Pred::eq_attr(&format!("{a}.k{a}"), &format!("{b}.k{b}"))
    }

    fn db() -> Database {
        let mut db = Database::new();
        for (name, rows) in [
            ("A", vec![vec![1], vec![2]]),
            ("B", vec![vec![1], vec![3]]),
            ("C", vec![vec![1], vec![2], vec![4]]),
        ] {
            let rows: Vec<&[i64]> = rows.iter().map(Vec::as_slice).collect();
            db.insert(Relation::from_ints(name, &[&format!("k{name}")], &rows));
        }
        db
    }

    fn eq_on_db(a: &Query, b: &Query) -> bool {
        let d = db();
        a.eval(&d).unwrap().set_eq(&b.eval(&d).unwrap())
    }

    #[test]
    fn swap_join_preserves_value() {
        let q = Query::rel("A").join(Query::rel("B"), pq("A", "B"));
        let s = apply_bt(
            &q,
            &Bt {
                prim: Primitive::Swap,
                path: vec![],
            },
        )
        .unwrap();
        assert_eq!(s.shape(), "(B − A)");
        assert!(eq_on_db(&q, &s));
    }

    #[test]
    fn swap_outerjoin_not_representable() {
        let q = Query::rel("A").outerjoin(Query::rel("B"), pq("A", "B"));
        let e = apply_bt(
            &q,
            &Bt {
                prim: Primitive::Swap,
                path: vec![],
            },
        );
        assert!(matches!(e, Err(BtError::NotApplicable(_))));
    }

    #[test]
    fn assoc_rtl_join_join() {
        let q = Query::rel("A")
            .join(Query::rel("B"), pq("A", "B"))
            .join(Query::rel("C"), pq("B", "C"));
        let t = apply_bt(
            &q,
            &Bt {
                prim: Primitive::AssocRtl,
                path: vec![],
            },
        )
        .unwrap();
        assert_eq!(t.shape(), "(A − (B − C))");
        assert!(eq_on_db(&q, &t));
    }

    #[test]
    fn assoc_rtl_moves_cycle_conjunct() {
        // ((A − B) −{Pac ∧ Pbc} C) ⇒ (A −{Pab ∧ Pac} (B −{Pbc} C)).
        let q = Query::rel("A")
            .join(Query::rel("B"), pq("A", "B"))
            .join(Query::rel("C"), pq("A", "C").and(pq("B", "C")));
        let t = apply_bt(
            &q,
            &Bt {
                prim: Primitive::AssocRtl,
                path: vec![],
            },
        )
        .unwrap();
        assert_eq!(t.shape(), "(A − (B − C))");
        // Root predicate now has two conjuncts (Pab, Pac).
        assert_eq!(t.pred().unwrap().conjuncts().len(), 2);
        assert!(eq_on_db(&q, &t));
    }

    #[test]
    fn conjunct_movement_requires_joins() {
        // ((A → B) −{Pac ∧ Pbc} C): moving Pac would need ⊙1 join.
        let q = Query::rel("A")
            .outerjoin(Query::rel("B"), pq("A", "B"))
            .join(Query::rel("C"), pq("A", "C").and(pq("B", "C")));
        let e = apply_bt(
            &q,
            &Bt {
                prim: Primitive::AssocRtl,
                path: vec![],
            },
        );
        assert!(matches!(e, Err(BtError::NotApplicable(_))));
    }

    #[test]
    fn assoc_rtl_requires_q2_reference() {
        // ((A − B) ⊙2 C) with ⊙2 pred referencing only A.
        let q = Query::rel("A")
            .join(Query::rel("B"), pq("A", "B"))
            .join(Query::rel("C"), pq("A", "C"));
        let e = apply_bt(
            &q,
            &Bt {
                prim: Primitive::AssocRtl,
                path: vec![],
            },
        );
        assert!(matches!(e, Err(BtError::NotApplicable(_))));
        // But Exchange applies there.
        let t = apply_bt(
            &q,
            &Bt {
                prim: Primitive::Exchange,
                path: vec![],
            },
        )
        .unwrap();
        assert_eq!(t.shape(), "((A − C) − B)");
        assert!(eq_on_db(&q, &t));
    }

    #[test]
    fn assoc_ltr_inverts_rtl() {
        let q = Query::rel("A")
            .join(Query::rel("B"), pq("A", "B"))
            .join(Query::rel("C"), pq("B", "C"));
        let t = apply_bt(
            &q,
            &Bt {
                prim: Primitive::AssocRtl,
                path: vec![],
            },
        )
        .unwrap();
        let back = apply_bt(
            &t,
            &Bt {
                prim: Primitive::AssocLtr,
                path: vec![],
            },
        )
        .unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn assoc_identity_11_shape() {
        // ((A − B) → C) ⇔ (A − (B → C)).
        let lhs = Query::rel("A")
            .join(Query::rel("B"), pq("A", "B"))
            .outerjoin(Query::rel("C"), pq("B", "C"));
        let t = apply_bt(
            &lhs,
            &Bt {
                prim: Primitive::AssocRtl,
                path: vec![],
            },
        )
        .unwrap();
        assert_eq!(t.shape(), "(A − (B → C))");
        assert!(eq_on_db(&lhs, &t));
    }

    #[test]
    fn assoc_identity_12_shape() {
        // ((A → B) → C) ⇔ (A → (B → C)) with strong predicates.
        let lhs = Query::rel("A")
            .outerjoin(Query::rel("B"), pq("A", "B"))
            .outerjoin(Query::rel("C"), pq("B", "C"));
        let t = apply_bt(
            &lhs,
            &Bt {
                prim: Primitive::AssocRtl,
                path: vec![],
            },
        )
        .unwrap();
        assert_eq!(t.shape(), "(A → (B → C))");
        assert!(eq_on_db(&lhs, &t));
    }

    #[test]
    fn exchange_identity_13_shape() {
        // ((A → B) → C) with both predicates off A ⇔ ((A → C) → B).
        let lhs = Query::rel("A")
            .outerjoin(Query::rel("B"), pq("A", "B"))
            .outerjoin(Query::rel("C"), pq("A", "C"));
        let t = apply_bt(
            &lhs,
            &Bt {
                prim: Primitive::Exchange,
                path: vec![],
            },
        )
        .unwrap();
        assert_eq!(t.shape(), "((A → C) → B)");
        assert!(eq_on_db(&lhs, &t));
    }

    #[test]
    fn exchange_mirror_shape() {
        // (A → (B − C)) with the outerjoin predicate on C:
        // ⇒ (B − (A → C)). Non-preserving in general (checked in
        // preserve.rs); here we check the rewrite shape on a graph
        // where it happens to matter structurally.
        let q = Query::rel("A").outerjoin(
            Query::rel("B").join(Query::rel("C"), pq("B", "C")),
            pq("A", "C"),
        );
        let t = apply_bt(
            &q,
            &Bt {
                prim: Primitive::ExchangeMirror,
                path: vec![],
            },
        )
        .unwrap();
        assert_eq!(t.shape(), "(B − (A → C))");
    }

    #[test]
    fn bt_at_deep_path() {
        let q = Query::rel("A").join(
            Query::rel("B").join(Query::rel("C"), pq("B", "C")),
            pq("A", "B"),
        );
        // Swap the inner join via path [R].
        let t = apply_bt(
            &q,
            &Bt {
                prim: Primitive::Swap,
                path: vec![Dir::R],
            },
        )
        .unwrap();
        assert_eq!(t.shape(), "(A − (C − B))");
        let e = apply_bt(
            &q,
            &Bt {
                prim: Primitive::Swap,
                path: vec![Dir::L],
            },
        );
        assert!(matches!(
            e,
            Err(BtError::BadPath) | Err(BtError::NotApplicable(_))
        ));
    }

    #[test]
    fn applicable_bts_enumeration() {
        let q = Query::rel("A")
            .join(Query::rel("B"), pq("A", "B"))
            .join(Query::rel("C"), pq("B", "C"));
        let bts = applicable_bts(&q);
        // Root: Swap + AssocRtl apply; inner join: Swap.
        assert!(bts
            .iter()
            .any(|b| b.prim == Primitive::AssocRtl && b.path.is_empty()));
        assert!(bts
            .iter()
            .any(|b| b.prim == Primitive::Swap && b.path == vec![Dir::L]));
        for bt in &bts {
            let t = apply_bt(&q, bt).unwrap();
            // Every applicable BT yields an IT of the same graph.
            let g = fro_graph::graph_of(&q).unwrap();
            assert!(
                crate::enumerate::is_implementing_tree(&t, &g),
                "{bt} produced non-IT {}",
                t.shape()
            );
        }
    }

    #[test]
    fn canonical_tree_identifies_mirrors() {
        let q1 = Query::rel("A").join(Query::rel("B"), pq("A", "B"));
        let q2 = Query::rel("B").join(Query::rel("A"), pq("A", "B"));
        assert_eq!(canonical_tree(&q1), canonical_tree(&q2));
        // Outerjoins are not reordered.
        let o = Query::rel("B").outerjoin(Query::rel("A"), pq("A", "B"));
        assert_eq!(canonical_tree(&o).shape(), "(B → A)");
    }

    #[test]
    fn canonical_tree_sorts_conjuncts() {
        let p1 = pq("A", "B");
        let p2 = Pred::eq_attr("A.x", "B.x");
        let q1 = Query::rel("A").join(Query::rel("B"), p1.clone().and(p2.clone()));
        let q2 = Query::rel("A").join(Query::rel("B"), p2.and(p1));
        assert_eq!(canonical_tree(&q1), canonical_tree(&q2));
    }

    #[test]
    fn bt_display() {
        let bt = Bt {
            prim: Primitive::AssocRtl,
            path: vec![Dir::L, Dir::R],
        };
        assert_eq!(bt.to_string(), "assoc→@LR");
        let bt = Bt {
            prim: Primitive::Swap,
            path: vec![],
        };
        assert_eq!(bt.to_string(), "swap@root");
    }
}
