//! # fro-trees — implementing trees of a query graph
//!
//! Implements §3 of Rosenthal & Galindo-Legaria (SIGMOD 1990):
//!
//! * [`enumerate`]: all *implementing trees* (ITs) of a query graph —
//!   the connectivity-preserving parenthesizations; a join operator may
//!   sit only on a cut whose crossing edges are all join edges (its
//!   predicate is their conjunction), an outerjoin only on a cut whose
//!   single crossing edge is that outerjoin edge, oriented so the
//!   preserved relation's side is preserved. Includes memoized
//!   *counting* of ITs (the plan-space size an optimizer walks).
//! * [`transform`]: the *basic transforms* (BTs) of §3.2 — reversal and
//!   reassociation (with conjunct movement between regular joins, per
//!   identity 1) — expressed as five tree-rewrite primitives on our
//!   preserved-on-the-left [`Query`] representation (the paper's
//!   symmetric forms `←`, `◁` are notational, so each of its
//!   reversal-conjugated reassociations appears here as one primitive).
//! * [`preserve`]: Lemma 2's classification of which BTs are
//!   *result-preserving*, keyed to identities 1, 11, 12 (strongness
//!   required), and 13.
//! * [`search`]: the BT closure and BT-sequence search between two ITs
//!   (the constructive content of Lemma 3), used to validate Theorem 1
//!   exhaustively.
//! * [`semijoin`]: the §6.3 future-work study — join/semijoin graphs,
//!   their implementing trees (with attribute-visibility constraints),
//!   and an executable test of the "semijoin edges in series are an
//!   additional forbidden subgraph" conjecture.

//! ## Example
//!
//! ```
//! use fro_algebra::{Pred, Query};
//! use fro_trees::{enumerate_trees, EnumLimit};
//!
//! let q = Query::rel("R1").join(
//!     Query::rel("R2").outerjoin(Query::rel("R3"), Pred::eq_attr("R2.b", "R3.c")),
//!     Pred::eq_attr("R1.a", "R2.b"),
//! );
//! let g = fro_graph::graph_of(&q).unwrap();
//! let trees = enumerate_trees(&g, EnumLimit::default()).unwrap();
//! // Two associations implement this graph; Theorem 1 says both
//! // evaluate identically (the predicates are strong equalities).
//! assert_eq!(trees.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumerate;
pub mod preserve;
pub mod search;
pub mod semijoin;
pub mod transform;

pub use enumerate::{
    count_implementing_trees, enumerate_trees, is_implementing_tree, some_implementing_tree,
    EnumLimit,
};
pub use preserve::is_result_preserving;
pub use search::{bt_closure, constructive_sequence, find_bt_sequence, ClosureOptions};
pub use transform::{applicable_bts, apply_bt, canonical_tree, Bt, BtError, Dir, Primitive};

use fro_algebra::Query;

/// Convenience: canonical forms of all implementing trees of
/// `graph(q)`, or `None` when the graph is undefined or enumeration
/// overflows the default limit.
#[must_use]
pub fn all_equivalent_shapes(q: &Query) -> Option<Vec<Query>> {
    let g = fro_graph::graph_of(q).ok()?;
    enumerate_trees(&g, EnumLimit::default()).ok()
}
