//! Lemma 2: which basic transforms are result-preserving.
//!
//! A reassociation `[X ⊙1 Y ⊙2 Z]` is result-preserving exactly when
//! the corresponding "three relations" identity of §2 holds:
//!
//! | pattern | identity | preserving |
//! |---------|----------|------------|
//! | `(X − Y) − Z ⇔ X − (Y − Z)` (incl. conjunct movement) | 1 | always |
//! | `(X − Y) → Z ⇔ X − (Y → Z)` | 11 | always |
//! | `(X → Y) − Z ⇔ X → (Y − Z)` | — | **never** (Example 2) |
//! | `(X → Y) → Z ⇔ X → (Y → Z)` | 12 | iff `P_yz` strong w.r.t. `Y` |
//! | exchange off the shared operand (`(X ← Y) → Z` family) | 13 (+ reversal-conjugates of 1, 11) | always |
//! | mirror-exchange `(A ⊙1 (B ⊙2 C)) ⇔ (B ⊙2 (A ⊙1 C))` | 1 via reversal | joins only |
//!
//! Reversals are always result-preserving (the paper's reversal swaps
//! operands and flips to the symmetric operator form; at the level of
//! relation *values* — sets of tuples over a scheme — the result is
//! unchanged).

use crate::transform::{split, Bt, Dir, OpKind, Primitive};
use fro_algebra::Query;

/// Classify whether applying `bt` to `q` is result-preserving, per the
/// §2 identities (Lemma 2's analysis). Returns `None` when the BT is
/// not applicable at that site (so there is nothing to classify).
///
/// The classification is *sound for the identities' preconditions*: it
/// answers "does the matching §2 identity guarantee equivalence?".
/// A `false` means no identity applies — and for the two patterns the
/// paper names (`X → Y − Z`, `X → Y ← Z`) there are concrete
/// counterexample databases (Examples 2 and 3, reproduced in tests).
#[must_use]
pub fn is_result_preserving(q: &Query, bt: &Bt) -> Option<bool> {
    // Walk to the site.
    let mut node = q;
    for d in &bt.path {
        let (_, l, r, _) = split(node)?;
        node = match d {
            Dir::L => l,
            Dir::R => r,
        };
    }
    classify_at(node, bt.prim)
}

fn classify_at(node: &Query, prim: Primitive) -> Option<bool> {
    match prim {
        Primitive::Swap => {
            // Applicable only on joins; reversal is always preserving.
            let (k, ..) = split(node)?;
            (k == OpKind::Join).then_some(true)
        }
        Primitive::AssocRtl => {
            let (k2, l, _c, p2) = split(node)?;
            let (k1, _a, b, _p1) = split(l)?;
            // Conjunct movement case: applicability already forces both
            // operators to be joins (identity 1) — preserving. The
            // kind-based table below returns `true` for (Join, Join)
            // whether or not conjuncts move.
            Some(match (k1, k2) {
                (OpKind::Join, OpKind::Join) => true,
                (OpKind::Join, OpKind::Oj) => true, // identity 11
                (OpKind::Oj, OpKind::Join) => false, // Example 2 pattern
                (OpKind::Oj, OpKind::Oj) => p2.is_strong_on_rels(&b.rels()), // identity 12
            })
        }
        Primitive::AssocLtr => {
            let (k1, _a, r, _p1) = split(node)?;
            let (k2, b, _c, p2) = split(r)?;
            Some(match (k1, k2) {
                (OpKind::Join, OpKind::Join) => true,
                (OpKind::Join, OpKind::Oj) => true, // identity 11, right-to-left
                (OpKind::Oj, OpKind::Join) => false, // Example 2 pattern
                (OpKind::Oj, OpKind::Oj) => p2.is_strong_on_rels(&b.rels()), // identity 12
            })
        }
        Primitive::Exchange => {
            // Both operators hang off the shared operand A: identity 13
            // for the outerjoin/outerjoin case, reversal-conjugated
            // identities 1/11 otherwise. Always preserving.
            let (_k2, l, _c, _p2) = split(node)?;
            let (_k1, ..) = split(l)?;
            Some(true)
        }
        Primitive::ExchangeMirror => {
            // Both operators hang off the shared operand C. For joins
            // this is identity 1 via reversal; any outerjoin involved
            // creates a forbidden pattern at C (null-supplied relation
            // on a join edge, or doubly null-supplied).
            let (k1, _a, r, _p1) = split(node)?;
            let (k2, ..) = split(r)?;
            Some(matches!((k1, k2), (OpKind::Join, OpKind::Join)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::apply_bt;
    use fro_algebra::{Database, Pred, Relation, Value};

    fn pq(a: &str, b: &str) -> Pred {
        Pred::eq_attr(&format!("{a}.k{a}"), &format!("{b}.k{b}"))
    }

    fn root(prim: Primitive) -> Bt {
        Bt { prim, path: vec![] }
    }

    #[test]
    fn join_join_reassoc_preserving() {
        let q = Query::rel("A")
            .join(Query::rel("B"), pq("A", "B"))
            .join(Query::rel("C"), pq("B", "C"));
        assert_eq!(
            is_result_preserving(&q, &root(Primitive::AssocRtl)),
            Some(true)
        );
        assert_eq!(is_result_preserving(&q, &root(Primitive::Swap)), Some(true));
    }

    #[test]
    fn identity_11_pattern_preserving() {
        let q = Query::rel("A")
            .join(Query::rel("B"), pq("A", "B"))
            .outerjoin(Query::rel("C"), pq("B", "C"));
        assert_eq!(
            is_result_preserving(&q, &root(Primitive::AssocRtl)),
            Some(true)
        );
    }

    #[test]
    fn example_2_pattern_not_preserving() {
        // (A → B) − C: reassociating to A → (B − C) is the forbidden
        // [X → Y − Z].
        let q = Query::rel("A")
            .outerjoin(Query::rel("B"), pq("A", "B"))
            .join(Query::rel("C"), pq("B", "C"));
        assert_eq!(
            is_result_preserving(&q, &root(Primitive::AssocRtl)),
            Some(false)
        );

        // Verify with the paper's Example 2 database that the rewrite
        // really changes the result.
        let mut db = Database::new();
        db.insert(Relation::from_ints("A", &["kA"], &[&[1]]));
        db.insert(Relation::from_ints("B", &["kB"], &[&[1]]));
        db.insert(Relation::from_ints("C", &["kC"], &[&[9]]));
        let t = apply_bt(&q, &root(Primitive::AssocRtl)).unwrap();
        let r1 = q.eval(&db).unwrap();
        let r2 = t.eval(&db).unwrap();
        assert!(!r1.set_eq(&r2));
    }

    #[test]
    fn identity_12_needs_strongness() {
        // Strong predicate: preserving.
        let strong = Query::rel("A")
            .outerjoin(Query::rel("B"), pq("A", "B"))
            .outerjoin(Query::rel("C"), pq("B", "C"));
        assert_eq!(
            is_result_preserving(&strong, &root(Primitive::AssocRtl)),
            Some(true)
        );

        // Non-strong predicate (Example 3's P_bc): not preserving.
        let pbc = Pred::eq_attr("B.kB", "C.kC").or(Pred::is_null("B.kB"));
        let weak = Query::rel("A")
            .outerjoin(Query::rel("B"), pq("A", "B"))
            .outerjoin(Query::rel("C"), pbc);
        assert_eq!(
            is_result_preserving(&weak, &root(Primitive::AssocRtl)),
            Some(false)
        );

        // And the rewrite really diverges on Example 3's database.
        let mut db = Database::new();
        db.insert(Relation::from_ints("A", &["kA"], &[&[10]]));
        db.insert(Relation::from_values("B", &["kB"], vec![vec![Value::Null]]));
        db.insert(Relation::from_ints("C", &["kC"], &[&[30]]));
        let t = apply_bt(&weak, &root(Primitive::AssocRtl)).unwrap();
        assert!(!weak.eval(&db).unwrap().set_eq(&t.eval(&db).unwrap()));
    }

    #[test]
    fn identity_13_exchange_preserving() {
        let q = Query::rel("A")
            .outerjoin(Query::rel("B"), pq("A", "B"))
            .outerjoin(Query::rel("C"), pq("A", "C"));
        assert_eq!(
            is_result_preserving(&q, &root(Primitive::Exchange)),
            Some(true)
        );
    }

    #[test]
    fn mirror_exchange_only_joins() {
        let joins = Query::rel("A").join(
            Query::rel("B").join(Query::rel("C"), pq("B", "C")),
            pq("A", "C"),
        );
        assert_eq!(
            is_result_preserving(&joins, &root(Primitive::ExchangeMirror)),
            Some(true)
        );
        let with_oj = Query::rel("A").outerjoin(
            Query::rel("B").join(Query::rel("C"), pq("B", "C")),
            pq("A", "C"),
        );
        assert_eq!(
            is_result_preserving(&with_oj, &root(Primitive::ExchangeMirror)),
            Some(false)
        );
    }

    #[test]
    fn ltr_classification_mirrors_rtl() {
        let q = Query::rel("A").outerjoin(
            Query::rel("B").join(Query::rel("C"), pq("B", "C")),
            pq("A", "B"),
        );
        // A → (B − C) ⇒ (A → B) − C: Example 2, not preserving.
        assert_eq!(
            is_result_preserving(&q, &root(Primitive::AssocLtr)),
            Some(false)
        );
        let q = Query::rel("A").join(
            Query::rel("B").outerjoin(Query::rel("C"), pq("B", "C")),
            pq("A", "B"),
        );
        assert_eq!(
            is_result_preserving(&q, &root(Primitive::AssocLtr)),
            Some(true)
        );
    }

    #[test]
    fn none_for_non_sites() {
        let q = Query::rel("A");
        assert_eq!(is_result_preserving(&q, &root(Primitive::AssocRtl)), None);
        let oj = Query::rel("A").outerjoin(Query::rel("B"), pq("A", "B"));
        // Swap on an outerjoin: not applicable → None.
        assert_eq!(is_result_preserving(&oj, &root(Primitive::Swap)), None);
    }

    #[test]
    fn deep_path_classification() {
        let inner = Query::rel("B")
            .outerjoin(Query::rel("C"), pq("B", "C"))
            .join(Query::rel("D"), pq("C", "D"));
        let q = Query::rel("A").join(inner, pq("A", "B"));
        let bt = Bt {
            prim: Primitive::AssocRtl,
            path: vec![Dir::R],
        };
        assert_eq!(is_result_preserving(&q, &bt), Some(false)); // X→Y−Z inside
    }
}
