//! Random query-graph generation.
//!
//! Conventions: node `i` is relation `R{i}` with columns `k` (join
//! key) and `v` (payload); every edge predicate compares the `k`
//! columns of its endpoints. With `strong = false`, outerjoin
//! predicates get an `OR preserved.k IS NULL` disjunct — exactly
//! Example 3's recipe for breaking identity 12.

use crate::dbgen::{random_database, DbSpec};
use fro_algebra::{Database, Pred};
use fro_graph::QueryGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_nice_graph`].
#[derive(Debug, Clone, Copy)]
pub struct GraphSpec {
    /// Join-core size (≥ 1).
    pub core: usize,
    /// Number of outerjoin (forest) nodes hung off the structure.
    pub oj_nodes: usize,
    /// Extra join edges beyond the spanning tree of the core (cycles).
    pub extra_core_edges: usize,
    /// Whether outerjoin predicates are strong (plain key equality) or
    /// weakened with an `IS NULL` disjunct on the preserved side.
    pub strong: bool,
}

fn name(i: usize) -> String {
    format!("R{i}")
}

fn key_eq(a: usize, b: usize) -> Pred {
    Pred::eq_attr(&format!("R{a}.k"), &format!("R{b}.k"))
}

fn weak_oj_pred(preserved: usize, null_supplied: usize) -> Pred {
    key_eq(preserved, null_supplied).or(Pred::is_null(&format!("R{preserved}.k")))
}

/// A random *nice* graph: a connected random join core of `spec.core`
/// nodes (random spanning tree plus `extra_core_edges` chords) with
/// `spec.oj_nodes` outerjoin nodes attached outward — each new
/// outerjoin node hangs off a uniformly random existing node (core or
/// forest), so chains, stars, and bushy OJ trees all occur.
#[must_use]
pub fn random_nice_graph(spec: &GraphSpec, seed: u64) -> QueryGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let core = spec.core.max(1);
    let total = core + spec.oj_nodes;
    let mut g = QueryGraph::new((0..total).map(name).collect());

    // Random spanning tree over the core.
    for i in 1..core {
        let parent = rng.gen_range(0..i);
        g.add_join_edge(parent, i, key_eq(parent, i))
            .expect("valid edge");
    }
    // Chords.
    let mut added = 0;
    let mut guard = 0;
    while added < spec.extra_core_edges && core >= 3 && guard < 1000 {
        guard += 1;
        let a = rng.gen_range(0..core);
        let b = rng.gen_range(0..core);
        if a != b && g.add_join_edge(a, b, key_eq(a, b)).is_ok() {
            // add_join_edge merges parallels, which does not add a new
            // chord; only count genuinely new edges.
            added += 1;
        }
    }
    // Outerjoin forest, outward.
    for i in core..total {
        let parent = rng.gen_range(0..i);
        let pred = if spec.strong {
            key_eq(parent, i)
        } else {
            weak_oj_pred(parent, i)
        };
        g.add_outerjoin_edge(parent, i, pred).expect("valid edge");
    }
    g
}

/// A random *arbitrary* connected join/outerjoin graph: a random
/// spanning tree where each edge is an outerjoin with probability
/// `oj_prob` (random orientation) — frequently not nice, which is the
/// point.
#[must_use]
pub fn random_connected_graph(n: usize, oj_prob: f64, seed: u64) -> QueryGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = n.max(1);
    let mut g = QueryGraph::new((0..n).map(name).collect());
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        if rng.gen_bool(oj_prob) {
            let (src, dst) = if rng.gen_bool(0.5) {
                (parent, i)
            } else {
                (i, parent)
            };
            g.add_outerjoin_edge(src, dst, key_eq(src, dst))
                .expect("valid edge");
        } else {
            g.add_join_edge(parent, i, key_eq(parent, i))
                .expect("valid edge");
        }
    }
    g
}

/// A random database whose relations match the graph's nodes (columns
/// `k`, `v`).
#[must_use]
pub fn db_for_graph(
    g: &QueryGraph,
    rows: usize,
    domain: i64,
    null_prob: f64,
    seed: u64,
) -> Database {
    let names: Vec<&str> = g.node_names().iter().map(String::as_str).collect();
    random_database(&DbSpec::kv(&names, rows, domain, null_prob), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_graph::check_nice;

    #[test]
    fn nice_generator_produces_nice_graphs() {
        for seed in 0..50 {
            let spec = GraphSpec {
                core: 1 + (seed as usize % 4),
                oj_nodes: seed as usize % 4,
                extra_core_edges: seed as usize % 2,
                strong: true,
            };
            let g = random_nice_graph(&spec, seed);
            let rep = check_nice(&g);
            assert!(rep.is_nice(), "seed {seed}: {:?}\n{g}", rep.violations);
        }
    }

    #[test]
    fn weak_spec_breaks_strongness_not_niceness() {
        let spec = GraphSpec {
            core: 2,
            oj_nodes: 2,
            extra_core_edges: 0,
            strong: false,
        };
        let g = random_nice_graph(&spec, 9);
        assert!(check_nice(&g).is_nice());
        let weak_edges = g
            .edges()
            .iter()
            .filter(|e| {
                e.kind() == fro_graph::EdgeKind::OuterJoin
                    && !e.pred().is_strong_on_rel(g.node_name(e.a()))
            })
            .count();
        assert!(weak_edges > 0);
    }

    #[test]
    fn arbitrary_generator_is_connected_and_sometimes_not_nice() {
        let mut non_nice = 0;
        for seed in 0..40 {
            let g = random_connected_graph(5, 0.6, seed);
            assert!(g.is_connected());
            if !check_nice(&g).is_nice() {
                non_nice += 1;
            }
        }
        assert!(non_nice > 0, "expected some non-nice graphs");
    }

    #[test]
    fn db_matches_graph_nodes() {
        let g = random_connected_graph(4, 0.5, 3);
        let db = db_for_graph(&g, 6, 4, 0.1, 3);
        for n in g.node_names() {
            assert!(db.contains(n));
        }
    }

    #[test]
    fn generators_deterministic() {
        let spec = GraphSpec {
            core: 3,
            oj_nodes: 2,
            extra_core_edges: 1,
            strong: true,
        };
        let a = random_nice_graph(&spec, 5);
        let b = random_nice_graph(&spec, 5);
        assert!(a.same_graph(&b));
    }
}
