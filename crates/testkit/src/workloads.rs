//! Concrete experiment setups from the paper.

use fro_algebra::{Attr, Pred, Query, Relation, Value};
use fro_core::Catalog;
use fro_exec::Storage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Example 1 setup: `R1` with one tuple, `R2` and `R3` with `n`
/// tuples each, keys indexed, every `R2` key matching an `R3` key and
/// exactly one `R2` key matching `R1`.
#[derive(Debug, Clone)]
pub struct Example1 {
    /// Indexed storage.
    pub storage: Storage,
    /// Exact statistics.
    pub catalog: Catalog,
    /// `R1 − (R2 → R3)` — the association that retrieves `2n + 1`.
    pub bad_query: Query,
    /// `(R1 − R2) → R3` — the association that retrieves `3`.
    pub good_query: Query,
}

/// Build Example 1 at scale `n`.
#[must_use]
pub fn example1(n: usize) -> Example1 {
    let mut storage = Storage::new();
    storage.insert("R1", Relation::from_ints("R1", &["k1"], &[&[0]]));
    let keys = |name: &str, attr: &str| {
        let rows: Vec<Vec<Value>> = (0..n as i64).map(|k| vec![Value::Int(k)]).collect();
        Relation::from_values(name, &[attr], rows)
    };
    storage.insert("R2", keys("R2", "k2"));
    storage.insert("R3", keys("R3", "k3"));
    storage.create_index("R1", &[Attr::parse("R1.k1")]);
    storage.create_index("R2", &[Attr::parse("R2.k2")]);
    storage.create_index("R3", &[Attr::parse("R3.k3")]);
    let catalog = Catalog::from_storage(&storage);

    let p12 = Pred::eq_attr("R1.k1", "R2.k2");
    let p23 = Pred::eq_attr("R2.k2", "R3.k3");
    let bad_query = Query::rel("R1").join(
        Query::rel("R2").outerjoin(Query::rel("R3"), p23.clone()),
        p12.clone(),
    );
    let good_query = Query::rel("R1")
        .join(Query::rel("R2"), p12)
        .outerjoin(Query::rel("R3"), p23);
    Example1 {
        storage,
        catalog,
        bad_query,
        good_query,
    }
}

/// The Example 1 *discussion* workload: the same freely-reorderable
/// expression `R1 − (R2 → R3)` where the join predicate is the
/// non-selective `R1.a > R2.b` and the outerjoin predicate is the
/// selective key equality `R2.c = R3.d` — here outerjoin-first wins.
#[derive(Debug, Clone)]
pub struct Crossover {
    /// Indexed storage.
    pub storage: Storage,
    /// Exact statistics.
    pub catalog: Catalog,
    /// `(R1 − R2) → R3` (join first).
    pub join_first: Query,
    /// `R1 − (R2 → R3)` (outerjoin first).
    pub oj_first: Query,
}

/// Build the crossover workload. `gt_selectivity` in `[0,1]` controls
/// the fraction of `(R1, R2)` pairs satisfying `R1.a > R2.b`.
#[must_use]
pub fn crossover(n1: usize, n2: usize, gt_selectivity: f64, seed: u64) -> Crossover {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = 1_000_000i64;
    // With `b` uniform on [0, domain), a tuple with `a = sel·domain`
    // satisfies `a > b` for exactly `sel` of the `R2` tuples. Give the
    // `R1` values a little jitter around that point so rows differ.
    let center = (gt_selectivity * domain as f64) as i64;
    let jitter = (domain / 200).max(1);
    let mut storage = Storage::new();
    let r1_rows: Vec<Vec<Value>> = (0..n1)
        .map(|_| {
            let a = (center + rng.gen_range(-jitter..=jitter)).clamp(0, domain);
            vec![Value::Int(a)]
        })
        .collect();
    storage.insert("R1", Relation::from_values("R1", &["a"], r1_rows));
    let r2_rows: Vec<Vec<Value>> = (0..n2)
        .map(|i| vec![Value::Int(rng.gen_range(0..domain)), Value::Int(i as i64)])
        .collect();
    storage.insert("R2", Relation::from_values("R2", &["b", "c"], r2_rows));
    // R3 keyed 1:1 with R2.c.
    let r3_rows: Vec<Vec<Value>> = (0..n2).map(|i| vec![Value::Int(i as i64)]).collect();
    storage.insert("R3", Relation::from_values("R3", &["d"], r3_rows));
    storage.create_index("R3", &[Attr::parse("R3.d")]);
    let catalog = Catalog::from_storage(&storage);

    let pj = Pred::cmp_attr("R1.a", fro_algebra::CmpOp::Gt, "R2.b");
    let po = Pred::eq_attr("R2.c", "R3.d");
    let join_first = Query::rel("R1")
        .join(Query::rel("R2"), pj.clone())
        .outerjoin(Query::rel("R3"), po.clone());
    let oj_first = Query::rel("R1").join(Query::rel("R2").outerjoin(Query::rel("R3"), po), pj);
    Crossover {
        storage,
        catalog,
        join_first,
        oj_first,
    }
}

/// A join chain `R0 − R1 − … − R{k-1}` with geometrically growing
/// cardinalities (so join order matters a lot) and indexed keys.
#[must_use]
pub fn chain(k: usize, base_rows: usize, seed: u64) -> (Storage, Catalog, Query) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut storage = Storage::new();
    for i in 0..k {
        let rows = base_rows * (1 << i.min(10));
        let name = format!("R{i}");
        let mut data: Vec<Vec<Value>> = Vec::with_capacity(rows);
        for _ in 0..rows {
            data.push(vec![
                Value::Int(rng.gen_range(0..base_rows as i64 * 2)),
                Value::Int(rng.gen_range(0..1000)),
            ]);
        }
        storage.insert(&name, Relation::from_values(&name, &["k", "v"], data));
        storage.create_index(&name, &[Attr::new(&name, "k")]);
    }
    let catalog = Catalog::from_storage(&storage);
    // Left-deep syntactic chain.
    let mut q = Query::rel("R0");
    for i in 1..k {
        q = q.join(
            Query::rel(format!("R{i}")),
            Pred::eq_attr(&format!("R{}.k", i - 1), &format!("R{i}.k")),
        );
    }
    (storage, catalog, q)
}

/// A deep left-outerjoin chain `L0 ⟕ L1 ⟕ … ⟕ L{k-1}`, each link on
/// `L{i-1}.k = L{i}.k` with keys drawn from a domain 1.5× the row
/// count, so roughly a third of every probe side falls out unmatched
/// and gets null-padded. Eight-plus relations make this the worst case
/// for operator-at-a-time execution — one widening intermediate per
/// join edge — and the best case for the pipelined executor, which
/// fuses the whole chain into a single pass (all build sides are base
/// tables). Keys are indexed on every relation.
#[must_use]
pub fn left_chain(k: usize, rows_per_rel: usize, seed: u64) -> (Storage, Catalog, Query) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut storage = Storage::new();
    let domain = ((rows_per_rel as i64) * 3 / 2).max(1);
    for i in 0..k {
        let name = format!("L{i}");
        let data: Vec<Vec<Value>> = (0..rows_per_rel)
            .map(|_| {
                vec![
                    Value::Int(rng.gen_range(0..domain)),
                    Value::Int(rng.gen_range(0..1000)),
                ]
            })
            .collect();
        storage.insert(&name, Relation::from_values(&name, &["k", "v"], data));
        storage.create_index(&name, &[Attr::new(&name, "k")]);
    }
    let catalog = Catalog::from_storage(&storage);
    let mut q = Query::rel("L0");
    for i in 1..k {
        q = q.outerjoin(
            Query::rel(format!("L{i}")),
            Pred::eq_attr(&format!("L{}.k", i - 1), &format!("L{i}.k")),
        );
    }
    (storage, catalog, q)
}

/// A synthetic §5 entity world at scale: `n_depts` departments, each
/// with `emps_per_dept` employees, each employee with 0–3 children
/// (some none, exercising the UnNest padding), managers and audits
/// assigned to a subset of departments.
#[must_use]
pub fn synthetic_entity_world(
    n_depts: usize,
    emps_per_dept: usize,
    seed: u64,
) -> fro_lang::EntityDb {
    use fro_lang::{EntityDb, FieldType, FieldValue};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = EntityDb::new();
    db.declare(
        "EMPLOYEE",
        vec![
            ("Name", FieldType::Scalar),
            ("D#", FieldType::Scalar),
            ("Rank", FieldType::Scalar),
            ("ChildName", FieldType::SetValued),
        ],
    );
    db.declare(
        "DEPARTMENT",
        vec![
            ("D#", FieldType::Scalar),
            ("Location", FieldType::Scalar),
            ("Manager", FieldType::EntityRef("EMPLOYEE".into())),
            ("Audit", FieldType::EntityRef("REPORT".into())),
        ],
    );
    db.declare(
        "REPORT",
        vec![
            ("Title", FieldType::Scalar),
            ("Findings", FieldType::Scalar),
        ],
    );

    let locations = ["Queretaro", "Zurich", "Boston", "Kyoto"];
    let mut dept_first_emp = Vec::with_capacity(n_depts);
    for d in 0..n_depts {
        let mut first = None;
        for e in 0..emps_per_dept {
            let n_children = rng.gen_range(0..4usize);
            let children: Vec<Value> = (0..n_children)
                .map(|c| Value::str(format!("child{d}_{e}_{c}")))
                .collect();
            let id = db.insert(
                "EMPLOYEE",
                vec![
                    (
                        "Name",
                        FieldValue::Scalar(Value::str(format!("emp{d}_{e}"))),
                    ),
                    ("D#", FieldValue::Scalar(Value::Int(d as i64))),
                    ("Rank", FieldValue::Scalar(Value::Int(rng.gen_range(1..20)))),
                    ("ChildName", FieldValue::Set(children)),
                ],
            );
            if first.is_none() {
                first = Some(id);
            }
        }
        dept_first_emp.push(first);
    }
    for d in 0..n_depts {
        let audit = if rng.gen_bool(0.5) {
            let rid = db.insert(
                "REPORT",
                vec![
                    ("Title", FieldValue::Scalar(Value::str(format!("audit{d}")))),
                    ("Findings", FieldValue::Scalar(Value::str("ok"))),
                ],
            );
            FieldValue::Ref(Some(rid))
        } else {
            FieldValue::Ref(None)
        };
        let manager = match dept_first_emp[d] {
            Some(id) if rng.gen_bool(0.8) => FieldValue::Ref(Some(id)),
            _ => FieldValue::Ref(None),
        };
        db.insert(
            "DEPARTMENT",
            vec![
                ("D#", FieldValue::Scalar(Value::Int(d as i64))),
                (
                    "Location",
                    FieldValue::Scalar(Value::str(locations[d % locations.len()])),
                ),
                ("Manager", manager),
                ("Audit", audit),
            ],
        );
    }
    db
}

/// One named, fully deterministic optimizer workload: storage with
/// exact statistics plus a query — the unit of the EXPLAIN regression
/// corpus (`corpus/plans/`).
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Stable case name (used as the corpus file stem).
    pub name: &'static str,
    /// Indexed storage the catalog's statistics describe.
    pub storage: Storage,
    /// Exact statistics.
    pub catalog: Catalog,
    /// The query to optimize.
    pub query: Query,
}

/// Every deterministic workload this crate defines, under fixed seeds
/// and sizes — the corpus the EXPLAIN regression gate locks down. Names
/// are stable; add new cases rather than renaming old ones, so corpus
/// diffs always mean plan changes.
#[must_use]
pub fn corpus_suite() -> Vec<CorpusCase> {
    let mut cases = Vec::new();
    let ex = example1(64);
    cases.push(CorpusCase {
        name: "example1_bad",
        storage: ex.storage.clone(),
        catalog: ex.catalog.clone(),
        query: ex.bad_query,
    });
    cases.push(CorpusCase {
        name: "example1_good",
        storage: ex.storage,
        catalog: ex.catalog,
        query: ex.good_query,
    });
    let w = crossover(24, 32, 0.5, 7);
    cases.push(CorpusCase {
        name: "crossover_join_first",
        storage: w.storage.clone(),
        catalog: w.catalog.clone(),
        query: w.join_first,
    });
    cases.push(CorpusCase {
        name: "crossover_oj_first",
        storage: w.storage,
        catalog: w.catalog,
        query: w.oj_first,
    });
    for (name, k, base, seed) in [("chain3", 3usize, 8usize, 11u64), ("chain5", 5, 4, 13)] {
        let (storage, catalog, query) = chain(k, base, seed);
        cases.push(CorpusCase {
            name,
            storage,
            catalog,
            query,
        });
    }
    let (storage, catalog, query) = left_chain(8, 6, 17);
    cases.push(CorpusCase {
        name: "left_chain8",
        storage,
        catalog,
        query,
    });
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_core::{optimize, Policy};
    use fro_exec::{execute, ExecStats};

    #[test]
    fn example1_shape_holds_in_miniature() {
        let ex = example1(100);
        // Both queries are equivalent.
        let db = ex.storage.to_database();
        let a = ex.bad_query.eval(&db).unwrap();
        let b = ex.good_query.eval(&db).unwrap();
        assert!(a.set_eq(&b));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn example1_optimizer_rescues_bad_association() {
        let ex = example1(200);
        let out = optimize(&ex.bad_query, &ex.catalog, Policy::Paper).unwrap();
        assert!(out.reordered);
        let mut st = ExecStats::new();
        execute(&out.plan, &ex.storage, &mut st).unwrap();
        assert_eq!(st.tuples_retrieved, 3, "paper's constant-cost claim");
    }

    #[test]
    fn crossover_queries_equivalent() {
        let w = crossover(20, 30, 0.5, 1);
        let db = w.storage.to_database();
        let a = w.join_first.eval(&db).unwrap();
        let b = w.oj_first.eval(&db).unwrap();
        assert!(a.set_eq(&b));
    }

    /// Reference evaluation of a §5 block: parse → translate → plan →
    /// eval.
    fn reference_run(src: &str, world: &fro_lang::EntityDb) -> fro_algebra::Relation {
        let t = fro_lang::translate(&fro_lang::parse(src).unwrap(), world).unwrap();
        fro_lang::plan_query(&t).unwrap().eval(&t.database).unwrap()
    }

    #[test]
    fn synthetic_world_runs_paper_queries() {
        let world = synthetic_entity_world(6, 4, 3);
        let out = reference_run(
            "Select All From EMPLOYEE*ChildName, DEPARTMENT \
             Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'",
            &world,
        );
        assert!(!out.is_empty());
        let out = reference_run("Select All From DEPARTMENT-->Manager-->Audit", &world);
        assert_eq!(out.len(), 6); // every department preserved
    }

    #[test]
    fn left_chain_workload_matches_reference() {
        let (storage, catalog, q) = left_chain(8, 5, 19);
        assert_eq!(q.rels().len(), 8);
        let out = optimize(&q, &catalog, Policy::Paper).unwrap();
        let mut st = ExecStats::new();
        let got = execute(&out.plan, &storage, &mut st).unwrap();
        let expect = q.eval(&storage.to_database()).unwrap();
        assert!(got.set_eq(&expect));
    }

    #[test]
    fn chain_workload_builds() {
        let (storage, catalog, q) = chain(4, 8, 2);
        assert_eq!(q.rels().len(), 4);
        let out = optimize(&q, &catalog, Policy::Paper).unwrap();
        assert!(out.reordered);
        let mut st = ExecStats::new();
        let got = execute(&out.plan, &storage, &mut st).unwrap();
        let expect = q.eval(&storage.to_database()).unwrap();
        assert!(got.set_eq(&expect));
    }
}
