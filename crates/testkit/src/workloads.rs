//! Concrete experiment setups from the paper.

use fro_algebra::{Attr, Pred, Query, Relation, Value};
use fro_core::Catalog;
use fro_exec::Storage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Example 1 setup: `R1` with one tuple, `R2` and `R3` with `n`
/// tuples each, keys indexed, every `R2` key matching an `R3` key and
/// exactly one `R2` key matching `R1`.
#[derive(Debug, Clone)]
pub struct Example1 {
    /// Indexed storage.
    pub storage: Storage,
    /// Exact statistics.
    pub catalog: Catalog,
    /// `R1 − (R2 → R3)` — the association that retrieves `2n + 1`.
    pub bad_query: Query,
    /// `(R1 − R2) → R3` — the association that retrieves `3`.
    pub good_query: Query,
}

/// Build Example 1 at scale `n`.
#[must_use]
pub fn example1(n: usize) -> Example1 {
    let mut storage = Storage::new();
    storage.insert("R1", Relation::from_ints("R1", &["k1"], &[&[0]]));
    let keys = |name: &str, attr: &str| {
        let rows: Vec<Vec<Value>> = (0..n as i64).map(|k| vec![Value::Int(k)]).collect();
        Relation::from_values(name, &[attr], rows)
    };
    storage.insert("R2", keys("R2", "k2"));
    storage.insert("R3", keys("R3", "k3"));
    storage.create_index("R1", &[Attr::parse("R1.k1")]);
    storage.create_index("R2", &[Attr::parse("R2.k2")]);
    storage.create_index("R3", &[Attr::parse("R3.k3")]);
    let catalog = Catalog::from_storage(&storage);

    let p12 = Pred::eq_attr("R1.k1", "R2.k2");
    let p23 = Pred::eq_attr("R2.k2", "R3.k3");
    let bad_query = Query::rel("R1").join(
        Query::rel("R2").outerjoin(Query::rel("R3"), p23.clone()),
        p12.clone(),
    );
    let good_query = Query::rel("R1")
        .join(Query::rel("R2"), p12)
        .outerjoin(Query::rel("R3"), p23);
    Example1 {
        storage,
        catalog,
        bad_query,
        good_query,
    }
}

/// The Example 1 *discussion* workload: the same freely-reorderable
/// expression `R1 − (R2 → R3)` where the join predicate is the
/// non-selective `R1.a > R2.b` and the outerjoin predicate is the
/// selective key equality `R2.c = R3.d` — here outerjoin-first wins.
#[derive(Debug, Clone)]
pub struct Crossover {
    /// Indexed storage.
    pub storage: Storage,
    /// Exact statistics.
    pub catalog: Catalog,
    /// `(R1 − R2) → R3` (join first).
    pub join_first: Query,
    /// `R1 − (R2 → R3)` (outerjoin first).
    pub oj_first: Query,
}

/// Build the crossover workload. `gt_selectivity` in `[0,1]` controls
/// the fraction of `(R1, R2)` pairs satisfying `R1.a > R2.b`.
#[must_use]
pub fn crossover(n1: usize, n2: usize, gt_selectivity: f64, seed: u64) -> Crossover {
    let mut rng = StdRng::seed_from_u64(seed);
    let domain = 1_000_000i64;
    // With `b` uniform on [0, domain), a tuple with `a = sel·domain`
    // satisfies `a > b` for exactly `sel` of the `R2` tuples. Give the
    // `R1` values a little jitter around that point so rows differ.
    let center = (gt_selectivity * domain as f64) as i64;
    let jitter = (domain / 200).max(1);
    let mut storage = Storage::new();
    let r1_rows: Vec<Vec<Value>> = (0..n1)
        .map(|_| {
            let a = (center + rng.gen_range(-jitter..=jitter)).clamp(0, domain);
            vec![Value::Int(a)]
        })
        .collect();
    storage.insert("R1", Relation::from_values("R1", &["a"], r1_rows));
    let r2_rows: Vec<Vec<Value>> = (0..n2)
        .map(|i| vec![Value::Int(rng.gen_range(0..domain)), Value::Int(i as i64)])
        .collect();
    storage.insert("R2", Relation::from_values("R2", &["b", "c"], r2_rows));
    // R3 keyed 1:1 with R2.c.
    let r3_rows: Vec<Vec<Value>> = (0..n2).map(|i| vec![Value::Int(i as i64)]).collect();
    storage.insert("R3", Relation::from_values("R3", &["d"], r3_rows));
    storage.create_index("R3", &[Attr::parse("R3.d")]);
    let catalog = Catalog::from_storage(&storage);

    let pj = Pred::cmp_attr("R1.a", fro_algebra::CmpOp::Gt, "R2.b");
    let po = Pred::eq_attr("R2.c", "R3.d");
    let join_first = Query::rel("R1")
        .join(Query::rel("R2"), pj.clone())
        .outerjoin(Query::rel("R3"), po.clone());
    let oj_first = Query::rel("R1").join(Query::rel("R2").outerjoin(Query::rel("R3"), po), pj);
    Crossover {
        storage,
        catalog,
        join_first,
        oj_first,
    }
}

/// A join chain `R0 − R1 − … − R{k-1}` with geometrically growing
/// cardinalities (so join order matters a lot) and indexed keys.
#[must_use]
pub fn chain(k: usize, base_rows: usize, seed: u64) -> (Storage, Catalog, Query) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut storage = Storage::new();
    for i in 0..k {
        let rows = base_rows * (1 << i.min(10));
        let name = format!("R{i}");
        let mut data: Vec<Vec<Value>> = Vec::with_capacity(rows);
        for _ in 0..rows {
            data.push(vec![
                Value::Int(rng.gen_range(0..base_rows as i64 * 2)),
                Value::Int(rng.gen_range(0..1000)),
            ]);
        }
        storage.insert(&name, Relation::from_values(&name, &["k", "v"], data));
        storage.create_index(&name, &[Attr::new(&name, "k")]);
    }
    let catalog = Catalog::from_storage(&storage);
    // Left-deep syntactic chain.
    let mut q = Query::rel("R0");
    for i in 1..k {
        q = q.join(
            Query::rel(format!("R{i}")),
            Pred::eq_attr(&format!("R{}.k", i - 1), &format!("R{i}.k")),
        );
    }
    (storage, catalog, q)
}

/// A deep left-outerjoin chain `L0 ⟕ L1 ⟕ … ⟕ L{k-1}`, each link on
/// `L{i-1}.k = L{i}.k` with keys drawn from a domain 1.5× the row
/// count, so roughly a third of every probe side falls out unmatched
/// and gets null-padded. Eight-plus relations make this the worst case
/// for operator-at-a-time execution — one widening intermediate per
/// join edge — and the best case for the pipelined executor, which
/// fuses the whole chain into a single pass (all build sides are base
/// tables). Keys are indexed on every relation.
#[must_use]
pub fn left_chain(k: usize, rows_per_rel: usize, seed: u64) -> (Storage, Catalog, Query) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut storage = Storage::new();
    let domain = ((rows_per_rel as i64) * 3 / 2).max(1);
    for i in 0..k {
        let name = format!("L{i}");
        let data: Vec<Vec<Value>> = (0..rows_per_rel)
            .map(|_| {
                vec![
                    Value::Int(rng.gen_range(0..domain)),
                    Value::Int(rng.gen_range(0..1000)),
                ]
            })
            .collect();
        storage.insert(&name, Relation::from_values(&name, &["k", "v"], data));
        storage.create_index(&name, &[Attr::new(&name, "k")]);
    }
    let catalog = Catalog::from_storage(&storage);
    let mut q = Query::rel("L0");
    for i in 1..k {
        q = q.outerjoin(
            Query::rel(format!("L{i}")),
            Pred::eq_attr(&format!("L{}.k", i - 1), &format!("L{i}.k")),
        );
    }
    (storage, catalog, q)
}

/// Parameters for the star/snowflake reducer workloads ([`star`]).
///
/// The generated fact table `F` carries `good_rows` rows whose
/// dimension keys all fall in the shared match domain `0..match_keys`,
/// plus one *junk block* per dimension: `junk_rows` rows whose key for
/// that dimension is a duplicated **hot** key (matching `hot_dup`
/// dimension rows) while every other dimension column holds a globally
/// unique cold value matching nothing. A plain join plan multiplies
/// each junk row through its one matching dimension before the next
/// join kills it — `junk_rows × hot_dup` doomed intermediates per
/// dimension — while a semijoin-reduced plan deletes the junk from `F`
/// before any join runs. Setting `junk_rows = 0` yields the uniform
/// control where reduction cannot pay.
#[derive(Debug, Clone, Copy)]
pub struct StarParams {
    /// Number of dimension tables `D1..Dk`.
    pub dims: usize,
    /// Size `u` of the shared match domain `0..u`.
    pub match_keys: usize,
    /// Fact rows whose every dimension key is in the match domain.
    pub good_rows: usize,
    /// Hot keys per dimension (duplicated `hot_dup` times each).
    pub hot_keys: usize,
    /// Copies of each hot key in its dimension.
    pub hot_dup: usize,
    /// Junk fact rows per dimension (each hits one hot key).
    pub junk_rows: usize,
    /// Extra never-matched keys on the last dimension — makes a
    /// down-pass (dimension-side) reduction worthwhile too.
    pub wide_keys: usize,
    /// Chain an outrigger `Oi` off every dimension (`Di.o = Oi.k`),
    /// turning the star into a snowflake. Every dimension row's `o`
    /// lands in the outrigger's domain, so the `Di ⋈ Oi` arm filters
    /// nothing — junk fact rows survive their own dimension's whole
    /// arm and die only at the *other* dimensions, which is exactly
    /// the blowup a fact-side semijoin reduction deletes up front.
    pub snowflake: bool,
}

fn hot_base(dim: usize) -> i64 {
    10_000 + dim as i64 * 100_000
}

/// Build a star (or snowflake) workload from [`StarParams`]: fact `F`
/// with columns `d1..dk, v`, dimensions `Di(k, o)` with indexed keys,
/// and — when `snowflake` — outriggers `Oi(k, x)`. Fully deterministic
/// (no randomness), so the EXPLAIN corpus can lock the plans down.
#[must_use]
pub fn star(p: &StarParams) -> (Storage, Catalog, Query) {
    assert!(
        p.junk_rows == 0 || (p.hot_keys > 0 && p.hot_dup > 0),
        "junk rows need a hot block to land on"
    );
    let u = p.match_keys as i64;
    let k = p.dims;
    let mut storage = Storage::new();

    let mut cold = 1_000_000i64;
    let mut fact: Vec<Vec<Value>> = Vec::new();
    for r in 0..p.good_rows {
        let mut row: Vec<Value> = (0..k).map(|i| Value::Int(((r + i) as i64) % u)).collect();
        row.push(Value::Int(r as i64));
        fact.push(row);
    }
    for i in 0..k {
        for t in 0..p.junk_rows {
            let mut row: Vec<Value> = Vec::with_capacity(k + 1);
            for j in 0..k {
                if i == j {
                    row.push(Value::Int(hot_base(i) + (t % p.hot_keys) as i64));
                } else {
                    cold += 1;
                    row.push(Value::Int(cold));
                }
            }
            row.push(Value::Int(-1));
            fact.push(row);
        }
    }
    let fact_cols: Vec<String> = (1..=k)
        .map(|i| format!("d{i}"))
        .chain(["v".to_owned()])
        .collect();
    let fact_cols: Vec<&str> = fact_cols.iter().map(String::as_str).collect();
    storage.insert("F", Relation::from_values("F", &fact_cols, fact));

    for i in 0..k {
        let name = format!("D{}", i + 1);
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for key in 0..u {
            rows.push(vec![Value::Int(key), Value::Int(key % u.max(1))]);
        }
        let mut stray = 0i64;
        for t in 0..p.hot_keys {
            for _ in 0..p.hot_dup {
                stray += 1;
                rows.push(vec![
                    Value::Int(hot_base(i) + t as i64),
                    Value::Int(stray % u.max(1)),
                ]);
            }
        }
        if i + 1 == k {
            for t in 0..p.wide_keys {
                stray += 1;
                rows.push(vec![
                    Value::Int(50_000_000 + t as i64),
                    Value::Int(stray % u.max(1)),
                ]);
            }
        }
        storage.insert(&name, Relation::from_values(&name, &["k", "o"], rows));
        storage.create_index(&name, &[Attr::new(&name, "k")]);
        if p.snowflake {
            let oname = format!("O{}", i + 1);
            let orows: Vec<Vec<Value>> = (0..u)
                .map(|key| vec![Value::Int(key), Value::Int(key * 7)])
                .collect();
            storage.insert(&oname, Relation::from_values(&oname, &["k", "x"], orows));
            storage.create_index(&oname, &[Attr::new(&oname, "k")]);
        }
    }
    let catalog = Catalog::from_storage(&storage);

    let mut q = Query::rel("F");
    for i in 1..=k {
        q = q.join(
            Query::rel(format!("D{i}")),
            Pred::eq_attr(&format!("F.d{i}"), &format!("D{i}.k")),
        );
        if p.snowflake {
            q = q.join(
                Query::rel(format!("O{i}")),
                Pred::eq_attr(&format!("D{i}.o"), &format!("O{i}.k")),
            );
        }
    }
    (storage, catalog, q)
}

/// A synthetic §5 entity world at scale: `n_depts` departments, each
/// with `emps_per_dept` employees, each employee with 0–3 children
/// (some none, exercising the UnNest padding), managers and audits
/// assigned to a subset of departments.
#[must_use]
pub fn synthetic_entity_world(
    n_depts: usize,
    emps_per_dept: usize,
    seed: u64,
) -> fro_lang::EntityDb {
    use fro_lang::{EntityDb, FieldType, FieldValue};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = EntityDb::new();
    db.declare(
        "EMPLOYEE",
        vec![
            ("Name", FieldType::Scalar),
            ("D#", FieldType::Scalar),
            ("Rank", FieldType::Scalar),
            ("ChildName", FieldType::SetValued),
        ],
    );
    db.declare(
        "DEPARTMENT",
        vec![
            ("D#", FieldType::Scalar),
            ("Location", FieldType::Scalar),
            ("Manager", FieldType::EntityRef("EMPLOYEE".into())),
            ("Audit", FieldType::EntityRef("REPORT".into())),
        ],
    );
    db.declare(
        "REPORT",
        vec![
            ("Title", FieldType::Scalar),
            ("Findings", FieldType::Scalar),
        ],
    );

    let locations = ["Queretaro", "Zurich", "Boston", "Kyoto"];
    let mut dept_first_emp = Vec::with_capacity(n_depts);
    for d in 0..n_depts {
        let mut first = None;
        for e in 0..emps_per_dept {
            let n_children = rng.gen_range(0..4usize);
            let children: Vec<Value> = (0..n_children)
                .map(|c| Value::str(format!("child{d}_{e}_{c}")))
                .collect();
            let id = db.insert(
                "EMPLOYEE",
                vec![
                    (
                        "Name",
                        FieldValue::Scalar(Value::str(format!("emp{d}_{e}"))),
                    ),
                    ("D#", FieldValue::Scalar(Value::Int(d as i64))),
                    ("Rank", FieldValue::Scalar(Value::Int(rng.gen_range(1..20)))),
                    ("ChildName", FieldValue::Set(children)),
                ],
            );
            if first.is_none() {
                first = Some(id);
            }
        }
        dept_first_emp.push(first);
    }
    for d in 0..n_depts {
        let audit = if rng.gen_bool(0.5) {
            let rid = db.insert(
                "REPORT",
                vec![
                    ("Title", FieldValue::Scalar(Value::str(format!("audit{d}")))),
                    ("Findings", FieldValue::Scalar(Value::str("ok"))),
                ],
            );
            FieldValue::Ref(Some(rid))
        } else {
            FieldValue::Ref(None)
        };
        let manager = match dept_first_emp[d] {
            Some(id) if rng.gen_bool(0.8) => FieldValue::Ref(Some(id)),
            _ => FieldValue::Ref(None),
        };
        db.insert(
            "DEPARTMENT",
            vec![
                ("D#", FieldValue::Scalar(Value::Int(d as i64))),
                (
                    "Location",
                    FieldValue::Scalar(Value::str(locations[d % locations.len()])),
                ),
                ("Manager", manager),
                ("Audit", audit),
            ],
        );
    }
    db
}

/// One named, fully deterministic optimizer workload: storage with
/// exact statistics plus a query — the unit of the EXPLAIN regression
/// corpus (`corpus/plans/`).
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Stable case name (used as the corpus file stem).
    pub name: &'static str,
    /// Indexed storage the catalog's statistics describe.
    pub storage: Storage,
    /// Exact statistics.
    pub catalog: Catalog,
    /// The query to optimize.
    pub query: Query,
}

/// Every deterministic workload this crate defines, under fixed seeds
/// and sizes — the corpus the EXPLAIN regression gate locks down. Names
/// are stable; add new cases rather than renaming old ones, so corpus
/// diffs always mean plan changes.
#[must_use]
pub fn corpus_suite() -> Vec<CorpusCase> {
    let mut cases = Vec::new();
    let ex = example1(64);
    cases.push(CorpusCase {
        name: "example1_bad",
        storage: ex.storage.clone(),
        catalog: ex.catalog.clone(),
        query: ex.bad_query,
    });
    cases.push(CorpusCase {
        name: "example1_good",
        storage: ex.storage,
        catalog: ex.catalog,
        query: ex.good_query,
    });
    let w = crossover(24, 32, 0.5, 7);
    cases.push(CorpusCase {
        name: "crossover_join_first",
        storage: w.storage.clone(),
        catalog: w.catalog.clone(),
        query: w.join_first,
    });
    cases.push(CorpusCase {
        name: "crossover_oj_first",
        storage: w.storage,
        catalog: w.catalog,
        query: w.oj_first,
    });
    for (name, k, base, seed) in [("chain3", 3usize, 8usize, 11u64), ("chain5", 5, 4, 13)] {
        let (storage, catalog, query) = chain(k, base, seed);
        cases.push(CorpusCase {
            name,
            storage,
            catalog,
            query,
        });
    }
    let (storage, catalog, query) = left_chain(8, 6, 17);
    cases.push(CorpusCase {
        name: "left_chain8",
        storage,
        catalog,
        query,
    });
    for (name, params) in [
        ("star5", star5_uniform()),
        ("star5_skew", star5_skew()),
        ("snowflake7", snowflake7_uniform()),
        ("snowflake7_skew", snowflake7_skew()),
    ] {
        let (storage, catalog, query) = star(&params);
        cases.push(CorpusCase {
            name,
            storage,
            catalog,
            query,
        });
    }
    cases
}

/// Corpus-sized uniform star: `F` plus four dimensions, every key in
/// the shared match domain — the control where reduction cannot pay.
#[must_use]
pub fn star5_uniform() -> StarParams {
    StarParams {
        dims: 4,
        match_keys: 16,
        good_rows: 48,
        hot_keys: 0,
        hot_dup: 0,
        junk_rows: 0,
        wide_keys: 0,
        snowflake: false,
    }
}

/// Corpus-sized selectivity-skewed star: per-dimension junk blocks
/// landing on duplicated hot keys, so plain plans multiply doomed rows
/// and the reducer's containment fractions fall well below one.
#[must_use]
pub fn star5_skew() -> StarParams {
    StarParams {
        dims: 4,
        match_keys: 16,
        good_rows: 48,
        hot_keys: 8,
        hot_dup: 8,
        junk_rows: 64,
        wide_keys: 48,
        snowflake: false,
    }
}

/// Corpus-sized uniform snowflake: three dimensions, each with an
/// outrigger, all keys matched.
#[must_use]
pub fn snowflake7_uniform() -> StarParams {
    StarParams {
        dims: 3,
        match_keys: 12,
        good_rows: 36,
        hot_keys: 0,
        hot_dup: 0,
        junk_rows: 0,
        wide_keys: 0,
        snowflake: true,
    }
}

/// Corpus-sized skewed snowflake: hot dimension rows additionally die
/// at their outrigger, giving the reducer wrap sites at two depths.
#[must_use]
pub fn snowflake7_skew() -> StarParams {
    StarParams {
        dims: 3,
        match_keys: 12,
        good_rows: 36,
        hot_keys: 6,
        hot_dup: 8,
        junk_rows: 48,
        wide_keys: 32,
        snowflake: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_core::{optimize, Policy};
    use fro_exec::{execute, ExecStats};

    #[test]
    fn example1_shape_holds_in_miniature() {
        let ex = example1(100);
        // Both queries are equivalent.
        let db = ex.storage.to_database();
        let a = ex.bad_query.eval(&db).unwrap();
        let b = ex.good_query.eval(&db).unwrap();
        assert!(a.set_eq(&b));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn example1_optimizer_rescues_bad_association() {
        let ex = example1(200);
        let out = optimize(&ex.bad_query, &ex.catalog, Policy::Paper).unwrap();
        assert!(out.reordered);
        let mut st = ExecStats::new();
        execute(&out.plan, &ex.storage, &mut st).unwrap();
        assert_eq!(st.tuples_retrieved, 3, "paper's constant-cost claim");
    }

    #[test]
    fn crossover_queries_equivalent() {
        let w = crossover(20, 30, 0.5, 1);
        let db = w.storage.to_database();
        let a = w.join_first.eval(&db).unwrap();
        let b = w.oj_first.eval(&db).unwrap();
        assert!(a.set_eq(&b));
    }

    /// Reference evaluation of a §5 block: parse → translate → plan →
    /// eval.
    fn reference_run(src: &str, world: &fro_lang::EntityDb) -> fro_algebra::Relation {
        let t = fro_lang::translate(&fro_lang::parse(src).unwrap(), world).unwrap();
        fro_lang::plan_query(&t).unwrap().eval(&t.database).unwrap()
    }

    #[test]
    fn synthetic_world_runs_paper_queries() {
        let world = synthetic_entity_world(6, 4, 3);
        let out = reference_run(
            "Select All From EMPLOYEE*ChildName, DEPARTMENT \
             Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'",
            &world,
        );
        assert!(!out.is_empty());
        let out = reference_run("Select All From DEPARTMENT-->Manager-->Audit", &world);
        assert_eq!(out.len(), 6); // every department preserved
    }

    #[test]
    fn left_chain_workload_matches_reference() {
        let (storage, catalog, q) = left_chain(8, 5, 19);
        assert_eq!(q.rels().len(), 8);
        let out = optimize(&q, &catalog, Policy::Paper).unwrap();
        let mut st = ExecStats::new();
        let got = execute(&out.plan, &storage, &mut st).unwrap();
        let expect = q.eval(&storage.to_database()).unwrap();
        assert!(got.set_eq(&expect));
    }

    #[test]
    fn star_workloads_match_reference_and_skew_drives_reduction() {
        use fro_core::{optimize_with_reduce, ReducePolicy};
        for params in [
            star5_uniform(),
            star5_skew(),
            snowflake7_uniform(),
            snowflake7_skew(),
        ] {
            let (storage, catalog, q) = star(&params);
            let out =
                optimize_with_reduce(&q, &catalog, Policy::Paper, ReducePolicy::Auto).unwrap();
            if params.junk_rows == 0 {
                assert!(
                    out.reduction.applied.is_empty(),
                    "uniform keys must decline: {}",
                    out.reduction
                );
            } else {
                assert!(
                    !out.reduction.applied.is_empty(),
                    "skewed keys must reduce: {}",
                    out.reduction
                );
            }
            let mut st = ExecStats::new();
            let got = execute(&out.plan, &storage, &mut st).unwrap();
            let expect = q.eval(&storage.to_database()).unwrap();
            assert!(got.set_eq(&expect), "reduced plan changed the result");
            if params.junk_rows > 0 {
                assert!(
                    st.rows_reduced > 0,
                    "reduction executed but removed nothing"
                );
            }
        }
    }

    #[test]
    fn chain_workload_builds() {
        let (storage, catalog, q) = chain(4, 8, 2);
        assert_eq!(q.rels().len(), 4);
        let out = optimize(&q, &catalog, Policy::Paper).unwrap();
        assert!(out.reordered);
        let mut st = ExecStats::new();
        let got = execute(&out.plan, &storage, &mut st).unwrap();
        let expect = q.eval(&storage.to_database()).unwrap();
        assert!(got.set_eq(&expect));
    }
}
