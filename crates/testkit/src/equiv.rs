//! Result-set comparison oracles.

use fro_algebra::Relation;

/// Assert two relations are set-equal (under the paper's padding
/// convention), with a diff-style failure message.
///
/// # Panics
/// When the relations differ.
pub fn assert_set_eq(got: &Relation, want: &Relation, context: &str) {
    if got.set_eq(want) {
        return;
    }
    let gs = got.row_set();
    let ws = want.row_set();
    let missing: Vec<String> = ws.difference(&gs).map(ToString::to_string).collect();
    let extra: Vec<String> = gs.difference(&ws).map(ToString::to_string).collect();
    panic!(
        "{context}: relations differ\n  missing rows: {}\n  extra rows: {}\n  got schema: {}\n  want schema: {}",
        missing.join(" "),
        extra.join(" "),
        got.schema(),
        want.schema()
    );
}

/// Whether all relations in the slice are pairwise set-equal.
#[must_use]
pub fn all_set_eq(rels: &[Relation]) -> bool {
    match rels.split_first() {
        None => true,
        Some((first, rest)) => rest.iter().all(|r| r.set_eq(first)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_relations_pass() {
        let a = Relation::from_ints("R", &["x"], &[&[1], &[2]]);
        let b = Relation::from_ints("R", &["x"], &[&[2], &[1]]);
        assert_set_eq(&a, &b, "same set");
        assert!(all_set_eq(&[a, b]));
    }

    #[test]
    #[should_panic(expected = "relations differ")]
    fn different_relations_panic_with_diff() {
        let a = Relation::from_ints("R", &["x"], &[&[1]]);
        let b = Relation::from_ints("R", &["x"], &[&[2]]);
        assert_set_eq(&a, &b, "diff");
    }

    #[test]
    fn all_set_eq_detects_outlier() {
        let a = Relation::from_ints("R", &["x"], &[&[1]]);
        let b = Relation::from_ints("R", &["x"], &[&[1]]);
        let c = Relation::from_ints("R", &["x"], &[&[3]]);
        assert!(all_set_eq(&[a.clone(), b.clone()]));
        assert!(!all_set_eq(&[a, b, c]));
        assert!(all_set_eq(&[]));
    }
}
