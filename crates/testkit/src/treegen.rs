//! A random implementing tree of a graph (uniform over split choices,
//! not over trees — fine for sampling the space).

use fro_algebra::{Pred, Query};
use fro_graph::{classify_cut, CutKind, NodeSet, QueryGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a random implementing tree, or `None` for disconnected
/// graphs.
#[must_use]
pub fn random_implementing_tree(g: &QueryGraph, seed: u64) -> Option<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let full = NodeSet::full(g.n_nodes());
    if !g.connected_in(full) {
        return None;
    }
    build(g, full, &mut rng)
}

fn build(g: &QueryGraph, s: NodeSet, rng: &mut StdRng) -> Option<Query> {
    if s.len() == 1 {
        return Some(Query::rel(g.node_name(s.lowest()?)));
    }
    // Collect valid splits, then pick one at random.
    let mut splits = Vec::new();
    for left in s.anchored_proper_subsets() {
        let right = s.minus(left);
        if !g.connected_in(left) || !g.connected_in(right) {
            continue;
        }
        match classify_cut(g, left, right) {
            CutKind::Joins(edges) => splits.push((left, right, edges, None)),
            CutKind::SingleOuterjoin { edge, forward } => {
                splits.push((left, right, vec![edge], Some(forward)));
            }
            _ => {}
        }
    }
    if splits.is_empty() {
        return None;
    }
    let (left, right, edges, oj_forward) = splits.remove(rng.gen_range(0..splits.len()));
    let pred = Pred::from_conjuncts(edges.iter().map(|&i| g.edges()[i].pred().clone()));
    let lt = build(g, left, rng)?;
    let rt = build(g, right, rng)?;
    Some(match oj_forward {
        None => {
            if rng.gen_bool(0.5) {
                lt.join(rt, pred)
            } else {
                rt.join(lt, pred)
            }
        }
        Some(true) => lt.outerjoin(rt, pred),
        Some(false) => rt.outerjoin(lt, pred),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphgen::{random_nice_graph, GraphSpec};
    use fro_trees::is_implementing_tree;

    #[test]
    fn random_trees_implement_their_graph() {
        for seed in 0..30 {
            let spec = GraphSpec {
                core: 1 + (seed as usize % 3),
                oj_nodes: seed as usize % 3,
                extra_core_edges: 0,
                strong: true,
            };
            let g = random_nice_graph(&spec, seed);
            let t = random_implementing_tree(&g, seed ^ 0xdead).expect("connected");
            assert!(is_implementing_tree(&t, &g), "seed {seed}: {}", t.shape());
        }
    }

    #[test]
    fn different_seeds_reach_different_trees() {
        let spec = GraphSpec {
            core: 5,
            oj_nodes: 0,
            extra_core_edges: 0,
            strong: true,
        };
        let g = random_nice_graph(&spec, 1);
        let shapes: std::collections::BTreeSet<String> = (0..40)
            .filter_map(|s| random_implementing_tree(&g, s))
            .map(|q| q.shape())
            .collect();
        assert!(shapes.len() > 1);
    }

    #[test]
    fn disconnected_yields_none() {
        let g = fro_graph::QueryGraph::new(vec!["A".into(), "B".into()]);
        assert!(random_implementing_tree(&g, 0).is_none());
    }
}
