//! Random database generation.

use fro_algebra::{Database, Relation, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a random database.
#[derive(Debug, Clone)]
pub struct DbSpec {
    /// `(relation name, attribute names)` pairs.
    pub relations: Vec<(String, Vec<String>)>,
    /// Rows per relation.
    pub rows: usize,
    /// Values are drawn uniformly from `0..domain` (small domains make
    /// joins match often, which is what equivalence tests need).
    pub domain: i64,
    /// Probability that any given value is null.
    pub null_prob: f64,
}

impl DbSpec {
    /// The `(k, v)` convention used throughout the test-suite: each
    /// named relation gets a join-key column `k` and a payload `v`.
    #[must_use]
    pub fn kv(names: &[&str], rows: usize, domain: i64, null_prob: f64) -> DbSpec {
        DbSpec {
            relations: names
                .iter()
                .map(|n| ((*n).to_owned(), vec!["k".to_owned(), "v".to_owned()]))
                .collect(),
            rows,
            domain,
            null_prob,
        }
    }
}

/// Generate a database per spec, deterministically from `seed`.
#[must_use]
pub fn random_database(spec: &DbSpec, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for (name, attrs) in &spec.relations {
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let mut rows = Vec::with_capacity(spec.rows);
        for _ in 0..spec.rows {
            let row: Vec<Value> = attrs
                .iter()
                .map(|_| {
                    if rng.gen_bool(spec.null_prob) {
                        Value::Null
                    } else {
                        Value::Int(rng.gen_range(0..spec.domain.max(1)))
                    }
                })
                .collect();
            rows.push(row);
        }
        db.insert_named(name.clone(), Relation::from_values(name, &attr_refs, rows));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let spec = DbSpec::kv(&["A", "B"], 10, 5, 0.2);
        let a = random_database(&spec, 42);
        let b = random_database(&spec, 42);
        assert_eq!(a, b);
        let c = random_database(&spec, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_shape() {
        let spec = DbSpec::kv(&["A"], 8, 3, 0.0);
        let db = random_database(&spec, 1);
        let r = db.get("A").unwrap();
        assert!(r.len() <= 8); // set semantics may deduplicate
        assert_eq!(r.schema().len(), 2);
        assert!(r.rows().iter().all(|t| !t.get(0).is_null()));
    }

    #[test]
    fn null_probability_one_gives_all_nulls() {
        let spec = DbSpec::kv(&["A"], 5, 3, 1.0);
        let db = random_database(&spec, 7);
        let r = db.get("A").unwrap();
        assert!(r.rows().iter().all(fro_algebra::Tuple::all_null));
        assert_eq!(r.len(), 1); // all-null rows collapse as a set
    }
}
