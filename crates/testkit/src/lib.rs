//! # fro-testkit — generators and oracles for tests and benchmarks
//!
//! Everything here is deterministic given a seed (`StdRng`), so
//! property-test failures and bench runs reproduce exactly:
//!
//! * [`dbgen`]: random databases over the `(k, v)` column convention
//!   with controllable domain size and null density,
//! * [`graphgen`]: random *nice* graphs (join core + outerjoin trees),
//!   random arbitrary connected join/outerjoin graphs, and databases
//!   matching a graph's relations,
//! * [`treegen`]: a random implementing tree of a graph,
//! * [`equiv`]: result-set comparison helpers with readable failures,
//! * [`workloads`]: the paper's concrete experiment setups (Example 1
//!   at size `n`, the selectivity-crossover workload, chain/star
//!   catalogs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbgen;
pub mod equiv;
pub mod graphgen;
pub mod treegen;
pub mod workloads;

pub use dbgen::{random_database, DbSpec};
pub use equiv::{all_set_eq, assert_set_eq};
pub use graphgen::{db_for_graph, random_connected_graph, random_nice_graph, GraphSpec};
pub use treegen::random_implementing_tree;
pub use workloads::{corpus_suite, CorpusCase};
