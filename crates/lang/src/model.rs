//! The nested / entity data model of §5.1.
//!
//! Tuples ("entities") have identity, repeating (set-valued) fields,
//! and entity-valued fields. This module stores entity instances and
//! materializes the *ground relations* the §5.2 translation needs:
//!
//! * a base relation per alias, with a surrogate `@id` column, one
//!   column per scalar field, and a surrogate `@Field` column per
//!   entity-valued field (null when the reference is null);
//! * a `ValueOfField`-style relation per unnested set field, with
//!   columns `(@owner, Field)` — one row per element of each entity's
//!   set. The paper's abstract `NestedIn(@r, @value)` predicate
//!   becomes the strong equality `alias.@id = derived.@owner`;
//!   `LinkedTo(@r, @value)` becomes `alias.@Field = derived.@id`.

use crate::error::LangError;
use fro_algebra::{Relation, Value};
use std::collections::BTreeMap;

/// Kinds of entity fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldType {
    /// A single atomic value.
    Scalar,
    /// A set of atomic values (UnNest's domain).
    SetValued,
    /// A reference to an entity of the named type (Link's domain).
    EntityRef(String),
}

/// An entity-type declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityType {
    /// Type name (also the default relation alias).
    pub name: String,
    /// Field declarations, in order.
    pub fields: Vec<(String, FieldType)>,
}

impl EntityType {
    /// Field type by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&FieldType> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }
}

/// A field value on an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// A scalar (possibly null).
    Scalar(Value),
    /// A set of values.
    Set(Vec<Value>),
    /// An entity reference (by per-type id), or null.
    Ref(Option<u64>),
}

/// One entity instance: per-type id plus field values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// Identity within its type (the paper's `@` object identifier).
    pub id: u64,
    /// Field assignments (missing fields read as null/empty).
    pub values: BTreeMap<String, FieldValue>,
}

/// A database of entity types and instances.
#[derive(Debug, Clone, Default)]
pub struct EntityDb {
    types: BTreeMap<String, EntityType>,
    instances: BTreeMap<String, Vec<Entity>>,
}

impl EntityDb {
    /// Empty database.
    #[must_use]
    pub fn new() -> EntityDb {
        EntityDb::default()
    }

    /// Declare an entity type.
    pub fn declare(&mut self, name: &str, fields: Vec<(&str, FieldType)>) -> &mut Self {
        self.types.insert(
            name.to_owned(),
            EntityType {
                name: name.to_owned(),
                fields: fields.into_iter().map(|(n, t)| (n.to_owned(), t)).collect(),
            },
        );
        self.instances.entry(name.to_owned()).or_default();
        self
    }

    /// Insert an instance; its id is its insertion position.
    ///
    /// # Panics
    /// If the type was not declared.
    pub fn insert(&mut self, type_name: &str, values: Vec<(&str, FieldValue)>) -> u64 {
        assert!(
            self.types.contains_key(type_name),
            "type `{type_name}` not declared"
        );
        let list = self.instances.get_mut(type_name).expect("declared");
        let id = list.len() as u64;
        list.push(Entity {
            id,
            values: values.into_iter().map(|(n, v)| (n.to_owned(), v)).collect(),
        });
        id
    }

    /// Look up a type.
    #[must_use]
    pub fn entity_type(&self, name: &str) -> Option<&EntityType> {
        self.types.get(name)
    }

    /// Instances of a type.
    #[must_use]
    pub fn instances(&self, name: &str) -> &[Entity] {
        self.instances.get(name).map_or(&[], Vec::as_slice)
    }

    /// Materialize the base ground relation of `type_name` under the
    /// qualifier `alias`: columns `@id`, each scalar field, and `@F`
    /// for each entity-valued field `F`. Set-valued fields have no
    /// base column (they live in the derived relation).
    ///
    /// # Errors
    /// [`LangError::UnknownType`] when undeclared.
    pub fn base_relation(&self, type_name: &str, alias: &str) -> Result<Relation, LangError> {
        let ty = self
            .types
            .get(type_name)
            .ok_or_else(|| LangError::UnknownType(type_name.to_owned()))?;
        let mut cols: Vec<String> = vec!["@id".to_owned()];
        for (fname, ftype) in &ty.fields {
            match ftype {
                FieldType::Scalar => cols.push(fname.clone()),
                FieldType::EntityRef(_) => cols.push(format!("@{fname}")),
                FieldType::SetValued => {}
            }
        }
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for e in self.instances(type_name) {
            let mut row = Vec::with_capacity(cols.len());
            row.push(Value::Int(e.id as i64));
            for (fname, ftype) in &ty.fields {
                match ftype {
                    FieldType::Scalar => row.push(match e.values.get(fname) {
                        Some(FieldValue::Scalar(v)) => v.clone(),
                        _ => Value::Null,
                    }),
                    FieldType::EntityRef(_) => row.push(match e.values.get(fname) {
                        Some(FieldValue::Ref(Some(id))) => Value::Int(*id as i64),
                        _ => Value::Null,
                    }),
                    FieldType::SetValued => {}
                }
            }
            rows.push(row);
        }
        Ok(Relation::from_values(alias, &col_refs, rows))
    }

    /// Materialize the unnest relation for set field `field` of
    /// `type_name`, under qualifier `alias`: columns `(@owner, field)`,
    /// one row per set element (empty sets contribute no rows — the
    /// outerjoin supplies their null).
    ///
    /// # Errors
    /// [`LangError`] for unknown types/fields or non-set fields.
    pub fn unnest_relation(
        &self,
        type_name: &str,
        field: &str,
        alias: &str,
    ) -> Result<Relation, LangError> {
        let ty = self
            .types
            .get(type_name)
            .ok_or_else(|| LangError::UnknownType(type_name.to_owned()))?;
        match ty.field(field) {
            Some(FieldType::SetValued) => {}
            Some(_) => {
                return Err(LangError::WrongFieldKind {
                    field: field.to_owned(),
                    expected: "set-valued",
                })
            }
            None => {
                return Err(LangError::UnknownField {
                    field: field.to_owned(),
                    item: type_name.to_owned(),
                })
            }
        }
        let mut rows = Vec::new();
        for e in self.instances(type_name) {
            if let Some(FieldValue::Set(items)) = e.values.get(field) {
                for v in items {
                    rows.push(vec![Value::Int(e.id as i64), v.clone()]);
                }
            }
        }
        Ok(Relation::from_values(alias, &["@owner", field], rows))
    }
}

/// A small world modeled directly on the paper's §5 examples:
/// `EMPLOYEE` (scalar `Name`, `D#`, `Rank`; set `ChildName`),
/// `DEPARTMENT` (scalar `D#`, `Location`; refs `Manager`, `Secretary`
/// to `EMPLOYEE`, `Audit` to `REPORT`), `REPORT` (scalar `Title`,
/// `Findings`).
#[must_use]
pub fn paper_world() -> EntityDb {
    let mut db = EntityDb::new();
    db.declare(
        "EMPLOYEE",
        vec![
            ("Name", FieldType::Scalar),
            ("D#", FieldType::Scalar),
            ("Rank", FieldType::Scalar),
            ("ChildName", FieldType::SetValued),
        ],
    );
    db.declare(
        "DEPARTMENT",
        vec![
            ("D#", FieldType::Scalar),
            ("Location", FieldType::Scalar),
            ("Manager", FieldType::EntityRef("EMPLOYEE".into())),
            ("Secretary", FieldType::EntityRef("EMPLOYEE".into())),
            ("Audit", FieldType::EntityRef("REPORT".into())),
        ],
    );
    db.declare(
        "REPORT",
        vec![
            ("Title", FieldType::Scalar),
            ("Findings", FieldType::Scalar),
        ],
    );

    let e0 = db.insert(
        "EMPLOYEE",
        vec![
            ("Name", FieldValue::Scalar(Value::str("Ana"))),
            ("D#", FieldValue::Scalar(Value::Int(1))),
            ("Rank", FieldValue::Scalar(Value::Int(12))),
            (
                "ChildName",
                FieldValue::Set(vec![Value::str("Luz"), Value::str("Rio")]),
            ),
        ],
    );
    let e1 = db.insert(
        "EMPLOYEE",
        vec![
            ("Name", FieldValue::Scalar(Value::str("Ben"))),
            ("D#", FieldValue::Scalar(Value::Int(1))),
            ("Rank", FieldValue::Scalar(Value::Int(3))),
            ("ChildName", FieldValue::Set(vec![])),
        ],
    );
    let e2 = db.insert(
        "EMPLOYEE",
        vec![
            ("Name", FieldValue::Scalar(Value::str("Cy"))),
            ("D#", FieldValue::Scalar(Value::Int(2))),
            ("Rank", FieldValue::Scalar(Value::Int(11))),
            ("ChildName", FieldValue::Set(vec![Value::str("Max")])),
        ],
    );
    let r0 = db.insert(
        "REPORT",
        vec![
            ("Title", FieldValue::Scalar(Value::str("FY89"))),
            ("Findings", FieldValue::Scalar(Value::str("clean"))),
        ],
    );
    db.insert(
        "DEPARTMENT",
        vec![
            ("D#", FieldValue::Scalar(Value::Int(1))),
            ("Location", FieldValue::Scalar(Value::str("Queretaro"))),
            ("Manager", FieldValue::Ref(Some(e0))),
            ("Secretary", FieldValue::Ref(Some(e1))),
            ("Audit", FieldValue::Ref(Some(r0))),
        ],
    );
    db.insert(
        "DEPARTMENT",
        vec![
            ("D#", FieldValue::Scalar(Value::Int(2))),
            ("Location", FieldValue::Scalar(Value::str("Zurich"))),
            ("Manager", FieldValue::Ref(Some(e2))),
            ("Secretary", FieldValue::Ref(None)),
            ("Audit", FieldValue::Ref(None)),
        ],
    );
    // A department with no employees at all (the motivating example).
    db.insert(
        "DEPARTMENT",
        vec![
            ("D#", FieldValue::Scalar(Value::Int(3))),
            ("Location", FieldValue::Scalar(Value::str("Queretaro"))),
            ("Manager", FieldValue::Ref(None)),
            ("Secretary", FieldValue::Ref(None)),
            ("Audit", FieldValue::Ref(None)),
        ],
    );
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Attr;

    #[test]
    fn base_relation_has_surrogates() {
        let db = paper_world();
        let dept = db.base_relation("DEPARTMENT", "DEPARTMENT").unwrap();
        assert_eq!(dept.len(), 3);
        let s = dept.schema();
        assert!(s.contains(&Attr::new("DEPARTMENT", "@id")));
        assert!(s.contains(&Attr::new("DEPARTMENT", "@Manager")));
        assert!(s.contains(&Attr::new("DEPARTMENT", "Location")));
        // Set-valued fields never materialize on the base.
        let emp = db.base_relation("EMPLOYEE", "E").unwrap();
        assert!(!emp.schema().contains(&Attr::new("E", "ChildName")));
    }

    #[test]
    fn null_refs_are_null_surrogates() {
        let db = paper_world();
        let dept = db.base_relation("DEPARTMENT", "D").unwrap();
        let mgr_col = dept.schema().index_of(&Attr::new("D", "@Manager")).unwrap();
        let nulls = dept
            .rows()
            .iter()
            .filter(|t| t.get(mgr_col).is_null())
            .count();
        assert_eq!(nulls, 1);
    }

    #[test]
    fn unnest_relation_one_row_per_element() {
        let db = paper_world();
        let kids = db.unnest_relation("EMPLOYEE", "ChildName", "E_Ch").unwrap();
        assert_eq!(kids.len(), 3); // Luz, Rio, Max; Ben's empty set absent
        assert!(kids.schema().contains(&Attr::new("E_Ch", "@owner")));
        assert!(kids.schema().contains(&Attr::new("E_Ch", "ChildName")));
    }

    #[test]
    fn unnest_rejects_wrong_kinds() {
        let db = paper_world();
        assert!(matches!(
            db.unnest_relation("EMPLOYEE", "Name", "x"),
            Err(LangError::WrongFieldKind { .. })
        ));
        assert!(matches!(
            db.unnest_relation("EMPLOYEE", "Nope", "x"),
            Err(LangError::UnknownField { .. })
        ));
        assert!(matches!(
            db.unnest_relation("GHOST", "f", "x"),
            Err(LangError::UnknownType(_))
        ));
    }

    #[test]
    fn entity_type_lookup() {
        let db = paper_world();
        let t = db.entity_type("DEPARTMENT").unwrap();
        assert!(matches!(t.field("Manager"), Some(FieldType::EntityRef(n)) if n == "EMPLOYEE"));
        assert!(t.field("Ghost").is_none());
        assert_eq!(db.instances("EMPLOYEE").len(), 3);
        assert!(db.instances("GHOST").is_empty());
    }
}
