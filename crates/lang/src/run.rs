//! End-to-end evaluation of §5 query blocks.
//!
//! Because every block is freely reorderable (§5.3, re-checked by the
//! translator), the evaluator may pick **any** implementing tree of the
//! block's graph — we take the first the enumerator finds, apply the
//! Where-List restrictions on top, and evaluate with the reference
//! algebra. The workspace tests additionally evaluate *every* tree and
//! assert the results coincide (Theorem 1, end to end).

use crate::error::LangError;
use crate::translate::TranslatedBlock;
use fro_algebra::{Pred, Query};
use fro_trees::some_implementing_tree;

/// Build the evaluable query (an arbitrary implementing tree plus the
/// block's restrictions) for a translated block.
///
/// This is the reference-evaluation building block: compose it with
/// [`parse`](crate::parse) + [`translate`](crate::translate) and
/// [`Query::eval`] for an oracle, or hand the result to the optimizer.
/// The old one-call `run`/`run_parsed` wrappers were removed — the
/// `fro::Session` front door (`Session::from_entity_db(..).query(..)`)
/// is the supported end-to-end path: it optimizes, caches and
/// executes instead of reference-evaluating.
///
/// # Errors
/// [`LangError::Disconnected`] if the graph admits no tree (prevented
/// earlier; defensive).
pub fn plan_query(t: &TranslatedBlock) -> Result<Query, LangError> {
    let tree = some_implementing_tree(&t.graph).ok_or(LangError::Disconnected)?;
    Ok(t.restrictions
        .iter()
        .fold(tree, |q, r: &Pred| q.restrict(r.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::paper_world;
    use crate::parser::parse;
    use crate::translate::translate;
    use fro_algebra::{Attr, Relation, Value};

    /// Reference evaluation: parse → translate → plan → eval, the same
    /// composition applications previously got from the removed
    /// `run()` wrapper.
    fn run(src: &str, edb: &crate::model::EntityDb) -> Result<Relation, LangError> {
        let t = translate(&parse(src)?, edb)?;
        let q = plan_query(&t)?;
        q.eval(&t.database)
            .map_err(|e| LangError::Eval(e.to_string()))
    }

    #[test]
    fn queretaro_query_preserves_childless_employees() {
        let out = run(
            "Select All From EMPLOYEE*ChildName, DEPARTMENT \
             Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'",
            &paper_world(),
        )
        .unwrap();
        // Dept 1 (Queretaro): Ana (2 children → 2 rows), Ben (no
        // children → 1 row with null ChildName). Dept 3 has no
        // employees and the employee–department join drops it.
        assert_eq!(out.len(), 3);
        let child_col = out
            .schema()
            .index_of(&Attr::new("EMPLOYEE_ChildName", "ChildName"))
            .expect("unnested column present");
        let nulls = out
            .rows()
            .iter()
            .filter(|t| t.get(child_col).is_null())
            .count();
        assert_eq!(nulls, 1);
        let names: Vec<&fro_algebra::Value> = out.rows().iter().map(|t| t.get(child_col)).collect();
        assert!(names.contains(&&Value::str("Luz")));
        assert!(names.contains(&&Value::str("Rio")));
    }

    #[test]
    fn zurich_query_pads_missing_audit() {
        let out = run(
            "Select All From DEPARTMENT-->Manager-->Audit \
             Where DEPARTMENT.Location = 'Zurich'",
            &paper_world(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        let title_col = out
            .schema()
            .index_of(&Attr::new("DEPARTMENT_Audit", "Title"))
            .unwrap();
        assert!(out.rows()[0].get(title_col).is_null());
        let mgr_name = out
            .schema()
            .index_of(&Attr::new("DEPARTMENT_Manager", "Name"))
            .unwrap();
        assert_eq!(out.rows()[0].get(mgr_name), &Value::str("Cy"));
    }

    #[test]
    fn prosecutor_query_joins_both_paths() {
        let out = run(
            "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit \
             Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' \
             and EMPLOYEE.Rank > 10",
            &paper_world(),
        )
        .unwrap();
        // Zurich dept 2; employee Cy (rank 11) with one child.
        assert_eq!(out.len(), 1);
        let child_col = out
            .schema()
            .index_of(&Attr::new("EMPLOYEE_ChildName", "ChildName"))
            .unwrap();
        assert_eq!(out.rows()[0].get(child_col), &Value::str("Max"));
    }

    #[test]
    fn departments_without_manager_padded_in_pure_link_query() {
        let out = run("Select All From DEPARTMENT-->Manager", &paper_world()).unwrap();
        assert_eq!(out.len(), 3); // all departments preserved
        let name_col = out
            .schema()
            .index_of(&Attr::new("DEPARTMENT_Manager", "Name"))
            .unwrap();
        let padded = out
            .rows()
            .iter()
            .filter(|t| t.get(name_col).is_null())
            .count();
        assert_eq!(padded, 1); // dept 3 has no manager
    }

    #[test]
    fn every_implementing_tree_gives_the_same_result() {
        // Theorem 1, end to end, on the prosecutor query.
        let block = parse(
            "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit \
             Where EMPLOYEE.D# = DEPARTMENT.D#",
        )
        .unwrap();
        let t = translate(&block, &paper_world()).unwrap();
        let trees = fro_trees::enumerate_trees(&t.graph, fro_trees::EnumLimit::default()).unwrap();
        assert!(trees.len() > 1, "want multiple associations");
        let results: Vec<Relation> = trees.iter().map(|q| q.eval(&t.database).unwrap()).collect();
        for r in &results[1..] {
            assert!(r.set_eq(&results[0]));
        }
    }

    #[test]
    fn run_surfaces_parse_errors() {
        assert!(matches!(
            run("From nothing", &paper_world()),
            Err(LangError::Parse(_))
        ));
    }
}
