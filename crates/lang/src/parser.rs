//! Recursive-descent parser for the §5 surface syntax.
//!
//! ```text
//! block  := SELECT ALL FROM item (',' item)* (WHERE cond (AND cond)*)? EOF
//! item   := IDENT (AS IDENT)? (('*' | '-->') IDENT)*
//! cond   := IDENT '.' IDENT cmp (IDENT '.' IDENT | literal)
//! ```

use crate::ast::{FromItem, PathOp, QueryBlock, Rhs, WhereCond};
use crate::error::LangError;
use crate::lexer::{lex, Token};
use fro_algebra::Value;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), LangError> {
        let got = self.bump();
        if &got == want {
            Ok(())
        } else {
            Err(LangError::Parse(format!("expected {want}, found {got}")))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(LangError::Parse(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    fn parse_from_item(&mut self) -> Result<FromItem, LangError> {
        let base = self.ident()?;
        let alias = if self.peek() == &Token::As {
            self.bump();
            self.ident()?
        } else {
            base.clone()
        };
        let mut ops = Vec::new();
        loop {
            match self.peek() {
                Token::Star => {
                    self.bump();
                    ops.push(PathOp::UnNest(self.ident()?));
                }
                Token::Arrow => {
                    self.bump();
                    ops.push(PathOp::Link(self.ident()?));
                }
                _ => break,
            }
        }
        Ok(FromItem { base, alias, ops })
    }

    fn qualref(&mut self) -> Result<(String, String), LangError> {
        let a = self.ident()?;
        self.expect(&Token::Dot)?;
        let b = self.ident()?;
        Ok((a, b))
    }

    fn cond(&mut self) -> Result<WhereCond, LangError> {
        let (alias, attr) = self.qualref()?;
        let op = match self.bump() {
            Token::Cmp(op) => op,
            other => {
                return Err(LangError::Parse(format!(
                    "expected comparison operator, found {other}"
                )))
            }
        };
        let rhs = match self.bump() {
            Token::Ident(a) => {
                self.expect(&Token::Dot)?;
                let b = self.ident()?;
                Rhs::Attr(a, b)
            }
            Token::Int(v) => Rhs::Lit(Value::Int(v)),
            Token::Str(s) => Rhs::Lit(Value::Str(s)),
            other => {
                return Err(LangError::Parse(format!(
                    "expected attribute or literal, found {other}"
                )))
            }
        };
        Ok(WhereCond {
            alias,
            attr,
            op,
            rhs,
        })
    }

    fn block(&mut self) -> Result<QueryBlock, LangError> {
        self.expect(&Token::Select)?;
        self.expect(&Token::All)?;
        self.expect(&Token::From)?;
        let mut from = vec![self.parse_from_item()?];
        while self.peek() == &Token::Comma {
            self.bump();
            from.push(self.parse_from_item()?);
        }
        let mut conds = Vec::new();
        if self.peek() == &Token::Where {
            self.bump();
            conds.push(self.cond()?);
            while self.peek() == &Token::And {
                self.bump();
                conds.push(self.cond()?);
            }
        }
        self.expect(&Token::Eof)?;
        Ok(QueryBlock { from, conds })
    }
}

/// Parse a query block.
///
/// # Errors
/// [`LangError::Lex`] / [`LangError::Parse`].
pub fn parse(src: &str) -> Result<QueryBlock, LangError> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.block()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::CmpOp;

    #[test]
    fn parses_paper_queretaro_query() {
        let q = parse(
            "Select All From EMPLOYEE*ChildName, DEPARTMENT \
             Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].ops, vec![PathOp::UnNest("ChildName".into())]);
        assert_eq!(q.conds.len(), 2);
        assert_eq!(q.conds[1].op, CmpOp::Eq);
        assert_eq!(q.conds[1].rhs, Rhs::Lit(Value::str("Queretaro")));
    }

    #[test]
    fn parses_paper_zurich_query() {
        let q = parse(
            "Select All From DEPARTMENT-->Manager-->Audit Where DEPARTMENT.Location = 'Zurich'",
        )
        .unwrap();
        assert_eq!(
            q.from[0].ops,
            vec![PathOp::Link("Manager".into()), PathOp::Link("Audit".into())]
        );
    }

    #[test]
    fn parses_paper_prosecutor_query() {
        let q = parse(
            "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit \
             Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' \
             and EMPLOYEE.Rank > 10",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.conds.len(), 3);
        assert_eq!(q.conds[2].op, CmpOp::Gt);
        assert_eq!(q.conds[2].rhs, Rhs::Lit(Value::Int(10)));
    }

    #[test]
    fn parses_alias() {
        let q = parse("Select All From EMPLOYEE AS E, EMPLOYEE AS M Where E.D# = M.D#").unwrap();
        assert_eq!(q.from[0].alias, "E");
        assert_eq!(q.from[1].alias, "M");
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(matches!(parse("From X"), Err(LangError::Parse(_))));
        assert!(matches!(parse("Select All X"), Err(LangError::Parse(_))));
        assert!(matches!(
            parse("Select All From E Where E.a ="),
            Err(LangError::Parse(_))
        ));
        assert!(matches!(
            parse("Select All From E Where E = 3"),
            Err(LangError::Parse(_))
        ));
        // Trailing garbage.
        assert!(matches!(
            parse("Select All From E extra"),
            Err(LangError::Parse(_))
        ));
    }

    #[test]
    fn no_where_clause_ok() {
        let q = parse("Select All From EMPLOYEE").unwrap();
        assert!(q.conds.is_empty());
    }
}
