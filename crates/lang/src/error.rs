//! Errors for the language front-end.

use std::fmt;

/// Anything that can go wrong between source text and a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset of the offending character.
        at: usize,
        /// Description.
        msg: String,
    },
    /// Parse error.
    Parse(String),
    /// The From-List names an entity type the database does not have.
    UnknownType(String),
    /// A path step names a field the accumulated relations don't have.
    UnknownField {
        /// The field name.
        field: String,
        /// The From-item base it was applied within.
        item: String,
    },
    /// A `*` step applied to a non-set field, or `-->` to a non-ref.
    WrongFieldKind {
        /// The field name.
        field: String,
        /// What the step required.
        expected: &'static str,
    },
    /// A path step's field name is ambiguous among accumulated
    /// relations.
    AmbiguousField(String),
    /// Two From-items introduce the same relation alias.
    DuplicateAlias(String),
    /// A Where-List predicate references an attribute from the right
    /// side of `*`/`-->` — forbidden (§5.1: "the position of the
    /// restriction predicate would be ambiguous").
    RestrictionOnDerived(String),
    /// A Where-List predicate references an unknown alias/attribute.
    UnknownAttr(String),
    /// The block's relations are not connected by join conditions.
    Disconnected,
    /// The block failed the Theorem 1 check — per §5.3 this is
    /// unreachable for well-formed blocks; surfaced rather than
    /// asserted so a bug cannot silently reorder a non-reorderable
    /// query.
    NotReorderable(String),
    /// An algebra-level failure during evaluation.
    Eval(String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { at, msg } => write!(f, "lex error at byte {at}: {msg}"),
            LangError::Parse(m) => write!(f, "parse error: {m}"),
            LangError::UnknownType(t) => write!(f, "unknown entity type `{t}`"),
            LangError::UnknownField { field, item } => {
                write!(f, "no relation in from-item `{item}` has field `{field}`")
            }
            LangError::WrongFieldKind { field, expected } => {
                write!(f, "field `{field}` is not {expected}")
            }
            LangError::AmbiguousField(fld) => {
                write!(f, "field `{fld}` is ambiguous in this from-item")
            }
            LangError::DuplicateAlias(a) => write!(f, "duplicate relation alias `{a}`"),
            LangError::RestrictionOnDerived(a) => write!(
                f,
                "attribute `{a}` comes from the right side of */--> and cannot appear in WHERE"
            ),
            LangError::UnknownAttr(a) => write!(f, "unknown attribute `{a}` in WHERE"),
            LangError::Disconnected => {
                write!(
                    f,
                    "query block relations are not connected by join conditions"
                )
            }
            LangError::NotReorderable(m) => write!(
                f,
                "internal: translated block is not freely reorderable ({m}) — this contradicts §5.3"
            ),
            LangError::Eval(m) => write!(f, "evaluation failed: {m}"),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        assert!(LangError::UnknownType("X".into()).to_string().contains('X'));
        assert!(LangError::Lex {
            at: 3,
            msg: "bad".into()
        }
        .to_string()
        .contains('3'));
        let e = LangError::UnknownField {
            field: "f".into(),
            item: "E".into(),
        };
        assert!(e.to_string().contains('f') && e.to_string().contains('E'));
        assert!(LangError::RestrictionOnDerived("E_f.x".into())
            .to_string()
            .contains("WHERE"));
    }
}
