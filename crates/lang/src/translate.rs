//! §5.2: expressing UnNest and Link with outerjoins.
//!
//! Each From-item step materializes a fresh derived relation and one
//! directed outerjoin edge toward it:
//!
//! * `A*F`  ⇒ relation `A_F(@owner, F)` and edge
//!   `A → A_F` labeled `NestedIn ≡ (A.@id = A_F.@owner)`;
//! * `A-->F` ⇒ relation `A_F` (a fresh copy of `F`'s target entity
//!   type) and edge `A → A_F` labeled
//!   `LinkedTo ≡ (A.@F = A_F.@id)`.
//!
//! Where-List equalities between base aliases become undirected join
//! edges; literal comparisons become restrictions (applied after the
//! block, per §4's "restrictions after all outerjoins" discipline —
//! they only reference base aliases, which are never null-supplied).
//!
//! The §5.3 observation is then checked, not assumed: the resulting
//! graph must be nice with strong predicates, i.e. *freely
//! reorderable*, so the evaluator may pick any implementing tree.

use crate::ast::{PathOp, QueryBlock, Rhs};
use crate::error::LangError;
use crate::model::{EntityDb, FieldType};
use fro_algebra::{Database, Interner, Pred, Scalar};
use fro_core::reorder::{analyze_graph, Analysis, Policy};
use fro_graph::QueryGraph;
use std::collections::BTreeMap;

/// The output of translating one query block.
#[derive(Debug, Clone)]
pub struct TranslatedBlock {
    /// The join/outerjoin query graph of the block.
    pub graph: QueryGraph,
    /// Ground relations (bases and derived), keyed by alias.
    pub database: Database,
    /// Post-block restrictions (literal comparisons and same-alias
    /// conditions from the Where-List).
    pub restrictions: Vec<Pred>,
    /// The Theorem 1 analysis (always freely reorderable per §5.3).
    pub analysis: Analysis,
    /// Aliases introduced as From-item bases (joinable in WHERE).
    pub base_aliases: Vec<String>,
    /// Aliases introduced by `*`/`-->` (not mentionable in WHERE).
    pub derived_aliases: Vec<String>,
    /// Name ↔ id resolution for the block's relations and attributes,
    /// built exactly once here, where the query enters the system.
    /// `RelId(i)` is graph node `i`, so downstream bitset work needs
    /// no further name lookups.
    pub interner: Interner,
}

/// A relation accumulated while walking one From-item: its alias and,
/// when it is an entity relation, its type (UnNest results carry no
/// further fields).
struct Accumulated {
    alias: String,
    entity_type: Option<String>,
}

/// Translate a parsed block against an entity database.
///
/// # Errors
/// Any [`LangError`] from name resolution, the §5.1 Where-List
/// restriction, or (defensively) a failed §5.3 check.
pub fn translate(block: &QueryBlock, edb: &EntityDb) -> Result<TranslatedBlock, LangError> {
    let mut database = Database::new();
    let mut aliases: Vec<String> = Vec::new();
    let mut base_aliases = Vec::new();
    let mut derived_aliases = Vec::new();
    // alias -> (attr names available), for WHERE validation.
    let mut base_attrs: BTreeMap<String, Vec<String>> = BTreeMap::new();
    // Edges gathered before graph construction.
    struct OjEdge {
        from: String,
        to: String,
        pred: Pred,
    }
    let mut oj_edges: Vec<OjEdge> = Vec::new();

    let claim_alias = |aliases: &mut Vec<String>, a: &str| -> Result<(), LangError> {
        if aliases.iter().any(|x| x == a) {
            return Err(LangError::DuplicateAlias(a.to_owned()));
        }
        aliases.push(a.to_owned());
        Ok(())
    };

    for item in &block.from {
        let ty = edb
            .entity_type(&item.base)
            .ok_or_else(|| LangError::UnknownType(item.base.clone()))?;
        claim_alias(&mut aliases, &item.alias)?;
        base_aliases.push(item.alias.clone());
        let rel = edb.base_relation(&ty.name, &item.alias)?;
        base_attrs.insert(
            item.alias.clone(),
            rel.schema()
                .attrs()
                .iter()
                .map(|a| a.name().to_owned())
                .collect(),
        );
        database.insert_named(item.alias.clone(), rel);

        let mut acc = vec![Accumulated {
            alias: item.alias.clone(),
            entity_type: Some(ty.name.clone()),
        }];

        for op in &item.ops {
            let (field, want_set) = match op {
                PathOp::UnNest(f) => (f, true),
                PathOp::Link(f) => (f, false),
            };
            // Resolve the owner among accumulated entity relations.
            let mut owners: Vec<(&Accumulated, &FieldType)> = Vec::new();
            for a in &acc {
                if let Some(tname) = &a.entity_type {
                    if let Some(ft) = edb.entity_type(tname).and_then(|t| t.field(field)) {
                        owners.push((a, ft));
                    }
                }
            }
            if owners.is_empty() {
                return Err(LangError::UnknownField {
                    field: field.clone(),
                    item: item.alias.clone(),
                });
            }
            if owners.len() > 1 {
                return Err(LangError::AmbiguousField(field.clone()));
            }
            let (owner, ftype) = owners.pop().expect("exactly one");
            let owner_alias = owner.alias.clone();
            let owner_type = owner.entity_type.clone().expect("entity owner");
            let derived_alias = format!("{owner_alias}_{field}");

            match (ftype, want_set) {
                (FieldType::SetValued, true) => {
                    claim_alias(&mut aliases, &derived_alias)?;
                    derived_aliases.push(derived_alias.clone());
                    let rel = edb.unnest_relation(&owner_type, field, &derived_alias)?;
                    database.insert_named(derived_alias.clone(), rel);
                    // NestedIn(@r, @value): owner.@id = derived.@owner.
                    oj_edges.push(OjEdge {
                        from: owner_alias,
                        to: derived_alias.clone(),
                        pred: Pred::eq_attr(
                            &format!("{}.@id", owner.alias),
                            &format!("{derived_alias}.@owner"),
                        ),
                    });
                    acc.push(Accumulated {
                        alias: derived_alias,
                        entity_type: None,
                    });
                }
                (FieldType::EntityRef(target), false) => {
                    claim_alias(&mut aliases, &derived_alias)?;
                    derived_aliases.push(derived_alias.clone());
                    let rel = edb.base_relation(target, &derived_alias)?;
                    database.insert_named(derived_alias.clone(), rel);
                    // LinkedTo(@r, @value): owner.@F = derived.@id.
                    oj_edges.push(OjEdge {
                        from: owner_alias.clone(),
                        to: derived_alias.clone(),
                        pred: Pred::eq_attr(
                            &format!("{owner_alias}.@{field}"),
                            &format!("{derived_alias}.@id"),
                        ),
                    });
                    acc.push(Accumulated {
                        alias: derived_alias,
                        entity_type: Some(target.clone()),
                    });
                }
                (FieldType::SetValued | FieldType::Scalar, false) => {
                    return Err(LangError::WrongFieldKind {
                        field: field.clone(),
                        expected: "entity-valued (only `-->` traverses references)",
                    })
                }
                (_, true) => {
                    return Err(LangError::WrongFieldKind {
                        field: field.clone(),
                        expected: "set-valued (only `*` unnests a set)",
                    })
                }
            }
        }
    }

    // Where-List.
    let mut join_conds: Vec<(String, String, Pred)> = Vec::new();
    let mut restrictions: Vec<Pred> = Vec::new();
    for cond in &block.conds {
        let pred_of = |alias: &str, attr: &str| -> Result<Scalar, LangError> {
            if derived_aliases.iter().any(|d| d == alias) {
                return Err(LangError::RestrictionOnDerived(format!("{alias}.{attr}")));
            }
            let attrs = base_attrs
                .get(alias)
                .ok_or_else(|| LangError::UnknownAttr(format!("{alias}.{attr}")))?;
            if !attrs.iter().any(|a| a == attr) {
                return Err(LangError::UnknownAttr(format!("{alias}.{attr}")));
            }
            Ok(Scalar::attr(&format!("{alias}.{attr}")))
        };
        let lhs = pred_of(&cond.alias, &cond.attr)?;
        match &cond.rhs {
            Rhs::Attr(alias2, attr2) => {
                let rhs = pred_of(alias2, attr2)?;
                let p = Pred::cmp(cond.op, lhs, rhs);
                if cond.alias == *alias2 {
                    restrictions.push(p);
                } else {
                    join_conds.push((cond.alias.clone(), alias2.clone(), p));
                }
            }
            Rhs::Lit(v) => {
                restrictions.push(Pred::cmp(cond.op, lhs, Scalar::Lit(v.clone())));
            }
        }
    }

    // Assemble the graph.
    let mut graph = QueryGraph::new(aliases.clone());
    for (a, b, p) in join_conds {
        let ia = graph.node_id(&a).expect("alias registered");
        let ib = graph.node_id(&b).expect("alias registered");
        graph
            .add_join_edge(ia, ib, p)
            .map_err(|e| LangError::Parse(e.to_string()))?;
    }
    for e in oj_edges {
        let ia = graph.node_id(&e.from).expect("alias registered");
        let ib = graph.node_id(&e.to).expect("alias registered");
        graph
            .add_outerjoin_edge(ia, ib, e.pred)
            .map_err(|e| LangError::Parse(e.to_string()))?;
    }

    if !graph.is_connected() {
        return Err(LangError::Disconnected);
    }

    // §5.3: every block is freely reorderable. Verified, not assumed.
    let analysis = analyze_graph(&graph, Policy::Paper);
    if !analysis.is_freely_reorderable() {
        return Err(LangError::NotReorderable(analysis.to_string()));
    }

    // Intern every alias in graph-node order so relation ids and node
    // ids coincide; attributes resolve to (rel, column) here and never
    // again.
    let mut interner = Interner::new();
    for alias in graph.node_names() {
        let rel = database.get(alias).expect("every node has a relation");
        interner.register_relation(alias, rel.schema());
    }

    Ok(TranslatedBlock {
        graph,
        database,
        restrictions,
        analysis,
        base_aliases,
        derived_aliases,
        interner,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::paper_world;
    use crate::parser::parse;
    use fro_graph::EdgeKind;

    fn tb(src: &str) -> TranslatedBlock {
        translate(&parse(src).unwrap(), &paper_world()).unwrap()
    }

    #[test]
    fn queretaro_block_builds_expected_graph() {
        let t = tb("Select All From EMPLOYEE*ChildName, DEPARTMENT \
             Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'");
        assert_eq!(t.graph.n_nodes(), 3); // EMPLOYEE, EMPLOYEE_ChildName, DEPARTMENT
        let oj: Vec<_> = t
            .graph
            .edges()
            .iter()
            .filter(|e| e.kind() == EdgeKind::OuterJoin)
            .collect();
        assert_eq!(oj.len(), 1);
        assert_eq!(t.graph.node_name(oj[0].b()), "EMPLOYEE_ChildName");
        assert_eq!(t.restrictions.len(), 1);
        assert!(t.analysis.is_freely_reorderable());
    }

    #[test]
    fn zurich_block_chains_links() {
        let t =
            tb("Select All From DEPARTMENT-->Manager-->Audit Where DEPARTMENT.Location = 'Zurich'");
        // DEPARTMENT, DEPARTMENT_Manager (EMPLOYEE copy),
        // DEPARTMENT_Audit (REPORT copy). Both links resolve to
        // DEPARTMENT fields, so both edges leave DEPARTMENT.
        assert_eq!(t.graph.n_nodes(), 3);
        let oj_out_of_dept = t
            .graph
            .edges()
            .iter()
            .filter(|e| e.kind() == EdgeKind::OuterJoin && t.graph.node_name(e.a()) == "DEPARTMENT")
            .count();
        assert_eq!(oj_out_of_dept, 2);
        assert_eq!(t.derived_aliases.len(), 2);
    }

    #[test]
    fn where_on_derived_rejected() {
        let e = translate(
            &parse(
                "Select All From EMPLOYEE*ChildName \
                 Where EMPLOYEE_ChildName.ChildName = 'Luz'",
            )
            .unwrap(),
            &paper_world(),
        );
        assert!(matches!(e, Err(LangError::RestrictionOnDerived(_))));
    }

    #[test]
    fn unknown_names_rejected() {
        let w = paper_world();
        assert!(matches!(
            translate(&parse("Select All From GHOST").unwrap(), &w),
            Err(LangError::UnknownType(_))
        ));
        assert!(matches!(
            translate(&parse("Select All From EMPLOYEE*Ghost").unwrap(), &w),
            Err(LangError::UnknownField { .. })
        ));
        assert!(matches!(
            translate(
                &parse("Select All From EMPLOYEE Where EMPLOYEE.Ghost = 1").unwrap(),
                &w
            ),
            Err(LangError::UnknownAttr(_))
        ));
        assert!(matches!(
            translate(
                &parse("Select All From EMPLOYEE Where GHOST.x = 1").unwrap(),
                &w
            ),
            Err(LangError::UnknownAttr(_))
        ));
    }

    #[test]
    fn wrong_step_kinds_rejected() {
        let w = paper_world();
        assert!(matches!(
            translate(&parse("Select All From EMPLOYEE-->ChildName").unwrap(), &w),
            Err(LangError::WrongFieldKind { .. })
        ));
        assert!(matches!(
            translate(&parse("Select All From DEPARTMENT*Manager").unwrap(), &w),
            Err(LangError::WrongFieldKind { .. })
        ));
    }

    #[test]
    fn duplicate_alias_rejected_and_alias_resolves() {
        let w = paper_world();
        assert!(matches!(
            translate(&parse("Select All From EMPLOYEE, EMPLOYEE").unwrap(), &w),
            Err(LangError::DuplicateAlias(_))
        ));
        let t = translate(
            &parse("Select All From EMPLOYEE AS E, EMPLOYEE AS M Where E.D# = M.D#").unwrap(),
            &w,
        )
        .unwrap();
        assert_eq!(t.graph.n_nodes(), 2);
    }

    #[test]
    fn disconnected_block_rejected() {
        let e = translate(
            &parse("Select All From EMPLOYEE, DEPARTMENT").unwrap(),
            &paper_world(),
        );
        assert!(matches!(e, Err(LangError::Disconnected)));
    }

    #[test]
    fn same_alias_condition_is_a_restriction() {
        let t =
            tb("Select All From EMPLOYEE Where EMPLOYEE.Rank > 10 and EMPLOYEE.D# = EMPLOYEE.Rank");
        assert_eq!(t.restrictions.len(), 2);
        assert_eq!(t.graph.edges().len(), 0);
    }

    #[test]
    fn interner_ids_align_with_graph_nodes() {
        let t = tb("Select All From EMPLOYEE*ChildName, DEPARTMENT \
             Where EMPLOYEE.D# = DEPARTMENT.D#");
        assert_eq!(t.interner.n_rels(), t.graph.n_nodes());
        for i in 0..t.graph.n_nodes() {
            let name = t.graph.node_name(i);
            let id = t.interner.rel_id(name).expect("alias interned");
            assert_eq!(id.index(), i, "RelId must equal graph node id");
            // Every attribute of the alias resolved to a column.
            let rel = t.database.get(name).unwrap();
            for a in rel.schema().attrs() {
                assert!(t.interner.attr_id(a).is_some(), "unresolved {a}");
            }
        }
    }

    #[test]
    fn all_blocks_freely_reorderable_surrogate_preds_strong() {
        let t = tb(
            "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit \
             Where EMPLOYEE.D# = DEPARTMENT.D#",
        );
        assert!(t.analysis.is_freely_reorderable());
        for e in t.graph.edges() {
            if e.kind() == EdgeKind::OuterJoin {
                assert!(e.pred().is_strong_on_rel(t.graph.node_name(e.a())));
                assert!(e.pred().is_strong_on_rel(t.graph.node_name(e.b())));
            }
        }
    }
}
