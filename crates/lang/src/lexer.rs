//! Lexer for the §5 surface syntax.

use crate::error::LangError;
use std::fmt;

/// Tokens of the mini-language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Keyword `SELECT` (case-insensitive).
    Select,
    /// Keyword `ALL`.
    All,
    /// Keyword `FROM`.
    From,
    /// Keyword `WHERE`.
    Where,
    /// Keyword `AND`.
    And,
    /// Keyword `AS`.
    As,
    /// Identifier (letters, digits, `_`, `#` after the first char).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Single-quoted string literal.
    Str(String),
    /// `*` (UnNest).
    Star,
    /// `-->` or `->` (Link via).
    Arrow,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// Comparison operator.
    Cmp(fro_algebra::CmpOp),
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Select => write!(f, "SELECT"),
            Token::All => write!(f, "ALL"),
            Token::From => write!(f, "FROM"),
            Token::Where => write!(f, "WHERE"),
            Token::And => write!(f, "AND"),
            Token::As => write!(f, "AS"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Star => write!(f, "*"),
            Token::Arrow => write!(f, "-->"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Cmp(op) => write!(f, "{op}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenize source text.
///
/// # Errors
/// [`LangError::Lex`] on unexpected characters or unterminated
/// strings.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    use fro_algebra::CmpOp;
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '=' => {
                out.push(Token::Cmp(CmpOp::Eq));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Cmp(CmpOp::Le));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Cmp(CmpOp::Ne));
                    i += 2;
                } else {
                    out.push(Token::Cmp(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Cmp(CmpOp::Ge));
                    i += 2;
                } else {
                    out.push(Token::Cmp(CmpOp::Gt));
                    i += 1;
                }
            }
            '-' => {
                // `-->` or `->`
                if bytes.get(i + 1) == Some(&b'-') && bytes.get(i + 2) == Some(&b'>') {
                    out.push(Token::Arrow);
                    i += 3;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Arrow);
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let (v, next) = lex_int(src, i + 1)?;
                    out.push(Token::Int(-v));
                    i = next;
                } else {
                    return Err(LangError::Lex {
                        at: i,
                        msg: "expected `-->`, `->`, or a negative number".into(),
                    });
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LangError::Lex {
                        at: i,
                        msg: "unterminated string literal".into(),
                    });
                }
                out.push(Token::Str(src[start..j].to_owned()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let (v, next) = lex_int(src, i)?;
                out.push(Token::Int(v));
                i = next;
            }
            c if c.is_alphabetic() || c == '_' || c == '@' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let ch = bytes[j] as char;
                    if ch.is_alphanumeric() || ch == '_' || ch == '#' || ch == '@' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..j];
                out.push(match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Token::Select,
                    "ALL" => Token::All,
                    "FROM" => Token::From,
                    "WHERE" => Token::Where,
                    "AND" => Token::And,
                    "AS" => Token::As,
                    _ => Token::Ident(word.to_owned()),
                });
                i = j;
            }
            other => {
                return Err(LangError::Lex {
                    at: i,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

fn lex_int(src: &str, start: usize) -> Result<(i64, usize), LangError> {
    let bytes = src.as_bytes();
    let mut j = start;
    while j < bytes.len() && bytes[j].is_ascii_digit() {
        j += 1;
    }
    src[start..j]
        .parse::<i64>()
        .map(|v| (v, j))
        .map_err(|e| LangError::Lex {
            at: start,
            msg: format!("bad integer: {e}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::CmpOp;

    #[test]
    fn lexes_the_paper_queretaro_query() {
        let toks = lex("Select All From EMPLOYEE*ChildName, DEPARTMENT \
             Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'")
        .unwrap();
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Ident("D#".into())));
        assert!(toks.contains(&Token::Str("Queretaro".into())));
        assert_eq!(toks.last(), Some(&Token::Eof));
    }

    #[test]
    fn lexes_arrows_both_spellings() {
        let t1 = lex("DEPARTMENT-->Manager").unwrap();
        let t2 = lex("DEPARTMENT->Manager").unwrap();
        assert!(t1.contains(&Token::Arrow));
        assert!(t2.contains(&Token::Arrow));
    }

    #[test]
    fn lexes_comparisons() {
        let toks = lex("a < b <= c > d >= e <> f = g").unwrap();
        let cmps: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Cmp(op) => Some(*op),
                _ => None,
            })
            .collect();
        assert_eq!(
            cmps,
            vec![
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
                CmpOp::Ne,
                CmpOp::Eq
            ]
        );
    }

    #[test]
    fn lexes_numbers_including_negative() {
        let toks = lex("Rank > 10 and X = -5").unwrap();
        assert!(toks.contains(&Token::Int(10)));
        assert!(toks.contains(&Token::Int(-5)));
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = lex("select ALL fRoM x").unwrap();
        assert_eq!(toks[0], Token::Select);
        assert_eq!(toks[1], Token::All);
        assert_eq!(toks[2], Token::From);
    }

    #[test]
    fn errors_are_located() {
        assert!(matches!(lex("a ? b"), Err(LangError::Lex { at: 2, .. })));
        assert!(matches!(lex("'open"), Err(LangError::Lex { .. })));
        assert!(matches!(lex("a - b"), Err(LangError::Lex { .. })));
    }
}
