//! # fro-lang — a language that generates freely-reorderable queries
//!
//! §5 of the paper reconstructs J. Bauer's unpublished SQL extension:
//! two operators in the From-List over entity data,
//!
//! * **UnNest / Flatten** `R*Field` — unnest a set-valued attribute;
//!   an entity with `n > 0` elements yields `n` tuples, an entity with
//!   an empty set yields one tuple with a null `Field`;
//! * **Link via** `R-->Field` — complete each tuple with the entity
//!   its entity-valued `Field` references, concatenating nulls when
//!   the reference is null.
//!
//! Both translate to **outerjoins** with the surrogate predicates
//! `NestedIn(@r, @value)` / `LinkedTo(@r, @value)` (§5.2).
//! Because every derived relation is a fresh tuple variable that is
//! null-supplied by exactly one outerjoin edge, can never acquire a
//! join edge (the Where-List may not mention it), and the surrogate
//! predicates are strong equalities, *every query block satisfies
//! Theorem 1* — the §5.3 observation, which this crate re-checks on
//! every translation and the test-suite asserts can never fail.
//!
//! Pipeline: [`parse()`], then [`translate()`] (ground relations + query
//! graph + restrictions, with the Theorem 1 analysis attached), then
//! [`run::plan_query()`] — pick any implementing tree, they are all
//! equivalent, and evaluate — or hand the graph to `fro-core`'s
//! optimizer (the `fro::Session` front door does the latter).

//! ## Example
//!
//! Parse and translate, then evaluate any implementing tree (the
//! `fro::Session` front door does this — plus optimization and plan
//! caching — in one call):
//!
//! ```
//! use fro_lang::{model::paper_world, parse, run::plan_query, translate};
//!
//! let block = parse(
//!     "Select All From DEPARTMENT-->Manager Where DEPARTMENT.Location = 'Zurich'",
//! )
//! .unwrap();
//! let t = translate(&block, &paper_world()).unwrap();
//! let out = plan_query(&t).unwrap().eval(&t.database).unwrap();
//! assert_eq!(out.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod run;
pub mod translate;

pub use ast::{FromItem, PathOp, QueryBlock, Rhs, WhereCond};
pub use error::LangError;
pub use model::{EntityDb, EntityType, FieldType, FieldValue};
pub use parser::parse;
pub use run::plan_query;
pub use translate::{translate, TranslatedBlock};
