//! Abstract syntax of a §5 query block.

use fro_algebra::{CmpOp, Value};
use std::fmt;

/// A path step in a From-item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathOp {
    /// `*Field` — UnNest a set-valued field.
    UnNest(String),
    /// `-->Field` — Link via an entity-valued field.
    Link(String),
}

impl fmt::Display for PathOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathOp::UnNest(n) => write!(f, "*{n}"),
            PathOp::Link(n) => write!(f, "-->{n}"),
        }
    }
}

/// One entry of the From-List: a base entity type (optionally
/// aliased), followed by UnNest/Link steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromItem {
    /// Base entity type name.
    pub base: String,
    /// Alias (defaults to the type name).
    pub alias: String,
    /// The path steps, in source order.
    pub ops: Vec<PathOp>,
}

impl fmt::Display for FromItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        if self.alias != self.base {
            write!(f, " AS {}", self.alias)?;
        }
        for op in &self.ops {
            write!(f, "{op}")?;
        }
        Ok(())
    }
}

/// The right side of a Where-List comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rhs {
    /// A qualified attribute `alias.attr`.
    Attr(String, String),
    /// A literal.
    Lit(Value),
}

/// One Where-List conjunct: `alias.attr op rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhereCond {
    /// Qualifier of the left attribute.
    pub alias: String,
    /// Left attribute name.
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Rhs,
}

impl fmt::Display for WhereCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} {} ", self.alias, self.attr, self.op)?;
        match &self.rhs {
            Rhs::Attr(a, b) => write!(f, "{a}.{b}"),
            Rhs::Lit(v) => write!(f, "{v}"),
        }
    }
}

/// A parsed `SELECT ALL FROM … WHERE …` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryBlock {
    /// The From-List.
    pub from: Vec<FromItem>,
    /// The Where-List conjuncts.
    pub conds: Vec<WhereCond>,
}

impl fmt::Display for QueryBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ALL FROM ")?;
        for (i, item) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.conds.is_empty() {
            write!(f, " WHERE ")?;
            for (i, c) in self.conds.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_visually() {
        let block = QueryBlock {
            from: vec![
                FromItem {
                    base: "EMPLOYEE".into(),
                    alias: "EMPLOYEE".into(),
                    ops: vec![PathOp::UnNest("ChildName".into())],
                },
                FromItem {
                    base: "DEPARTMENT".into(),
                    alias: "D".into(),
                    ops: vec![PathOp::Link("Manager".into())],
                },
            ],
            conds: vec![WhereCond {
                alias: "EMPLOYEE".into(),
                attr: "D#".into(),
                op: CmpOp::Eq,
                rhs: Rhs::Attr("D".into(), "D#".into()),
            }],
        };
        let s = block.to_string();
        assert!(s.contains("EMPLOYEE*ChildName"));
        assert!(s.contains("DEPARTMENT AS D-->Manager"));
        assert!(s.contains("EMPLOYEE.D# = D.D#"));
    }
}
