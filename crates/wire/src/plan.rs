//! The [`PhysPlan`] codec: ids-only encode against an [`Interner`],
//! strict structural decode back to the same tree.

use crate::codec::{Reader, Writer};
use crate::error::WireError;
use fro_algebra::{Attr, CmpOp, Interner, Pred, Scalar, Truth, Value};
use fro_exec::{JoinKind, PhysPlan, ReducePass};

/// The plan-blob format version this build writes (and the newest it
/// reads).
pub const PLAN_FORMAT_VERSION: u8 = 1;

/// The oldest plan-blob version this build still decodes. Kept one
/// behind [`PLAN_FORMAT_VERSION`] once the format moves, so rolling
/// upgrades can read plans written by the previous release instead of
/// re-planning everything; today the format has a single version.
pub const PLAN_MIN_SUPPORTED_VERSION: u8 = 1;

/// Encode a plan as a self-contained versioned blob. Relations and
/// attributes are written as their dense interned ids — no names reach
/// the wire.
///
/// # Errors
/// [`WireError::UnknownRelation`] / [`WireError::UnknownAttr`] when the
/// plan references a name the interner has not seen (derived
/// attributes such as `agg.count` make a plan unserializable), and
/// [`WireError::InvalidNode`] when the plan violates a structural rule
/// the decoder would reject (so the encoder never emits undecodable
/// bytes).
pub fn encode_plan(plan: &PhysPlan, it: &Interner) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    w.put_u8(PLAN_FORMAT_VERSION);
    enc_plan(&mut w, plan, it)?;
    Ok(w.into_bytes())
}

/// Decode a plan blob produced by [`encode_plan`], resolving ids back
/// to names through `it`. Strict: unknown tags, out-of-range ids,
/// arity violations, over-deep nesting, and trailing bytes are all
/// typed errors — hostile input can never panic the decoder or yield
/// a structurally invalid plan.
///
/// # Errors
/// Any [`WireError`] decode variant.
pub fn decode_plan(bytes: &[u8], it: &Interner) -> Result<PhysPlan, WireError> {
    let mut r = Reader::new(bytes);
    let version = r.take_u8()?;
    if !(PLAN_MIN_SUPPORTED_VERSION..=PLAN_FORMAT_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion {
            what: "plan",
            found: version,
            min_supported: PLAN_MIN_SUPPORTED_VERSION,
            supported: PLAN_FORMAT_VERSION,
        });
    }
    let plan = dec_plan(&mut r, it)?;
    r.finish()?;
    Ok(plan)
}

// ---------------------------------------------------------------- encode

fn enc_rel(w: &mut Writer, name: &str, it: &Interner) -> Result<(), WireError> {
    let id = it.rel_id(name).ok_or_else(|| WireError::UnknownRelation {
        name: name.to_owned(),
    })?;
    w.put_u64(id.index() as u64);
    Ok(())
}

fn enc_attr(w: &mut Writer, attr: &Attr, it: &Interner) -> Result<(), WireError> {
    let id = it.attr_id(attr).ok_or_else(|| WireError::UnknownAttr {
        attr: attr.to_string(),
    })?;
    w.put_u64(id.index() as u64);
    Ok(())
}

fn enc_attrs(w: &mut Writer, attrs: &[Attr], it: &Interner) -> Result<(), WireError> {
    w.put_u64(attrs.len() as u64);
    for a in attrs {
        enc_attr(w, a, it)?;
    }
    Ok(())
}

pub(crate) fn enc_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Int(i) => {
            w.put_u8(1);
            w.put_i64(*i);
        }
        Value::Str(s) => {
            w.put_u8(2);
            w.put_str(s);
        }
        Value::Bool(b) => {
            w.put_u8(3);
            w.put_u8(u8::from(*b));
        }
    }
}

fn truth_tag(t: Truth) -> u8 {
    match t {
        Truth::False => 0,
        Truth::Unknown => 1,
        Truth::True => 2,
    }
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn kind_tag(k: JoinKind) -> u8 {
    match k {
        JoinKind::Inner => 0,
        JoinKind::LeftOuter => 1,
        JoinKind::FullOuter => 2,
        JoinKind::Semi => 3,
        JoinKind::Anti => 4,
    }
}

fn enc_scalar(w: &mut Writer, s: &Scalar, it: &Interner) -> Result<(), WireError> {
    match s {
        Scalar::Attr(a) => {
            w.put_u8(0);
            enc_attr(w, a, it)
        }
        Scalar::Lit(v) => {
            w.put_u8(1);
            enc_value(w, v);
            Ok(())
        }
    }
}

fn enc_pred(w: &mut Writer, p: &Pred, it: &Interner) -> Result<(), WireError> {
    match p {
        Pred::Cmp { op, lhs, rhs } => {
            w.put_u8(0);
            w.put_u8(cmp_tag(*op));
            enc_scalar(w, lhs, it)?;
            enc_scalar(w, rhs, it)
        }
        Pred::IsNull(s) => {
            w.put_u8(1);
            enc_scalar(w, s, it)
        }
        Pred::And(a, b) => {
            w.put_u8(2);
            enc_pred(w, a, it)?;
            enc_pred(w, b, it)
        }
        Pred::Or(a, b) => {
            w.put_u8(3);
            enc_pred(w, a, it)?;
            enc_pred(w, b, it)
        }
        Pred::Not(q) => {
            w.put_u8(4);
            enc_pred(w, q, it)
        }
        Pred::Const(t) => {
            w.put_u8(5);
            w.put_u8(truth_tag(*t));
            Ok(())
        }
    }
}

fn check_keys(node: &'static str, a: &[Attr], b: &[Attr]) -> Result<(), WireError> {
    if a.len() != b.len() {
        return Err(WireError::InvalidNode {
            node,
            reason: "key lists differ in arity",
        });
    }
    if a.is_empty() {
        return Err(WireError::InvalidNode {
            node,
            reason: "empty key lists",
        });
    }
    Ok(())
}

fn enc_plan(w: &mut Writer, plan: &PhysPlan, it: &Interner) -> Result<(), WireError> {
    match plan {
        PhysPlan::Scan { rel } => {
            w.put_u8(0);
            enc_rel(w, rel, it)
        }
        PhysPlan::Filter { input, pred } => {
            w.put_u8(1);
            enc_plan(w, input, it)?;
            enc_pred(w, pred, it)
        }
        PhysPlan::Project { input, attrs } => {
            w.put_u8(2);
            enc_plan(w, input, it)?;
            enc_attrs(w, attrs, it)
        }
        PhysPlan::HashJoin {
            kind,
            probe,
            build,
            probe_keys,
            build_keys,
            residual,
        } => {
            check_keys("HashJoin", probe_keys, build_keys)?;
            w.put_u8(3);
            w.put_u8(kind_tag(*kind));
            enc_plan(w, probe, it)?;
            enc_plan(w, build, it)?;
            enc_attrs(w, probe_keys, it)?;
            enc_attrs(w, build_keys, it)?;
            enc_pred(w, residual, it)
        }
        PhysPlan::IndexJoin {
            kind,
            outer,
            inner,
            outer_keys,
            inner_keys,
            residual,
        } => {
            check_keys("IndexJoin", outer_keys, inner_keys)?;
            if *kind == JoinKind::FullOuter {
                return Err(WireError::InvalidNode {
                    node: "IndexJoin",
                    reason: "full-outer index join is not executable",
                });
            }
            w.put_u8(4);
            w.put_u8(kind_tag(*kind));
            enc_plan(w, outer, it)?;
            enc_rel(w, inner, it)?;
            enc_attrs(w, outer_keys, it)?;
            enc_attrs(w, inner_keys, it)?;
            enc_pred(w, residual, it)
        }
        PhysPlan::MergeJoin {
            kind,
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            check_keys("MergeJoin", left_keys, right_keys)?;
            w.put_u8(5);
            w.put_u8(kind_tag(*kind));
            enc_plan(w, left, it)?;
            enc_plan(w, right, it)?;
            enc_attrs(w, left_keys, it)?;
            enc_attrs(w, right_keys, it)?;
            enc_pred(w, residual, it)
        }
        PhysPlan::NlJoin {
            kind,
            left,
            right,
            pred,
        } => {
            w.put_u8(6);
            w.put_u8(kind_tag(*kind));
            enc_plan(w, left, it)?;
            enc_plan(w, right, it)?;
            enc_pred(w, pred, it)
        }
        PhysPlan::GroupCount {
            input,
            group_attrs,
            counted,
        } => {
            w.put_u8(7);
            enc_plan(w, input, it)?;
            enc_attrs(w, group_attrs, it)?;
            match counted {
                None => w.put_u8(0),
                Some(a) => {
                    w.put_u8(1);
                    enc_attr(w, a, it)?;
                }
            }
            Ok(())
        }
        PhysPlan::Goj {
            left,
            right,
            pred,
            subset,
        } => {
            w.put_u8(8);
            enc_plan(w, left, it)?;
            enc_plan(w, right, it)?;
            enc_pred(w, pred, it)?;
            enc_attrs(w, subset, it)
        }
        PhysPlan::SemiReduce {
            input,
            source,
            input_keys,
            source_keys,
            pass,
        } => {
            check_keys("SemiReduce", input_keys, source_keys)?;
            w.put_u8(9);
            w.put_u8(match pass {
                ReducePass::Up => 0,
                ReducePass::Down => 1,
            });
            enc_plan(w, input, it)?;
            enc_plan(w, source, it)?;
            enc_attrs(w, input_keys, it)?;
            enc_attrs(w, source_keys, it)
        }
    }
}

// ---------------------------------------------------------------- decode

fn dec_rel(r: &mut Reader<'_>, it: &Interner) -> Result<String, WireError> {
    let id = r.take_u64()?;
    let name = usize::try_from(id)
        .ok()
        .and_then(|i| it.try_rel_name(fro_algebra::RelId::from_index(i)))
        .ok_or(WireError::BadRelId {
            id,
            n_rels: it.n_rels(),
        })?;
    Ok(name.to_owned())
}

fn dec_attr(r: &mut Reader<'_>, it: &Interner) -> Result<Attr, WireError> {
    let id = r.take_u64()?;
    let attr = usize::try_from(id)
        .ok()
        .and_then(|i| it.try_attr(fro_algebra::AttrId::from_index(i)))
        .ok_or(WireError::BadAttrId {
            id,
            n_attrs: it.n_attrs(),
        })?;
    Ok(attr.clone())
}

fn dec_attrs(r: &mut Reader<'_>, it: &Interner) -> Result<Vec<Attr>, WireError> {
    let n = r.take_count(1)?;
    let mut attrs = Vec::with_capacity(n);
    for _ in 0..n {
        attrs.push(dec_attr(r, it)?);
    }
    Ok(attrs)
}

pub(crate) fn dec_value(r: &mut Reader<'_>) -> Result<Value, WireError> {
    let at = r.pos();
    let tag = r.take_u8()?;
    match tag {
        0 => Ok(Value::Null),
        1 => Ok(Value::Int(r.take_i64()?)),
        2 => Ok(Value::Str(r.take_str()?.to_owned())),
        3 => {
            let at = r.pos();
            match r.take_u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                b => Err(WireError::UnknownTag {
                    what: "bool",
                    tag: u64::from(b),
                    at,
                }),
            }
        }
        t => Err(WireError::UnknownTag {
            what: "value",
            tag: u64::from(t),
            at,
        }),
    }
}

fn dec_truth(r: &mut Reader<'_>) -> Result<Truth, WireError> {
    let at = r.pos();
    match r.take_u8()? {
        0 => Ok(Truth::False),
        1 => Ok(Truth::Unknown),
        2 => Ok(Truth::True),
        t => Err(WireError::UnknownTag {
            what: "truth",
            tag: u64::from(t),
            at,
        }),
    }
}

fn dec_cmp(r: &mut Reader<'_>) -> Result<CmpOp, WireError> {
    let at = r.pos();
    match r.take_u8()? {
        0 => Ok(CmpOp::Eq),
        1 => Ok(CmpOp::Ne),
        2 => Ok(CmpOp::Lt),
        3 => Ok(CmpOp::Le),
        4 => Ok(CmpOp::Gt),
        5 => Ok(CmpOp::Ge),
        t => Err(WireError::UnknownTag {
            what: "cmpop",
            tag: u64::from(t),
            at,
        }),
    }
}

fn dec_kind(r: &mut Reader<'_>) -> Result<JoinKind, WireError> {
    let at = r.pos();
    match r.take_u8()? {
        0 => Ok(JoinKind::Inner),
        1 => Ok(JoinKind::LeftOuter),
        2 => Ok(JoinKind::FullOuter),
        3 => Ok(JoinKind::Semi),
        4 => Ok(JoinKind::Anti),
        t => Err(WireError::UnknownTag {
            what: "join kind",
            tag: u64::from(t),
            at,
        }),
    }
}

fn dec_scalar(r: &mut Reader<'_>, it: &Interner) -> Result<Scalar, WireError> {
    let at = r.pos();
    match r.take_u8()? {
        0 => Ok(Scalar::Attr(dec_attr(r, it)?)),
        1 => Ok(Scalar::Lit(dec_value(r)?)),
        t => Err(WireError::UnknownTag {
            what: "scalar",
            tag: u64::from(t),
            at,
        }),
    }
}

fn dec_cmp_pred(r: &mut Reader<'_>, it: &Interner) -> Result<Pred, WireError> {
    let op = dec_cmp(r)?;
    let lhs = dec_scalar(r, it)?;
    let rhs = dec_scalar(r, it)?;
    Ok(Pred::Cmp { op, lhs, rhs })
}

fn dec_pred_pair(r: &mut Reader<'_>, it: &Interner) -> Result<(Box<Pred>, Box<Pred>), WireError> {
    Ok((Box::new(dec_pred(r, it)?), Box::new(dec_pred(r, it)?)))
}

// Small per-arm helpers for the same debug-build stack-frame reason as
// the plan arms above.
fn dec_pred(r: &mut Reader<'_>, it: &Interner) -> Result<Pred, WireError> {
    r.enter()?;
    let at = r.pos();
    let out = match r.take_u8()? {
        0 => dec_cmp_pred(r, it),
        1 => dec_scalar(r, it).map(Pred::IsNull),
        2 => dec_pred_pair(r, it).map(|(a, b)| Pred::And(a, b)),
        3 => dec_pred_pair(r, it).map(|(a, b)| Pred::Or(a, b)),
        4 => dec_pred(r, it).map(|p| Pred::Not(Box::new(p))),
        5 => dec_truth(r).map(Pred::Const),
        t => Err(WireError::UnknownTag {
            what: "pred",
            tag: u64::from(t),
            at,
        }),
    };
    r.leave();
    out
}

// Each recursive arm lives in its own function so a decoding level
// costs one small dispatch frame plus one arm frame — in debug builds a
// single function holding every arm's temporaries needs tens of KiB of
// stack per level, which would let a nesting bomb overflow a default
// thread stack *before* reaching the depth cap.

fn dec_filter(r: &mut Reader<'_>, it: &Interner) -> Result<PhysPlan, WireError> {
    Ok(PhysPlan::Filter {
        input: Box::new(dec_plan(r, it)?),
        pred: dec_pred(r, it)?,
    })
}

fn dec_project(r: &mut Reader<'_>, it: &Interner) -> Result<PhysPlan, WireError> {
    Ok(PhysPlan::Project {
        input: Box::new(dec_plan(r, it)?),
        attrs: dec_attrs(r, it)?,
    })
}

fn dec_hash_join(r: &mut Reader<'_>, it: &Interner) -> Result<PhysPlan, WireError> {
    let kind = dec_kind(r)?;
    let probe = Box::new(dec_plan(r, it)?);
    let build = Box::new(dec_plan(r, it)?);
    let probe_keys = dec_attrs(r, it)?;
    let build_keys = dec_attrs(r, it)?;
    let residual = dec_pred(r, it)?;
    check_keys("HashJoin", &probe_keys, &build_keys)?;
    Ok(PhysPlan::HashJoin {
        kind,
        probe,
        build,
        probe_keys,
        build_keys,
        residual,
    })
}

fn dec_index_join(r: &mut Reader<'_>, it: &Interner) -> Result<PhysPlan, WireError> {
    let kind = dec_kind(r)?;
    if kind == JoinKind::FullOuter {
        return Err(WireError::InvalidNode {
            node: "IndexJoin",
            reason: "full-outer index join is not executable",
        });
    }
    let outer = Box::new(dec_plan(r, it)?);
    let inner = dec_rel(r, it)?;
    let outer_keys = dec_attrs(r, it)?;
    let inner_keys = dec_attrs(r, it)?;
    let residual = dec_pred(r, it)?;
    check_keys("IndexJoin", &outer_keys, &inner_keys)?;
    Ok(PhysPlan::IndexJoin {
        kind,
        outer,
        inner,
        outer_keys,
        inner_keys,
        residual,
    })
}

fn dec_merge_join(r: &mut Reader<'_>, it: &Interner) -> Result<PhysPlan, WireError> {
    let kind = dec_kind(r)?;
    let left = Box::new(dec_plan(r, it)?);
    let right = Box::new(dec_plan(r, it)?);
    let left_keys = dec_attrs(r, it)?;
    let right_keys = dec_attrs(r, it)?;
    let residual = dec_pred(r, it)?;
    check_keys("MergeJoin", &left_keys, &right_keys)?;
    Ok(PhysPlan::MergeJoin {
        kind,
        left,
        right,
        left_keys,
        right_keys,
        residual,
    })
}

fn dec_nl_join(r: &mut Reader<'_>, it: &Interner) -> Result<PhysPlan, WireError> {
    Ok(PhysPlan::NlJoin {
        kind: dec_kind(r)?,
        left: Box::new(dec_plan(r, it)?),
        right: Box::new(dec_plan(r, it)?),
        pred: dec_pred(r, it)?,
    })
}

fn dec_group_count(r: &mut Reader<'_>, it: &Interner) -> Result<PhysPlan, WireError> {
    let input = Box::new(dec_plan(r, it)?);
    let group_attrs = dec_attrs(r, it)?;
    let at = r.pos();
    let counted = match r.take_u8()? {
        0 => None,
        1 => Some(dec_attr(r, it)?),
        t => {
            return Err(WireError::UnknownTag {
                what: "option",
                tag: u64::from(t),
                at,
            })
        }
    };
    Ok(PhysPlan::GroupCount {
        input,
        group_attrs,
        counted,
    })
}

fn dec_semi_reduce(r: &mut Reader<'_>, it: &Interner) -> Result<PhysPlan, WireError> {
    let at = r.pos();
    let pass = match r.take_u8()? {
        0 => ReducePass::Up,
        1 => ReducePass::Down,
        t => {
            return Err(WireError::UnknownTag {
                what: "reduce pass",
                tag: u64::from(t),
                at,
            })
        }
    };
    let input = Box::new(dec_plan(r, it)?);
    let source = Box::new(dec_plan(r, it)?);
    let input_keys = dec_attrs(r, it)?;
    let source_keys = dec_attrs(r, it)?;
    check_keys("SemiReduce", &input_keys, &source_keys)?;
    Ok(PhysPlan::SemiReduce {
        input,
        source,
        input_keys,
        source_keys,
        pass,
    })
}

fn dec_goj(r: &mut Reader<'_>, it: &Interner) -> Result<PhysPlan, WireError> {
    Ok(PhysPlan::Goj {
        left: Box::new(dec_plan(r, it)?),
        right: Box::new(dec_plan(r, it)?),
        pred: dec_pred(r, it)?,
        subset: dec_attrs(r, it)?,
    })
}

pub(crate) fn dec_plan(r: &mut Reader<'_>, it: &Interner) -> Result<PhysPlan, WireError> {
    r.enter()?;
    let at = r.pos();
    let out = match r.take_u8()? {
        0 => dec_rel(r, it).map(|rel| PhysPlan::Scan { rel }),
        1 => dec_filter(r, it),
        2 => dec_project(r, it),
        3 => dec_hash_join(r, it),
        4 => dec_index_join(r, it),
        5 => dec_merge_join(r, it),
        6 => dec_nl_join(r, it),
        7 => dec_group_count(r, it),
        8 => dec_goj(r, it),
        9 => dec_semi_reduce(r, it),
        t => Err(WireError::UnknownTag {
            what: "plan",
            tag: u64::from(t),
            at,
        }),
    };
    r.leave();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Schema;

    fn test_interner() -> Interner {
        let mut it = Interner::new();
        it.register_relation("R", &Schema::of_relation("R", &["k", "v"]));
        it.register_relation("S", &Schema::of_relation("S", &["k"]));
        it
    }

    fn roundtrip(plan: &PhysPlan, it: &Interner) {
        let bytes = encode_plan(plan, it).expect("encodes");
        let back = decode_plan(&bytes, it).expect("decodes");
        assert_eq!(&back, plan);
        let again = encode_plan(&back, it).expect("re-encodes");
        assert_eq!(again, bytes, "re-encode is bytewise identical");
    }

    #[test]
    fn every_node_kind_roundtrips() {
        let it = test_interner();
        let pred = Pred::eq_attr("R.k", "S.k")
            .and(Pred::cmp_lit("R.v", CmpOp::Gt, 3))
            .or(Pred::IsNull(Scalar::attr("S.k")).not());
        roundtrip(&PhysPlan::scan("R"), &it);
        roundtrip(
            &PhysPlan::Filter {
                input: Box::new(PhysPlan::scan("R")),
                pred: pred.clone(),
            },
            &it,
        );
        roundtrip(
            &PhysPlan::Project {
                input: Box::new(PhysPlan::scan("R")),
                attrs: vec![Attr::parse("R.v"), Attr::parse("R.k")],
            },
            &it,
        );
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::FullOuter,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            roundtrip(
                &PhysPlan::HashJoin {
                    kind,
                    probe: Box::new(PhysPlan::scan("R")),
                    build: Box::new(PhysPlan::scan("S")),
                    probe_keys: vec![Attr::parse("R.k")],
                    build_keys: vec![Attr::parse("S.k")],
                    residual: Pred::always(),
                },
                &it,
            );
        }
        roundtrip(
            &PhysPlan::IndexJoin {
                kind: JoinKind::LeftOuter,
                outer: Box::new(PhysPlan::scan("R")),
                inner: "S".into(),
                outer_keys: vec![Attr::parse("R.k")],
                inner_keys: vec![Attr::parse("S.k")],
                residual: pred.clone(),
            },
            &it,
        );
        roundtrip(
            &PhysPlan::MergeJoin {
                kind: JoinKind::Inner,
                left: Box::new(PhysPlan::scan("R")),
                right: Box::new(PhysPlan::scan("S")),
                left_keys: vec![Attr::parse("R.k")],
                right_keys: vec![Attr::parse("S.k")],
                residual: Pred::always(),
            },
            &it,
        );
        roundtrip(
            &PhysPlan::NlJoin {
                kind: JoinKind::FullOuter,
                left: Box::new(PhysPlan::scan("R")),
                right: Box::new(PhysPlan::scan("S")),
                pred,
            },
            &it,
        );
        roundtrip(
            &PhysPlan::GroupCount {
                input: Box::new(PhysPlan::scan("R")),
                group_attrs: vec![Attr::parse("R.v")],
                counted: Some(Attr::parse("R.k")),
            },
            &it,
        );
        roundtrip(
            &PhysPlan::GroupCount {
                input: Box::new(PhysPlan::scan("R")),
                group_attrs: vec![Attr::parse("R.v")],
                counted: None,
            },
            &it,
        );
        roundtrip(
            &PhysPlan::Goj {
                left: Box::new(PhysPlan::scan("R")),
                right: Box::new(PhysPlan::scan("S")),
                pred: Pred::eq_attr("R.k", "S.k"),
                subset: vec![Attr::parse("R.k")],
            },
            &it,
        );
        for pass in [ReducePass::Up, ReducePass::Down] {
            roundtrip(
                &PhysPlan::SemiReduce {
                    input: Box::new(PhysPlan::scan("R")),
                    source: Box::new(PhysPlan::scan("S")),
                    input_keys: vec![Attr::parse("R.k")],
                    source_keys: vec![Attr::parse("S.k")],
                    pass,
                },
                &it,
            );
        }
    }

    #[test]
    fn literal_values_roundtrip() {
        let it = test_interner();
        for lit in [
            Value::Null,
            Value::Int(i64::MIN),
            Value::Int(-7),
            Value::str("Queretaro ❄"),
            Value::Bool(true),
            Value::Bool(false),
        ] {
            let plan = PhysPlan::Filter {
                input: Box::new(PhysPlan::scan("R")),
                pred: Pred::Cmp {
                    op: CmpOp::Ne,
                    lhs: Scalar::attr("R.v"),
                    rhs: Scalar::Lit(lit),
                },
            };
            roundtrip(&plan, &it);
        }
    }

    #[test]
    fn unknown_names_fail_encode() {
        let it = test_interner();
        let e = encode_plan(&PhysPlan::scan("missing"), &it).unwrap_err();
        assert!(matches!(e, WireError::UnknownRelation { .. }), "{e}");
        let e = encode_plan(
            &PhysPlan::Project {
                input: Box::new(PhysPlan::scan("R")),
                attrs: vec![Attr::new("agg", "count")],
            },
            &it,
        )
        .unwrap_err();
        assert!(matches!(e, WireError::UnknownAttr { .. }), "{e}");
    }

    #[test]
    fn arity_violations_fail_both_directions() {
        let it = test_interner();
        let bad = PhysPlan::HashJoin {
            kind: JoinKind::Inner,
            probe: Box::new(PhysPlan::scan("R")),
            build: Box::new(PhysPlan::scan("S")),
            probe_keys: vec![Attr::parse("R.k"), Attr::parse("R.v")],
            build_keys: vec![Attr::parse("S.k")],
            residual: Pred::always(),
        };
        assert!(matches!(
            encode_plan(&bad, &it),
            Err(WireError::InvalidNode { .. })
        ));
        let empty = PhysPlan::MergeJoin {
            kind: JoinKind::Inner,
            left: Box::new(PhysPlan::scan("R")),
            right: Box::new(PhysPlan::scan("S")),
            left_keys: vec![],
            right_keys: vec![],
            residual: Pred::always(),
        };
        assert!(matches!(
            encode_plan(&empty, &it),
            Err(WireError::InvalidNode { .. })
        ));
        let full_ix = PhysPlan::IndexJoin {
            kind: JoinKind::FullOuter,
            outer: Box::new(PhysPlan::scan("R")),
            inner: "S".into(),
            outer_keys: vec![Attr::parse("R.k")],
            inner_keys: vec![Attr::parse("S.k")],
            residual: Pred::always(),
        };
        assert!(matches!(
            encode_plan(&full_ix, &it),
            Err(WireError::InvalidNode { .. })
        ));
        let bad_reduce = PhysPlan::SemiReduce {
            input: Box::new(PhysPlan::scan("R")),
            source: Box::new(PhysPlan::scan("S")),
            input_keys: vec![],
            source_keys: vec![],
            pass: ReducePass::Up,
        };
        assert!(matches!(
            encode_plan(&bad_reduce, &it),
            Err(WireError::InvalidNode { .. })
        ));
    }

    #[test]
    fn depth_cap_fits_a_small_stack() {
        // The nesting-bomb guarantee is only real if MAX_DEPTH decoder
        // frames fit a modest thread stack; decode in a deliberately
        // small one so frame-size regressions fail loudly here instead
        // of aborting some caller.
        let it = test_interner();
        let mut bomb = vec![PLAN_FORMAT_VERSION];
        bomb.extend(std::iter::repeat_n(1u8, 4096));
        let out = std::thread::Builder::new()
            .stack_size(512 * 1024)
            .spawn(move || decode_plan(&bomb, &it))
            .expect("spawn")
            .join()
            .expect("no overflow");
        assert!(matches!(out, Err(WireError::TooDeep { .. })));
    }

    #[test]
    fn hostile_bytes_yield_typed_errors() {
        let it = test_interner();
        // Unknown version.
        assert!(matches!(
            decode_plan(&[9, 0, 0], &it),
            Err(WireError::UnsupportedVersion { .. })
        ));
        // Unknown node tag.
        assert!(matches!(
            decode_plan(&[PLAN_FORMAT_VERSION, 42], &it),
            Err(WireError::UnknownTag { what: "plan", .. })
        ));
        // Out-of-range relation id.
        assert!(matches!(
            decode_plan(&[PLAN_FORMAT_VERSION, 0, 99], &it),
            Err(WireError::BadRelId { id: 99, .. })
        ));
        // Truncated input.
        assert!(matches!(
            decode_plan(&[PLAN_FORMAT_VERSION, 1, 0, 0], &it),
            Err(WireError::UnexpectedEof { .. })
        ));
        // Trailing garbage after a valid plan.
        let mut bytes = encode_plan(&PhysPlan::scan("R"), &it).unwrap();
        bytes.push(0);
        assert!(matches!(
            decode_plan(&bytes, &it),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
        // SemiReduce with a pass byte past the enum.
        assert!(matches!(
            decode_plan(&[PLAN_FORMAT_VERSION, 9, 2], &it),
            Err(WireError::UnknownTag {
                what: "reduce pass",
                ..
            })
        ));
        // SemiReduce whose decoded key lists are empty: both length
        // prefixes say zero, so the structural check must fire.
        assert!(matches!(
            decode_plan(&[PLAN_FORMAT_VERSION, 9, 0, 0, 0, 0, 1, 0, 0], &it),
            Err(WireError::InvalidNode {
                node: "SemiReduce",
                ..
            })
        ));
        // A nesting bomb: Filter tags all the way down trips the depth
        // cap, not the stack.
        let mut bomb = vec![PLAN_FORMAT_VERSION];
        bomb.extend(std::iter::repeat_n(1u8, 4096));
        assert!(matches!(
            decode_plan(&bomb, &it),
            Err(WireError::TooDeep { .. })
        ));
    }
}
