//! The typed failure vocabulary of the wire codec.

use std::fmt;

/// Any way an encode, decode, or snapshot-file operation can fail.
///
/// Decoding is **total**: every malformed input maps to one of these
/// variants — never a panic, never a structurally invalid plan. The
/// variants carry enough position/context information to debug a
/// corrupt artifact from the error alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a read completed.
    UnexpectedEof {
        /// Byte offset at which more input was needed.
        at: usize,
    },
    /// Decoding finished with input left over.
    TrailingBytes {
        /// Unconsumed byte count.
        remaining: usize,
    },
    /// A varint ran past 10 bytes or overflowed 64 bits.
    VarintOverflow {
        /// Byte offset of the varint's first byte.
        at: usize,
    },
    /// A varint used more bytes than its value needs (non-minimal
    /// encodings are rejected so every value has exactly one byte
    /// form — the roundtrip-identity invariant).
    NonCanonicalVarint {
        /// Byte offset of the varint's first byte.
        at: usize,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the string's first content byte.
        at: usize,
    },
    /// A tag byte (or varint tag) outside the grammar.
    UnknownTag {
        /// Which grammar production was being read.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
        /// Byte offset of the tag.
        at: usize,
    },
    /// The artifact's format version is outside the contiguous range
    /// this decoder speaks (`min_supported..=supported`). Each build
    /// writes only `supported` but additionally reads the previous
    /// version(s), so rolling upgrades do not cold-start every cache;
    /// anything older (or newer) degrades to re-encoding from source
    /// (for plans: re-planning).
    UnsupportedVersion {
        /// Which artifact carried the version byte.
        what: &'static str,
        /// The version found in the input.
        found: u8,
        /// The oldest version this build still reads.
        min_supported: u8,
        /// The newest version this build reads (and the one it
        /// writes).
        supported: u8,
    },
    /// A snapshot did not start with the `FROW` magic.
    BadMagic,
    /// A relation id with no entry in the decoding interner.
    BadRelId {
        /// The id read from the wire.
        id: u64,
        /// Number of relations the interner knows.
        n_rels: usize,
    },
    /// An attribute id with no entry in the decoding interner.
    BadAttrId {
        /// The id read from the wire.
        id: u64,
        /// Number of attribute ids the interner has assigned.
        n_attrs: usize,
    },
    /// A node violated a structural rule (key arity, empty key list,
    /// an unsupported kind/operator combination, …).
    InvalidNode {
        /// The plan node at fault.
        node: &'static str,
        /// The violated rule.
        reason: &'static str,
    },
    /// Encoding referenced a relation the interner has not seen.
    UnknownRelation {
        /// The unresolvable table name.
        name: String,
    },
    /// Encoding referenced an attribute the interner has not seen
    /// (derived attributes such as `agg.count` are not serializable).
    UnknownAttr {
        /// The unresolvable attribute, rendered `rel.name`.
        attr: String,
    },
    /// Nesting exceeded the decoder's recursion cap.
    TooDeep {
        /// The depth limit that was hit.
        limit: usize,
    },
    /// A snapshot entry's relation set disagrees with its plan's
    /// base-relation references.
    RelSetMismatch {
        /// Member count of the entry's `RelSet`.
        set_len: usize,
        /// Base-relation references counted in the decoded plan.
        plan_rels: usize,
    },
    /// A filesystem error while reading or writing a snapshot file.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { at } => write!(f, "unexpected end of input at byte {at}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after decode")
            }
            WireError::VarintOverflow { at } => write!(f, "varint overflow at byte {at}"),
            WireError::NonCanonicalVarint { at } => {
                write!(f, "non-minimal varint encoding at byte {at}")
            }
            WireError::BadUtf8 { at } => write!(f, "invalid UTF-8 in string at byte {at}"),
            WireError::UnknownTag { what, tag, at } => {
                write!(f, "unknown {what} tag {tag} at byte {at}")
            }
            WireError::UnsupportedVersion {
                what,
                found,
                min_supported,
                supported,
            } => write!(
                f,
                "unsupported {what} format version {found} \
                 (this build reads {min_supported}..={supported})"
            ),
            WireError::BadMagic => write!(f, "missing FROW snapshot magic"),
            WireError::BadRelId { id, n_rels } => {
                write!(f, "relation id {id} out of range (interner has {n_rels})")
            }
            WireError::BadAttrId { id, n_attrs } => {
                write!(f, "attribute id {id} out of range (interner has {n_attrs})")
            }
            WireError::InvalidNode { node, reason } => write!(f, "invalid {node} node: {reason}"),
            WireError::UnknownRelation { name } => {
                write!(f, "relation `{name}` is not interned; cannot encode")
            }
            WireError::UnknownAttr { attr } => {
                write!(f, "attribute `{attr}` is not interned; cannot encode")
            }
            WireError::TooDeep { limit } => {
                write!(f, "nesting deeper than the {limit}-level decoder cap")
            }
            WireError::RelSetMismatch { set_len, plan_rels } => write!(
                f,
                "entry set has {set_len} member(s) but its plan references {plan_rels} base relation(s)"
            ),
            WireError::Io(msg) => write!(f, "snapshot i/o: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}
