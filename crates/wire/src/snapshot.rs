//! Whole-cache snapshots: a magic-tagged, versioned file image of
//! every plan-cache entry, revalidated against catalog epoch and
//! fingerprint before any entry is trusted.

use crate::codec::{Reader, Writer};
use crate::error::WireError;
use crate::plan::{decode_plan, encode_plan};
use fro_algebra::{Interner, RelId};
use fro_exec::PhysPlan;

/// First bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"FROW";

/// The snapshot format version this build writes (and the newest it
/// reads). Version 2 added a per-entry recency rank so a loaded cache
/// preserves the saver's LRU order instead of flattening it.
pub const SNAPSHOT_FORMAT_VERSION: u8 = 2;

/// The oldest snapshot version this build still decodes. Version-1
/// images (no recency field) load with recency assigned in file
/// order, so a rolling upgrade keeps its warm cache instead of
/// cold-starting.
pub const SNAPSHOT_MIN_SUPPORTED_VERSION: u8 = 1;

/// The revalidation preamble of a snapshot: which catalog generation
/// wrote it, over which name⇄id mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Catalog epoch at save time. A loader whose epoch differs treats
    /// the snapshot as stale (statistics may have moved) and stays
    /// cold.
    pub epoch: u64,
    /// Fingerprint of the catalog's interner contents and statistics.
    /// A loader whose fingerprint differs must not decode entries at
    /// all — the ids on the wire would resolve to the wrong names.
    pub fingerprint: u64,
}

/// One cached plan, fully annotated, as it crosses the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Stable query-graph signature the entry is keyed on.
    pub sig: u64,
    /// Bitset of canonical relation indices the plan covers.
    pub set_bits: u64,
    /// Reordering-policy tag: 0 Paper, 1 Strict, 2 MinimalChain. The
    /// core crate owns the mapping to its `Policy` enum; the wire
    /// layer only validates the range.
    pub policy_tag: u8,
    /// Estimated cost annotation.
    pub cost: f64,
    /// Estimated output-cardinality annotation.
    pub rows: f64,
    /// For single-relation entries: the base relation, letting the
    /// loader rebuild the scan-entry fast path.
    pub base: Option<RelId>,
    /// Recency rank at save time: 0 = least recently used. A loader
    /// installs entries in rank order so its eviction order matches
    /// the saver's. Version-1 images carry no rank; the decoder
    /// assigns file order.
    pub recency: u64,
    /// The plan itself.
    pub plan: PhysPlan,
}

/// Number of reorder policies the version-1 format knows (tags
/// `0..POLICY_TAGS`).
pub const POLICY_TAGS: u8 = 3;

// Floor for `take_count`: sig + set + policy + cost + rows + base tag
// + blob length + a one-byte blob can't encode in fewer bytes.
const MIN_ENTRY_BYTES: usize = 22;

fn validate_entry(e: &SnapshotEntry, it: &Interner) -> Result<(), WireError> {
    if e.set_bits == 0 {
        return Err(WireError::InvalidNode {
            node: "SnapshotEntry",
            reason: "empty relation set",
        });
    }
    if e.policy_tag >= POLICY_TAGS {
        return Err(WireError::UnknownTag {
            what: "policy",
            tag: u64::from(e.policy_tag),
            at: 0,
        });
    }
    let set_len = e.set_bits.count_ones() as usize;
    let plan_rels = e.plan.base_rel_refs();
    if set_len != plan_rels {
        return Err(WireError::RelSetMismatch { set_len, plan_rels });
    }
    if let Some(r) = e.base {
        let name = it.try_rel_name(r).ok_or(WireError::BadRelId {
            id: r.index() as u64,
            n_rels: it.n_rels(),
        })?;
        let is_bare_scan = matches!(&e.plan, PhysPlan::Scan { rel } if rel.as_str() == name);
        if !is_bare_scan {
            return Err(WireError::InvalidNode {
                node: "SnapshotEntry",
                reason: "base relation set but plan is not a bare scan of it",
            });
        }
    }
    Ok(())
}

/// Encode a full snapshot. Entries are sorted by
/// `(sig, set_bits, policy_tag)` so the byte image is a canonical
/// function of the cache *contents*, independent of insertion order.
///
/// # Errors
/// Propagates plan-encode failures ([`WireError::UnknownRelation`] /
/// [`WireError::UnknownAttr`]) and rejects entries the decoder would
/// refuse, so a written snapshot always loads.
pub fn encode_snapshot(
    header: SnapshotHeader,
    entries: &[SnapshotEntry],
    it: &Interner,
) -> Result<Vec<u8>, WireError> {
    encode_snapshot_with_version(header, entries, it, SNAPSHOT_FORMAT_VERSION)
}

/// Encode a snapshot at an explicit (still-supported) format version.
/// Normal savers call [`encode_snapshot`]; this entry point exists so
/// rolling-upgrade tests — and an operator who must hand a snapshot
/// back to a previous release — can produce a version-1 image, which
/// simply omits the recency rank.
///
/// # Errors
/// [`WireError::UnsupportedVersion`] for a version outside
/// [`SNAPSHOT_MIN_SUPPORTED_VERSION`]`..=`[`SNAPSHOT_FORMAT_VERSION`],
/// otherwise the same errors as [`encode_snapshot`].
pub fn encode_snapshot_with_version(
    header: SnapshotHeader,
    entries: &[SnapshotEntry],
    it: &Interner,
    version: u8,
) -> Result<Vec<u8>, WireError> {
    if !(SNAPSHOT_MIN_SUPPORTED_VERSION..=SNAPSHOT_FORMAT_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion {
            what: "snapshot",
            found: version,
            min_supported: SNAPSHOT_MIN_SUPPORTED_VERSION,
            supported: SNAPSHOT_FORMAT_VERSION,
        });
    }
    let mut sorted: Vec<&SnapshotEntry> = entries.iter().collect();
    sorted.sort_by_key(|e| (e.sig, e.set_bits, e.policy_tag));
    let mut w = Writer::new();
    w.put_raw(&SNAPSHOT_MAGIC);
    w.put_u8(version);
    w.put_u64(header.epoch);
    w.put_u64(header.fingerprint);
    w.put_u64(sorted.len() as u64);
    for e in sorted {
        validate_entry(e, it)?;
        w.put_u64(e.sig);
        w.put_u64(e.set_bits);
        w.put_u8(e.policy_tag);
        w.put_f64(e.cost);
        w.put_f64(e.rows);
        match e.base {
            None => w.put_u8(0),
            Some(r) => {
                w.put_u8(1);
                w.put_u64(r.index() as u64);
            }
        }
        if version >= 2 {
            w.put_u64(e.recency);
        }
        w.put_bytes(&encode_plan(&e.plan, it)?);
    }
    Ok(w.into_bytes())
}

fn dec_header(r: &mut Reader<'_>) -> Result<(SnapshotHeader, u8), WireError> {
    let magic = r.take_raw(4)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.take_u8()?;
    if !(SNAPSHOT_MIN_SUPPORTED_VERSION..=SNAPSHOT_FORMAT_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion {
            what: "snapshot",
            found: version,
            min_supported: SNAPSHOT_MIN_SUPPORTED_VERSION,
            supported: SNAPSHOT_FORMAT_VERSION,
        });
    }
    let epoch = r.take_u64()?;
    let fingerprint = r.take_u64()?;
    Ok((SnapshotHeader { epoch, fingerprint }, version))
}

/// Read only the magic, version, and header of a snapshot — enough for
/// a loader to decide staleness *before* decoding a single entry, so a
/// foreign interner mapping is never consulted.
///
/// # Errors
/// [`WireError::BadMagic`], [`WireError::UnsupportedVersion`], or
/// truncation errors.
pub fn peek_snapshot_header(bytes: &[u8]) -> Result<SnapshotHeader, WireError> {
    dec_header(&mut Reader::new(bytes)).map(|(h, _)| h)
}

/// Decode a full snapshot, validating every entry structurally against
/// `it`. The caller is expected to have already checked the header via
/// [`peek_snapshot_header`]; this function re-reads and returns it.
///
/// # Errors
/// Any [`WireError`] decode variant.
pub fn decode_snapshot(
    bytes: &[u8],
    it: &Interner,
) -> Result<(SnapshotHeader, Vec<SnapshotEntry>), WireError> {
    let mut r = Reader::new(bytes);
    let (header, version) = dec_header(&mut r)?;
    let count = r.take_count(MIN_ENTRY_BYTES)?;
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let sig = r.take_u64()?;
        let set_bits = r.take_u64()?;
        let policy_tag = r.take_u8()?;
        let cost = r.take_f64()?;
        let rows = r.take_f64()?;
        let at = r.pos();
        let base = match r.take_u8()? {
            0 => None,
            1 => {
                let id = r.take_u64()?;
                let idx = usize::try_from(id)
                    .ok()
                    .filter(|&i| i < it.n_rels())
                    .ok_or(WireError::BadRelId {
                        id,
                        n_rels: it.n_rels(),
                    })?;
                Some(RelId::from_index(idx))
            }
            t => {
                return Err(WireError::UnknownTag {
                    what: "option",
                    tag: u64::from(t),
                    at,
                })
            }
        };
        // v1 images carry no recency rank; file order (which v1 savers
        // derived from the canonical entry sort) stands in for it.
        let recency = if version >= 2 {
            r.take_u64()?
        } else {
            i as u64
        };
        let blob = r.take_bytes()?;
        let plan = decode_plan(blob, it)?;
        let entry = SnapshotEntry {
            sig,
            set_bits,
            policy_tag,
            cost,
            rows,
            base,
            recency,
            plan,
        };
        validate_entry(&entry, it)?;
        entries.push(entry);
    }
    r.finish()?;
    Ok((header, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::{Attr, Pred, Schema};

    fn test_interner() -> Interner {
        let mut it = Interner::new();
        it.register_relation("R", &Schema::of_relation("R", &["k", "v"]));
        it.register_relation("S", &Schema::of_relation("S", &["k"]));
        it
    }

    fn sample_entries(it: &Interner) -> Vec<SnapshotEntry> {
        let join = PhysPlan::HashJoin {
            kind: fro_exec::JoinKind::LeftOuter,
            probe: Box::new(PhysPlan::scan("R")),
            build: Box::new(PhysPlan::scan("S")),
            probe_keys: vec![Attr::parse("R.k")],
            build_keys: vec![Attr::parse("S.k")],
            residual: Pred::always(),
        };
        vec![
            SnapshotEntry {
                sig: 0xdead_beef,
                set_bits: 0b11,
                policy_tag: 0,
                cost: 42.5,
                rows: 17.0,
                base: None,
                recency: 1,
                plan: join,
            },
            SnapshotEntry {
                sig: 0xdead_beef,
                set_bits: 0b01,
                policy_tag: 2,
                cost: 1.0,
                rows: 10.0,
                base: it.rel_id("R"),
                recency: 0,
                plan: PhysPlan::scan("R"),
            },
        ]
    }

    #[test]
    fn snapshot_roundtrips_and_is_canonical() {
        let it = test_interner();
        let header = SnapshotHeader {
            epoch: 7,
            fingerprint: 0x1234_5678_9abc_def0,
        };
        let entries = sample_entries(&it);
        let bytes = encode_snapshot(header, &entries, &it).unwrap();
        assert_eq!(peek_snapshot_header(&bytes).unwrap(), header);
        let (h2, back) = decode_snapshot(&bytes, &it).unwrap();
        assert_eq!(h2, header);
        // Entries come back sorted; reversing the input changes nothing.
        let mut reversed = entries.clone();
        reversed.reverse();
        let bytes2 = encode_snapshot(header, &reversed, &it).unwrap();
        assert_eq!(bytes, bytes2, "byte image is order-independent");
        assert_eq!(back.len(), 2);
        assert!(back[0].set_bits < back[1].set_bits);
        // And the decoded entries re-encode to the identical image.
        let bytes3 = encode_snapshot(header, &back, &it).unwrap();
        assert_eq!(bytes, bytes3);
    }

    #[test]
    fn invalid_entries_are_rejected_on_both_sides() {
        let it = test_interner();
        let header = SnapshotHeader {
            epoch: 0,
            fingerprint: 0,
        };
        // Relation-set cardinality disagrees with the plan.
        let bad = SnapshotEntry {
            sig: 1,
            set_bits: 0b111,
            policy_tag: 0,
            cost: 0.0,
            rows: 0.0,
            base: None,
            recency: 0,
            plan: PhysPlan::scan("R"),
        };
        assert!(matches!(
            encode_snapshot(header, std::slice::from_ref(&bad), &it),
            Err(WireError::RelSetMismatch { .. })
        ));
        // Policy tag out of range.
        let bad_policy = SnapshotEntry {
            policy_tag: 3,
            set_bits: 0b1,
            ..bad.clone()
        };
        assert!(matches!(
            encode_snapshot(header, &[bad_policy], &it),
            Err(WireError::UnknownTag { what: "policy", .. })
        ));
        // Base relation claimed but the plan is not its bare scan.
        let bad_base = SnapshotEntry {
            set_bits: 0b1,
            base: it.rel_id("S"),
            ..bad
        };
        assert!(matches!(
            encode_snapshot(header, &[bad_base], &it),
            Err(WireError::InvalidNode { .. })
        ));
    }

    #[test]
    fn hostile_headers_are_typed() {
        let it = test_interner();
        assert!(matches!(
            peek_snapshot_header(b"NOPE\x01"),
            Err(WireError::BadMagic)
        ));
        assert!(matches!(
            peek_snapshot_header(b"FROW\x09"),
            Err(WireError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            peek_snapshot_header(b"FR"),
            Err(WireError::UnexpectedEof { .. })
        ));
        // A count claiming more entries than the remaining bytes could
        // possibly hold is rejected before any allocation.
        let mut w = Writer::new();
        w.put_raw(&SNAPSHOT_MAGIC);
        w.put_u8(SNAPSHOT_FORMAT_VERSION);
        w.put_u64(0);
        w.put_u64(0);
        w.put_u64(u64::MAX);
        assert!(matches!(
            decode_snapshot(&w.into_bytes(), &it),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn version1_images_still_decode() {
        // Rolling-upgrade path: a previous release's v1 image (no
        // recency field) decodes on this build, with recency assigned
        // in file order.
        let it = test_interner();
        let header = SnapshotHeader {
            epoch: 5,
            fingerprint: 11,
        };
        let entries = sample_entries(&it);
        let v1 = encode_snapshot_with_version(header, &entries, &it, 1).unwrap();
        assert_eq!(v1[4], 1, "version byte");
        assert_eq!(peek_snapshot_header(&v1).unwrap(), header);
        let (h, back) = decode_snapshot(&v1, &it).unwrap();
        assert_eq!(h, header);
        assert_eq!(back.len(), entries.len());
        for (i, e) in back.iter().enumerate() {
            assert_eq!(e.recency, i as u64, "file order stands in for recency");
        }
        // Everything but the recency rank survives the downgrade.
        let v2 = encode_snapshot(header, &entries, &it).unwrap();
        let (_, full) = decode_snapshot(&v2, &it).unwrap();
        for (a, b) in back.iter().zip(&full) {
            assert_eq!(
                (a.sig, a.set_bits, a.policy_tag),
                (b.sig, b.set_bits, b.policy_tag)
            );
            assert_eq!(a.plan, b.plan);
        }
        // Versions outside the supported range are refused on both
        // sides.
        let err = encode_snapshot_with_version(header, &entries, &it, 0).unwrap_err();
        assert!(matches!(err, WireError::UnsupportedVersion { .. }));
        let err = encode_snapshot_with_version(header, &entries, &it, SNAPSHOT_FORMAT_VERSION + 1)
            .unwrap_err();
        assert!(matches!(err, WireError::UnsupportedVersion { .. }));
    }

    #[test]
    fn corrupting_any_byte_of_a_v1_image_never_panics() {
        // The downgrade path is as hostile-input-proof as the native
        // one: every single-byte corruption of a version-1 image is Ok
        // or a typed error, never a panic.
        let it = test_interner();
        let header = SnapshotHeader {
            epoch: 3,
            fingerprint: 99,
        };
        let bytes = encode_snapshot_with_version(header, &sample_entries(&it), &it, 1).unwrap();
        for i in 0..bytes.len() {
            for delta in [1u8, 0x80] {
                let mut mutated = bytes.clone();
                mutated[i] = mutated[i].wrapping_add(delta);
                let _ = decode_snapshot(&mutated, &it);
                let _ = peek_snapshot_header(&mutated);
            }
        }
    }

    #[test]
    fn corrupting_any_byte_never_panics() {
        let it = test_interner();
        let header = SnapshotHeader {
            epoch: 3,
            fingerprint: 99,
        };
        let bytes = encode_snapshot(header, &sample_entries(&it), &it).unwrap();
        for i in 0..bytes.len() {
            for delta in [1u8, 0x80] {
                let mut mutated = bytes.clone();
                mutated[i] = mutated[i].wrapping_add(delta);
                // Must be Ok or a typed error — never a panic.
                let _ = decode_snapshot(&mutated, &it);
            }
        }
    }
}
