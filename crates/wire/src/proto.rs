//! The versioned query/result protocol: what a client and the server
//! front door say to each other over a byte stream.
//!
//! The protocol reuses the codec vocabulary of the plan format
//! (minimal varints, length-prefixed strings, the `value` production)
//! and inherits its discipline: decoding is **total** — every
//! malformed payload maps to a typed [`WireError`], never a panic —
//! and allocations are bounded by the input length before they
//! happen.
//!
//! ## Framing
//!
//! Each message travels as one frame: a 4-byte little-endian payload
//! length (capped at [`MAX_FRAME_BYTES`]) followed by the payload.
//! [`write_frame`] / [`read_frame`] are the only I/O this module does;
//! the payload codecs are pure functions over byte slices.
//!
//! ## Grammar (version 2)
//!
//! ```text
//! request  := u8(version = 2)
//!             ( 0 str                    Text   — §5 UnNest/Link source
//!             | 1 bytes                  Plan   — an encoded plan blob
//!             | 2                        Ping
//!             | 3 str                    Register — standing §5 source
//!             | 4 varint )               Poll     — standing view id
//! response := u8(version = 2)
//!             ( 0 varint(ncols) ncols×(str str)          Schema
//!             | 1 varint(ncols) varint(nrows)
//!                 nrows×ncols×value                      Rows
//!             | 2 varint(8) 8×varint                     Done
//!             | 3 str str                                Error
//!             | 4                                        Pong
//!             | 5 varint (0|1)                           Registered
//!             | 6 varint(ncols) varint(nrows)
//!                 nrows×ncols×value )                    ViewRows
//! ```
//!
//! A query's reply is a *stream* of frames: one `Schema`, zero or more
//! `Rows` batches, then `Done` carrying the engine's logical work
//! counters — or a single `Error` frame instead. `Schema` columns are
//! `(relation, attribute)` name pairs rather than interned ids: result
//! schemes routinely contain derived attributes (unnested fields,
//! `agg.count`) that exist in no shared interner, so results travel
//! by name while plans travel by id.
//!
//! Version 2 adds the standing-query conversation: `Register` plans
//! and materializes a §5 block as a maintained view and answers with
//! one `Registered` frame (the view id and whether an existing
//! alpha-equivalent view absorbed the registration); `Poll` streams
//! the view's maintained rows as `Schema`, `ViewRows` batches (same
//! layout as `Rows`, the distinct tag marking rows served from
//! maintained state rather than a fresh execution), then `Done` with
//! the counters of the maintenance work that poll performed — all zero
//! on the steady-state fast path. Version-1 payloads still decode.
//!
//! The `Done` counters are, in order: `tuples_retrieved`,
//! `index_probes`, `comparisons`, `hash_build_rows`, `rows_output`,
//! `rows_materialized`, `rows_pipelined`, `pipelines` — the
//! bit-identical logical counters of
//! [`ExecStats`](fro_exec::ExecStats); per-partition and zone-skip
//! diagnostics stay server-side.

use crate::codec::{Reader, Writer};
use crate::error::WireError;
use crate::plan::{dec_value, enc_value};
use fro_algebra::Value;
use fro_exec::ExecStats;
use std::io::{self, Read, Write};

/// The protocol version this build writes (and the newest it reads).
pub const PROTO_VERSION: u8 = 2;

/// The oldest protocol version this build still decodes.
pub const PROTO_MIN_SUPPORTED_VERSION: u8 = 1;

/// Hard cap on a single frame's payload. A hostile length prefix
/// larger than this is rejected before any allocation.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Producer guideline: servers chunk result rows into batches of this
/// many rows per `Rows` frame. Decoders accept any batch size whose
/// bytes actually fit the frame.
pub const ROWS_PER_BATCH: usize = 1024;

/// Cap on the column count a `Schema`/`Rows` payload may declare.
const MAX_COLS: u64 = 65_536;

/// Number of counters in a version-1 `Done` payload.
const STATS_FIELDS: usize = 8;

/// One client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A §5 UnNest/Link query block as source text; the server
    /// parses, optimizes (through the shared plan cache) and executes.
    Text(String),
    /// An already-encoded plan blob ([`crate::encode_plan`], against
    /// the server catalog's interner); the server decodes and executes
    /// it as-is.
    Plan(Vec<u8>),
    /// Liveness probe; the server answers [`Response::Pong`].
    Ping,
    /// Register a §5 query block as a standing view; the server plans
    /// it once (or joins an existing alpha-equivalent view) and
    /// answers [`Response::Registered`].
    Register(String),
    /// Poll a standing view by id; the server streams `Schema`,
    /// [`Response::ViewRows`] batches, then `Done`.
    Poll(u64),
}

/// One server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The result scheme: `(relation, attribute)` name pairs, one per
    /// column, in column order. First frame of every successful query
    /// reply.
    Schema(Vec<(String, String)>),
    /// One batch of result rows, each row carrying exactly the
    /// scheme's column count. Zero or more of these follow `Schema`.
    Rows(Vec<Vec<Value>>),
    /// End of a successful reply: the engine's logical work counters
    /// (diagnostic fields are zero on the decoded side). Boxed: the
    /// counter block dwarfs every other variant.
    Done(Box<ExecStats>),
    /// The query failed; `code` is the server's stable error code
    /// (e.g. `LANG_PARSE`, `OPT_UNSUPPORTED`), `message` the human
    /// rendering.
    Error {
        /// Stable machine-readable failure code.
        code: String,
        /// Human-readable failure description.
        message: String,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Register`]: the standing view's id and
    /// whether an existing alpha-equivalent view absorbed the
    /// registration (`shared = true` ⇒ no new materialization ran).
    Registered {
        /// The view id to [`Request::Poll`].
        id: u64,
        /// `true` when an existing view answered the registration.
        shared: bool,
    },
    /// One batch of a standing view's maintained rows (same layout as
    /// [`Response::Rows`]; the distinct tag marks rows served from
    /// maintained state rather than a fresh execution).
    ViewRows(Vec<Vec<Value>>),
}

// ---------------------------------------------------------------- framing

/// Write one length-prefixed frame.
///
/// # Errors
/// [`io::ErrorKind::InvalidInput`] when the payload exceeds
/// [`MAX_FRAME_BYTES`]; otherwise any underlying write error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_BYTES", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len()).expect("MAX_FRAME_BYTES fits u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean end-of-stream (EOF
/// before the first length byte); a truncated frame is an error.
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] when the length prefix exceeds
/// [`MAX_FRAME_BYTES`] (rejected before allocating), otherwise any
/// underlying read error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------- requests

/// Encode a request payload (framing is [`write_frame`]'s job).
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(PROTO_VERSION);
    match req {
        Request::Text(src) => {
            w.put_u8(0);
            w.put_str(src);
        }
        Request::Plan(blob) => {
            w.put_u8(1);
            w.put_bytes(blob);
        }
        Request::Ping => w.put_u8(2),
        Request::Register(src) => {
            w.put_u8(3);
            w.put_str(src);
        }
        Request::Poll(id) => {
            w.put_u8(4);
            w.put_u64(*id);
        }
    }
    w.into_bytes()
}

fn check_version(r: &mut Reader<'_>, what: &'static str) -> Result<(), WireError> {
    let version = r.take_u8()?;
    if !(PROTO_MIN_SUPPORTED_VERSION..=PROTO_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion {
            what,
            found: version,
            min_supported: PROTO_MIN_SUPPORTED_VERSION,
            supported: PROTO_VERSION,
        });
    }
    Ok(())
}

/// Decode a request payload. Total over hostile bytes.
///
/// # Errors
/// Any [`WireError`] decode variant.
pub fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(bytes);
    check_version(&mut r, "request")?;
    let at = r.pos();
    let req = match r.take_u8()? {
        0 => Request::Text(r.take_str()?.to_owned()),
        1 => Request::Plan(r.take_bytes()?.to_vec()),
        2 => Request::Ping,
        3 => Request::Register(r.take_str()?.to_owned()),
        4 => Request::Poll(r.take_u64()?),
        t => {
            return Err(WireError::UnknownTag {
                what: "request",
                tag: u64::from(t),
                at,
            })
        }
    };
    r.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------- responses

fn stats_counters(s: &ExecStats) -> [u64; STATS_FIELDS] {
    [
        s.tuples_retrieved,
        s.index_probes,
        s.comparisons,
        s.hash_build_rows,
        s.rows_output,
        s.rows_materialized,
        s.rows_pipelined,
        s.pipelines,
    ]
}

/// Encode a response payload.
///
/// # Errors
/// [`WireError::InvalidNode`] when a `Rows` batch has ragged rows or
/// more than [`MAX_FRAME_BYTES`]-compatible columns — the encoder
/// refuses to emit bytes its own decoder would reject.
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    w.put_u8(PROTO_VERSION);
    match resp {
        Response::Schema(cols) => {
            w.put_u8(0);
            w.put_u64(cols.len() as u64);
            for (rel, name) in cols {
                w.put_str(rel);
                w.put_str(name);
            }
        }
        Response::Rows(rows) => {
            w.put_u8(1);
            enc_row_batch(&mut w, rows)?;
        }
        Response::Done(stats) => {
            w.put_u8(2);
            w.put_u64(STATS_FIELDS as u64);
            for c in stats_counters(stats) {
                w.put_u64(c);
            }
        }
        Response::Error { code, message } => {
            w.put_u8(3);
            w.put_str(code);
            w.put_str(message);
        }
        Response::Pong => w.put_u8(4),
        Response::Registered { id, shared } => {
            w.put_u8(5);
            w.put_u64(*id);
            w.put_u8(u8::from(*shared));
        }
        Response::ViewRows(rows) => {
            w.put_u8(6);
            enc_row_batch(&mut w, rows)?;
        }
    }
    Ok(w.into_bytes())
}

/// The shared `varint(ncols) varint(nrows) nrows×ncols×value` body of
/// `Rows` and `ViewRows`.
fn enc_row_batch(w: &mut Writer, rows: &[Vec<Value>]) -> Result<(), WireError> {
    let ncols = rows.first().map_or(0, Vec::len);
    if rows.iter().any(|row| row.len() != ncols) {
        return Err(WireError::InvalidNode {
            node: "Rows",
            reason: "ragged row arity in a batch",
        });
    }
    if ncols as u64 > MAX_COLS {
        return Err(WireError::InvalidNode {
            node: "Rows",
            reason: "column count exceeds the protocol cap",
        });
    }
    w.put_u64(ncols as u64);
    w.put_u64(rows.len() as u64);
    for row in rows {
        for v in row {
            enc_value(w, v);
        }
    }
    Ok(())
}

fn dec_schema(r: &mut Reader<'_>) -> Result<Response, WireError> {
    // Each column costs at least two one-byte (empty-string) lengths.
    let ncols = r.take_count(2)?;
    if ncols as u64 > MAX_COLS {
        return Err(WireError::InvalidNode {
            node: "Schema",
            reason: "column count exceeds the protocol cap",
        });
    }
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let rel = r.take_str()?.to_owned();
        let name = r.take_str()?.to_owned();
        cols.push((rel, name));
    }
    Ok(Response::Schema(cols))
}

fn dec_row_batch(r: &mut Reader<'_>) -> Result<Vec<Vec<Value>>, WireError> {
    let at = r.pos();
    let ncols = r.take_u64()?;
    if ncols > MAX_COLS {
        return Err(WireError::InvalidNode {
            node: "Rows",
            reason: "column count exceeds the protocol cap",
        });
    }
    let ncols = usize::try_from(ncols).map_err(|_| WireError::UnknownTag {
        what: "ncols",
        tag: ncols,
        at,
    })?;
    // Every value costs at least one byte, so a row costs ≥ ncols
    // bytes; `take_count` bounds the row count by the bytes actually
    // present before this Vec is sized.
    let nrows = r.take_count(ncols.max(1))?;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(dec_value(r)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

fn dec_done(r: &mut Reader<'_>) -> Result<Response, WireError> {
    let n = r.take_count(1)?;
    if n != STATS_FIELDS {
        return Err(WireError::InvalidNode {
            node: "Done",
            reason: "wrong counter count for protocol version 1",
        });
    }
    let mut c = [0u64; STATS_FIELDS];
    for slot in &mut c {
        *slot = r.take_u64()?;
    }
    let mut stats = ExecStats::new();
    stats.tuples_retrieved = c[0];
    stats.index_probes = c[1];
    stats.comparisons = c[2];
    stats.hash_build_rows = c[3];
    stats.rows_output = c[4];
    stats.rows_materialized = c[5];
    stats.rows_pipelined = c[6];
    stats.pipelines = c[7];
    Ok(Response::Done(Box::new(stats)))
}

/// Decode a response payload. Total over hostile bytes.
///
/// # Errors
/// Any [`WireError`] decode variant.
pub fn decode_response(bytes: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(bytes);
    check_version(&mut r, "response")?;
    let at = r.pos();
    let resp = match r.take_u8()? {
        0 => dec_schema(&mut r)?,
        1 => Response::Rows(dec_row_batch(&mut r)?),
        2 => dec_done(&mut r)?,
        3 => Response::Error {
            code: r.take_str()?.to_owned(),
            message: r.take_str()?.to_owned(),
        },
        4 => Response::Pong,
        5 => {
            let id = r.take_u64()?;
            let shared = match r.take_u8()? {
                0 => false,
                1 => true,
                _ => {
                    return Err(WireError::InvalidNode {
                        node: "Registered",
                        reason: "shared flag must be 0 or 1",
                    })
                }
            };
            Response::Registered { id, shared }
        }
        6 => Response::ViewRows(dec_row_batch(&mut r)?),
        t => {
            return Err(WireError::UnknownTag {
                what: "response",
                tag: u64::from(t),
                at,
            })
        }
    };
    r.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: &Request) {
        let bytes = encode_request(req);
        assert_eq!(&decode_request(&bytes).unwrap(), req);
    }

    fn roundtrip_resp(resp: &Response) {
        let bytes = encode_response(resp).unwrap();
        assert_eq!(&decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(&Request::Text(
            "Select All From DEPARTMENT-->Manager".into(),
        ));
        roundtrip_req(&Request::Plan(vec![1, 0, 0]));
        roundtrip_req(&Request::Ping);
        roundtrip_req(&Request::Register(
            "Select All From EMPLOYEE*ChildName".into(),
        ));
        roundtrip_req(&Request::Poll(0));
        roundtrip_req(&Request::Poll(u64::MAX));
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(&Response::Schema(vec![
            ("R".into(), "k".into()),
            ("EMPLOYEE_ChildName".into(), "ChildName".into()),
        ]));
        roundtrip_resp(&Response::Schema(vec![]));
        roundtrip_resp(&Response::Rows(vec![
            vec![Value::Int(1), Value::str("Luz"), Value::Null],
            vec![Value::Int(-7), Value::Bool(true), Value::Int(i64::MIN)],
        ]));
        roundtrip_resp(&Response::Rows(vec![]));
        let mut stats = ExecStats::new();
        stats.tuples_retrieved = 42;
        stats.rows_output = 7;
        stats.pipelines = 3;
        roundtrip_resp(&Response::Done(Box::new(stats)));
        roundtrip_resp(&Response::Error {
            code: "LANG_PARSE".into(),
            message: "expected Select".into(),
        });
        roundtrip_resp(&Response::Pong);
        roundtrip_resp(&Response::Registered {
            id: 7,
            shared: true,
        });
        roundtrip_resp(&Response::Registered {
            id: u64::MAX,
            shared: false,
        });
        roundtrip_resp(&Response::ViewRows(vec![vec![Value::Int(3), Value::Null]]));
        roundtrip_resp(&Response::ViewRows(vec![]));
    }

    #[test]
    fn version_1_payloads_still_decode() {
        // A v1 peer's bytes (version byte 1, v1 tags) stay readable.
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(2); // Ping
        assert_eq!(decode_request(&w.into_bytes()).unwrap(), Request::Ping);
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(4); // Pong
        assert_eq!(decode_response(&w.into_bytes()).unwrap(), Response::Pong);
    }

    #[test]
    fn registered_shared_flag_is_strict() {
        let mut w = Writer::new();
        w.put_u8(PROTO_VERSION);
        w.put_u8(5);
        w.put_u64(1);
        w.put_u8(2); // neither 0 nor 1
        assert!(matches!(
            decode_response(&w.into_bytes()),
            Err(WireError::InvalidNode {
                node: "Registered",
                ..
            })
        ));
    }

    #[test]
    fn frames_roundtrip_and_cap_lengths() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        // A hostile length prefix is rejected before allocation.
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        let mut r = io::Cursor::new(huge.to_vec());
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // A truncated frame is an error, not a silent end.
        let mut partial = 10u32.to_le_bytes().to_vec();
        partial.extend_from_slice(b"abc");
        let mut r = io::Cursor::new(partial);
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn ragged_batches_refuse_to_encode() {
        let ragged = Response::Rows(vec![vec![Value::Int(1)], vec![]]);
        assert!(matches!(
            encode_response(&ragged),
            Err(WireError::InvalidNode { node: "Rows", .. })
        ));
    }

    #[test]
    fn hostile_payloads_yield_typed_errors() {
        // Unknown version, unknown tags, truncation, trailing bytes.
        assert!(matches!(
            decode_request(&[9, 0]),
            Err(WireError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            decode_request(&[PROTO_VERSION, 9]),
            Err(WireError::UnknownTag { .. })
        ));
        assert!(matches!(
            decode_response(&[PROTO_VERSION, 9]),
            Err(WireError::UnknownTag { .. })
        ));
        assert!(matches!(
            decode_request(&[PROTO_VERSION]),
            Err(WireError::UnexpectedEof { .. })
        ));
        let mut ok = encode_request(&Request::Ping);
        ok.push(0);
        assert!(matches!(
            decode_request(&ok),
            Err(WireError::TrailingBytes { .. })
        ));
        // A Rows batch claiming more rows than its bytes could hold is
        // rejected before the row Vec is sized.
        let mut w = Writer::new();
        w.put_u8(PROTO_VERSION);
        w.put_u8(1);
        w.put_u64(3); // ncols
        w.put_u64(u64::MAX); // nrows
        assert!(matches!(
            decode_response(&w.into_bytes()),
            Err(WireError::UnexpectedEof { .. })
        ));
        // Done with the wrong counter count.
        let mut w = Writer::new();
        w.put_u8(PROTO_VERSION);
        w.put_u8(2);
        w.put_u64(3);
        for _ in 0..3 {
            w.put_u64(0);
        }
        assert!(matches!(
            decode_response(&w.into_bytes()),
            Err(WireError::InvalidNode { node: "Done", .. })
        ));
    }

    #[test]
    fn every_single_byte_corruption_is_total() {
        let mut stats = ExecStats::new();
        stats.rows_output = 11;
        let payloads = vec![
            encode_request(&Request::Text("Select All From R*F".into())),
            encode_request(&Request::Plan(vec![1, 0, 0])),
            encode_response(&Response::Schema(vec![("R".into(), "k".into())])).unwrap(),
            encode_response(&Response::Rows(vec![vec![
                Value::Int(5),
                Value::str("x"),
                Value::Null,
            ]]))
            .unwrap(),
            encode_response(&Response::Done(Box::new(stats))).unwrap(),
            encode_request(&Request::Register("Select All From R*F".into())),
            encode_request(&Request::Poll(42)),
            encode_response(&Response::Registered {
                id: 9,
                shared: true,
            })
            .unwrap(),
            encode_response(&Response::ViewRows(vec![vec![Value::Int(1), Value::Null]])).unwrap(),
        ];
        for bytes in payloads {
            for i in 0..bytes.len() {
                for delta in [1u8, 0x80] {
                    let mut mutated = bytes.clone();
                    mutated[i] = mutated[i].wrapping_add(delta);
                    // Ok or typed error — never a panic.
                    let _ = decode_request(&mutated);
                    let _ = decode_response(&mutated);
                }
            }
        }
    }
}
