//! # fro-wire — the id-only binary wire format for physical plans
//!
//! Theorem 1 makes the query graph an unambiguous query
//! representation, and the plan cache already keys on its stable
//! signature. This crate gives the cached artifacts themselves a
//! stable byte form: a **versioned, length-prefixed, varint-based**
//! binary encoding for [`PhysPlan`] trees and for whole plan-cache
//! snapshots (signature, canonical relation set, policy, and
//! cost/cardinality annotations per entry).
//!
//! ## Ids only, no names
//!
//! A plan on the wire refers to relations and attributes exclusively
//! by their dense interned ids ([`fro_algebra::RelId`] /
//! [`fro_algebra::AttrId`]); the [`Interner`] is the codec's symbol
//! table at both ends. Encoding a plan whose attributes the interner
//! has never seen fails with a typed error (such plans exist — derived
//! attributes like `agg.count` — and are simply not serializable), and
//! decoding against a *different* interner either fails or produces a
//! plan over that interner's names, never a misattributed mix: the
//! snapshot layer above additionally carries a catalog fingerprint so
//! a foreign mapping is rejected before any entry is decoded.
//!
//! ## Strict decoding
//!
//! The decoder is total over hostile bytes: every read is
//! bounds-checked, varints must be minimal, tags must be known,
//! recursion depth is capped, join key lists must agree in (nonzero)
//! arity, and a snapshot entry's relation set must match the plan's
//! base-relation references. Every failure is a typed [`WireError`] —
//! decoding never panics and never fabricates a structurally invalid
//! [`PhysPlan`].
//!
//! ## Format grammar (version 1)
//!
//! ```text
//! varint   := LEB128 unsigned 64-bit, minimal encoding, ≤ 10 bytes
//! zigzag   := varint of (n << 1) ^ (n >> 63)
//! f64      := 8 bytes, IEEE-754 bit pattern, little-endian
//! bytes    := varint(len) len×u8
//! str      := bytes, valid UTF-8
//! relid    := varint < n_rels        attrid := varint < n_attrs
//! value    := 0 | 1 zigzag | 2 str | 3 (0|1)
//! truth    := 0 | 1 | 2                      (False, Unknown, True)
//! cmpop    := 0..5                           (Eq Ne Lt Le Gt Ge)
//! scalar   := 0 attrid | 1 value
//! pred     := 0 cmpop scalar scalar | 1 scalar | 2 pred pred
//!           | 3 pred pred | 4 pred | 5 truth
//! kind     := 0..4                  (Inner LeftOuter FullOuter Semi Anti)
//! attrs    := varint(n) n×attrid
//! plan     := 0 relid                              Scan
//!           | 1 plan pred                          Filter
//!           | 2 plan attrs                         Project
//!           | 3 kind plan plan attrs attrs pred    HashJoin
//!           | 4 kind plan relid attrs attrs pred   IndexJoin
//!           | 5 kind plan plan attrs attrs pred    MergeJoin
//!           | 6 kind plan plan pred                NlJoin
//!           | 7 plan attrs (0 | 1 attrid)          GroupCount
//!           | 8 plan plan pred attrs               Goj
//! blob     := u8(version = 1) plan                 (fully consumed)
//! entry    := varint(sig) varint(set) u8(policy ≤ 2)
//!             f64(cost) f64(rows) (0 | 1 relid)
//!             [v≥2: varint(recency)] bytes(blob)
//! snapshot := "FROW" u8(version ∈ 1..=2) varint(epoch)
//!             varint(fingerprint) varint(count) count×entry
//! ```
//!
//! Tag values deliberately mirror the [`fro_algebra::SigHash`]
//! discriminants, so the wire format and the signature hash describe
//! predicates with the same vocabulary.
//!
//! ## The query/result protocol
//!
//! The [`proto`] module layers a client/server conversation on the
//! same codec: length-prefixed frames carrying a versioned
//! [`Request`](proto::Request) (§5 source text, an encoded plan blob,
//! or a ping) and a stream of [`Response`](proto::Response) frames
//! (result scheme, row batches, final work counters — or a typed
//! error). See its module docs for the grammar.
//!
//! ## Versioning and compatibility
//!
//! The version byte (per plan blob, per snapshot, and per protocol
//! message) is bumped on any change to the grammar above. Each build
//! writes the newest version and reads a contiguous range ending at
//! it — currently plans read `1..=1`, snapshots `1..=2` (version 2
//! added the per-entry recency rank; version-1 images decode with
//! recency assigned in file order), and protocol messages `1..=2`
//! (version 2 added the standing-query `Register`/`Poll` requests and
//! `Registered`/`ViewRows` responses; version-1 payloads decode
//! unchanged) — so a rolling upgrade keeps the
//! previous release's artifacts warm. Anything outside the range
//! returns [`WireError::UnsupportedVersion`] and callers degrade to
//! re-planning (a cold cache), which is always correct. Unknown tags
//! within a supported version are rejected, never skipped.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod plan;
pub mod proto;
pub mod snapshot;

pub use codec::{Reader, Writer};
pub use error::WireError;
pub use plan::{decode_plan, encode_plan, PLAN_FORMAT_VERSION, PLAN_MIN_SUPPORTED_VERSION};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    Request, Response, MAX_FRAME_BYTES, PROTO_VERSION, ROWS_PER_BATCH,
};
pub use snapshot::{
    decode_snapshot, encode_snapshot, encode_snapshot_with_version, peek_snapshot_header,
    SnapshotEntry, SnapshotHeader, POLICY_TAGS, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MAGIC,
    SNAPSHOT_MIN_SUPPORTED_VERSION,
};

// Re-exported so downstream callers name the plan type the codec
// serializes without an extra explicit dependency edge.
pub use fro_algebra::Interner;
pub use fro_exec::PhysPlan;
