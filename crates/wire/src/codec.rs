//! Byte-level primitives: the LEB128 varint writer and the strict,
//! bounds-checked reader every higher layer decodes through.

use crate::error::WireError;

/// The decoder's recursion cap. Plans from the optimizer are at most a
/// few dozen levels deep (≤ 64 relations plus predicate nesting); the
/// cap exists so hostile bytes cannot drive the decoder into stack
/// overflow — an abort, not a catchable error. 128 comfortably fits a
/// default 2 MiB thread stack even in debug builds.
pub const MAX_DEPTH: usize = 128;

/// An append-only output buffer with the wire format's primitive
/// encodings.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Surrender the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A single raw byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Raw bytes with **no** length prefix (magic values).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unsigned LEB128 varint (minimal encoding by construction).
    pub fn put_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Signed integer as a zigzag varint.
    pub fn put_i64(&mut self, v: i64) {
        #[allow(clippy::cast_sign_loss)]
        self.put_u64(((v << 1) ^ (v >> 63)) as u64);
    }

    /// IEEE-754 bit pattern, little-endian, fixed 8 bytes.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// A strict cursor over untrusted input: every read is bounds-checked,
/// varints must be minimal, and recursion depth is metered. All
/// failures are typed [`WireError`]s — the reader never panics.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at its start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader {
            buf,
            pos: 0,
            depth: 0,
        }
    }

    /// Current byte offset.
    #[must_use]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Enter one level of nesting; fails with [`WireError::TooDeep`]
    /// at [`MAX_DEPTH`]. Pair with [`Reader::leave`].
    pub fn enter(&mut self) -> Result<(), WireError> {
        if self.depth >= MAX_DEPTH {
            return Err(WireError::TooDeep { limit: MAX_DEPTH });
        }
        self.depth += 1;
        Ok(())
    }

    /// Leave one level of nesting.
    pub fn leave(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Require that every byte was consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    /// One raw byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(WireError::UnexpectedEof { at: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// `n` raw bytes with no length prefix (magic values).
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof { at: self.buf.len() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Unsigned LEB128 varint; rejects encodings longer than 10 bytes,
    /// 64-bit overflow, and non-minimal (overlong) forms.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        let start = self.pos;
        let mut v: u64 = 0;
        for i in 0..10 {
            let byte = self.take_u8()?;
            let payload = u64::from(byte & 0x7f);
            // The 10th byte may only carry the last single bit.
            if i == 9 && payload > 1 {
                return Err(WireError::VarintOverflow { at: start });
            }
            v |= payload << (7 * i);
            if byte & 0x80 == 0 {
                if i > 0 && payload == 0 {
                    return Err(WireError::NonCanonicalVarint { at: start });
                }
                return Ok(v);
            }
        }
        Err(WireError::VarintOverflow { at: start })
    }

    /// Signed zigzag varint.
    pub fn take_i64(&mut self) -> Result<i64, WireError> {
        let z = self.take_u64()?;
        #[allow(clippy::cast_possible_wrap)]
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Fixed 8-byte little-endian IEEE-754 bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, WireError> {
        let raw = self.take_raw(8)?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// Length-prefixed byte string; the declared length is validated
    /// against the remaining input before anything is sliced, so a
    /// hostile length cannot trigger a huge allocation.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.take_u64()?;
        let len = usize::try_from(len).map_err(|_| WireError::UnexpectedEof { at: self.pos })?;
        if len > self.remaining() {
            return Err(WireError::UnexpectedEof { at: self.buf.len() });
        }
        self.take_raw(len)
    }

    /// Length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, WireError> {
        let at = self.pos;
        let bytes = self.take_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8 { at })
    }

    /// A collection count about to be decoded, validated against a
    /// minimum per-element byte width so a hostile count cannot force
    /// a huge reservation.
    pub fn take_count(&mut self, min_bytes_per_item: usize) -> Result<usize, WireError> {
        let n = self.take_u64()?;
        let n = usize::try_from(n).map_err(|_| WireError::UnexpectedEof { at: self.pos })?;
        if n.saturating_mul(min_bytes_per_item.max(1)) > self.remaining() {
            return Err(WireError::UnexpectedEof { at: self.buf.len() });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_and_minimality() {
        let mut w = Writer::new();
        let samples = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        for &v in &samples {
            w.put_u64(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &samples {
            assert_eq!(r.take_u64().unwrap(), v);
        }
        r.finish().unwrap();
        // Overlong encoding of 1: [0x81, 0x00].
        let mut r = Reader::new(&[0x81, 0x00]);
        assert!(matches!(
            r.take_u64(),
            Err(WireError::NonCanonicalVarint { .. })
        ));
        // Eleven continuation bytes: overflow.
        let mut r = Reader::new(&[0x80u8; 11]);
        assert!(matches!(
            r.take_u64(),
            Err(WireError::VarintOverflow { .. })
        ));
        // A 10th byte carrying more than one bit: overflow.
        let mut bomb = vec![0xffu8; 9];
        bomb.push(0x02);
        let mut r = Reader::new(&bomb);
        assert!(matches!(
            r.take_u64(),
            Err(WireError::VarintOverflow { .. })
        ));
    }

    #[test]
    fn zigzag_roundtrip() {
        let mut w = Writer::new();
        let samples = [0i64, -1, 1, i64::MIN, i64::MAX, -123_456];
        for &v in &samples {
            w.put_i64(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for &v in &samples {
            assert_eq!(r.take_i64().unwrap(), v);
        }
    }

    #[test]
    fn f64_is_bit_exact() {
        let mut w = Writer::new();
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE] {
            w.put_f64(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE] {
            assert_eq!(r.take_f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn hostile_lengths_are_rejected_before_allocation() {
        // Claims u64::MAX bytes follow; only 2 actually do.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        w.put_raw(&[1, 2]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.take_bytes(),
            Err(WireError::UnexpectedEof { .. })
        ));
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.take_count(1),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.take_str(), Err(WireError::BadUtf8 { .. })));
    }

    #[test]
    fn depth_guard_trips() {
        let mut r = Reader::new(&[]);
        for _ in 0..MAX_DEPTH {
            r.enter().unwrap();
        }
        assert!(matches!(r.enter(), Err(WireError::TooDeep { .. })));
        r.leave();
        r.enter().unwrap();
    }

    #[test]
    fn finish_flags_leftovers() {
        let mut r = Reader::new(&[1, 2]);
        let _ = r.take_u8().unwrap();
        assert!(matches!(
            r.finish(),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }
}
