#!/usr/bin/env bash
# Tier-1 verification plus the engine scaling bench.
#
# Offline-safe: every dependency is a workspace path crate (including
# the vendored rand/proptest/criterion stand-ins under crates/), so no
# step touches a registry or the network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== engine scaling bench -> BENCH_engine.json =="
cargo run -q --release -p fro-bench --bin scaling

echo "ci.sh: all checks passed"
