#!/usr/bin/env bash
# Tier-1 verification plus the engine and optimizer benches.
#
# Offline-safe: every dependency is a workspace path crate (including
# the vendored rand/proptest/criterion stand-ins under crates/), so no
# step touches a registry or the network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format check =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== tests (testing-oracles: name-keyed oracle equivalence) =="
cargo test -q --features testing-oracles

echo "== clippy (deny warnings) =="
cargo clippy --all-targets -- -D warnings

echo "== docs (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== engine scaling bench -> BENCH_engine.json =="
cargo run -q --release -p fro-bench --bin scaling

echo "== optimizer bench -> BENCH_optimizer.json =="
cargo run -q --release -p fro-bench --bin optimize

echo "== plan-cache bench -> BENCH_plancache.json =="
cargo run -q --release -p fro-bench --bin plancache

echo "== archive bench snapshots under benches/history/ =="
sha="$(git rev-parse --short HEAD 2>/dev/null || echo workdir)"
mkdir -p benches/history
cp BENCH_engine.json "benches/history/${sha}-engine.json"
cp BENCH_optimizer.json "benches/history/${sha}-optimizer.json"
echo "archived benches/history/${sha}-{engine,optimizer}.json"

echo "== bench deltas vs previous snapshot =="
scripts/bench_diff.sh || true

echo "ci.sh: all checks passed"
