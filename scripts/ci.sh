#!/usr/bin/env bash
# Tier-1 verification plus the engine and optimizer benches.
#
# Offline-safe: every dependency is a workspace path crate (including
# the vendored rand/proptest/criterion stand-ins under crates/), so no
# step touches a registry or the network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format check =="
cargo fmt --check

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== tests (testing-oracles: name-keyed oracle equivalence) =="
cargo test -q --features testing-oracles

echo "== wire decoder fuzz + roundtrip properties =="
cargo test -q -p fro-wire
cargo test -q --test wire_property

echo "== pipelined executor cross-mode properties =="
# Pipelined vs materializing: bit-identical rows and work counters on
# every join kind, thread count, and morsel size (also covered by the
# plain `cargo test` above; run standalone so a failure names itself).
cargo test -q --test pipelined_property

echo "== columnar cross-layout properties =="
# Columnar vs row-major: bit-identical rows and work counters on every
# join kind, executor mode, thread count, and morsel size (also covered
# by the plain `cargo test` above; standalone so a failure names itself).
cargo test -q --test columnar_property

echo "== semijoin-reduction properties =="
# Reduced vs plain plans: bit-identical rows, order, and schema on
# every join kind, both engines, thread counts 1/2/8, columnar on/off;
# the soundness matrix (left-outer probe never up-reduced, full outer
# untouched) pinned by deterministic cases (also covered by the plain
# `cargo test` above; standalone so a failure names itself).
cargo test -q --test semireduce_property

echo "== shared-session concurrency properties =="
# T threads of interleaved queries + mutations over one SharedDb:
# results bit-identical to single-threaded replay, atomic multi-table
# flips never observed torn, epoch bumps invalidate across threads,
# per-handle cache counters sum to the shared totals (also covered by
# the plain `cargo test` above; standalone so a failure names itself).
cargo test -q --test shared_session_property

echo "== standing-query maintenance properties =="
# Random append/delete interleavings against registered views on all
# five join kinds, both executor modes, thread counts 1/2/8: the
# maintained view stays bit-identical to cold re-execution, outerjoin
# null rows retract exactly when the last match dies, alpha-equivalent
# registrations share one view, and maintenance counters sum across
# handles (also covered by the plain `cargo test` above; standalone so
# a failure names itself).
cargo test -q --test standing_property

echo "== EXPLAIN corpus gate =="
scripts/explain_corpus.sh --check
# Inverted self-test: a perturbed cost model MUST trip the gate. If
# this passes, the gate is blind and the corpus is not protecting us.
if scripts/explain_corpus.sh --check --perturb >/dev/null 2>&1; then
  echo "ERROR: corpus gate failed to detect a perturbed cost model" >&2
  exit 1
fi
echo "corpus gate correctly rejects a perturbed cost model"

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== docs (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "== engine scaling bench -> BENCH_engine.json =="
cargo run -q --release -p fro-bench --bin scaling

echo "== optimizer bench -> BENCH_optimizer.json =="
cargo run -q --release -p fro-bench --bin optimize

echo "== plan-cache bench -> BENCH_plancache.json =="
cargo run -q --release -p fro-bench --bin plancache

echo "== semijoin reducer bench -> BENCH_reducer.json =="
# Asserts bit-identical plain-vs-reduced output, a >=10x
# intermediate-row cut, and a >=2x wall-clock win on the skewed star
# and snowflake workloads, and that the uniform control declines.
cargo run -q --release -p fro-bench --bin reducer

echo "== standing-query maintenance bench -> BENCH_standing.json =="
# Asserts the maintained view stays bit-identical to re-execution on
# every append, that no append forces a full refresh, that delta rows
# ingested stay O(appends) not O(base), and a >=10x end-to-end win
# (append+delta+poll vs append+re-execute+canonicalize).
cargo run -q --release -p fro-bench --bin standing

echo "== server smoke test (loopback round trip) =="
cargo run -q --release -p fro-bench --bin serve -- --smoke

echo "== server concurrency bench -> BENCH_server.json =="
cargo run -q --release -p fro-bench --bin server_bench

echo "== archive bench snapshots under benches/history/ =="
sha="$(git rev-parse --short HEAD 2>/dev/null || echo workdir)"
mkdir -p benches/history
cp BENCH_engine.json "benches/history/${sha}-engine.json"
cp BENCH_optimizer.json "benches/history/${sha}-optimizer.json"
cp BENCH_plancache.json "benches/history/${sha}-plancache.json"
cp BENCH_server.json "benches/history/${sha}-server.json"
cp BENCH_reducer.json "benches/history/${sha}-reducer.json"
cp BENCH_standing.json "benches/history/${sha}-standing.json"
echo "archived benches/history/${sha}-{engine,optimizer,plancache,server,reducer,standing}.json"

echo "== bench deltas vs previous snapshot =="
scripts/bench_diff.sh || true

echo "ci.sh: all checks passed"
