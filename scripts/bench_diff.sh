#!/usr/bin/env bash
# Print metric deltas between the two most recent archived bench
# snapshots (benches/history/<sha>-{engine,optimizer}.json, written by
# ci.sh after each bench run).
#
# Pure shell + awk — no JSON tooling required: the snapshots are flat
# enough that `"key": number` scans cover every top-level scalar
# metric. Keys that repeat (the per-cell `results` rows) are skipped;
# the summary scalars (row counts, speedups, totals) are what trend.
set -euo pipefail
cd "$(dirname "$0")/.."

diff_kind() {
  kind="$1"
  files=$(ls -t benches/history/*-"$kind".json 2>/dev/null | head -2 || true)
  cur=$(printf '%s\n' "$files" | sed -n 1p)
  prev=$(printf '%s\n' "$files" | sed -n 2p)
  if [ -z "${prev:-}" ]; then
    echo "bench_diff: fewer than two $kind snapshots, nothing to compare"
    return 0
  fi
  echo "== $kind: $(basename "$prev") -> $(basename "$cur") =="
  awk -v prev="$prev" -v cur="$cur" '
    function scan(file, is_prev,   line, key, val) {
      while ((getline line < file) > 0) {
        if (match(line, /"[A-Za-z0-9_]+": *-?[0-9][0-9.]*/)) {
          split(substr(line, RSTART, RLENGTH), kv, /": */)
          key = substr(kv[1], 2)
          val = kv[2] + 0
          if (is_prev) {
            if (!(key in pcount)) order[++n] = key
            pcount[key]++; pval[key] = val
          } else {
            ccount[key]++; cval[key] = val
          }
        }
      }
      close(file)
    }
    BEGIN {
      scan(prev, 1); scan(cur, 0)
      for (i = 1; i <= n; i++) {
        key = order[i]
        if (pcount[key] > 1 || ccount[key] > 1) continue # per-row field
        if (!(key in cval)) continue
        d = cval[key] - pval[key]
        pct = (pval[key] != 0) ? 100 * d / pval[key] : 0
        printf "  %-24s %14g -> %14g  (%+.1f%%)\n", key, pval[key], cval[key], pct
      }
    }'
}

diff_kind engine
diff_kind optimizer
