#!/usr/bin/env bash
# Print metric deltas between the two most recent archived bench
# snapshots
# (benches/history/<sha>-{engine,optimizer,plancache,server,reducer,standing}.json,
# written by ci.sh after each bench run).
#
# Pure shell + awk — no JSON tooling required: the snapshots are flat
# enough that `"key": number` scans cover every top-level scalar
# metric. Keys that repeat (the per-cell `results` rows) are skipped;
# the summary scalars (row counts, speedups, totals) are what trend.
# Metrics (and whole bench kinds) present only in the current snapshot
# are reported as `new` rather than silently skipped, so a freshly
# added bench shows up in the first diff after it lands. That covers
# the engine bench's pipelined-execution metrics (`chain_*` deep
# left-join-chain timings, `chain_speedup_pipelined`, and the
# `rows_materialized`/`rows_pipelined` bookkeeping) the same as any
# other top-level scalar — and likewise the columnar-kernel metrics
# (`filter_rows_per_sec*`, `build_rows_per_sec*`, the `*_speedup`
# ratios, and `zones_skipped`) emitted by the vectorized section of
# the engine bench.
set -euo pipefail
cd "$(dirname "$0")/.."

diff_kind() {
  kind="$1"
  files=$(ls -t benches/history/*-"$kind".json 2>/dev/null | head -2 || true)
  cur=$(printf '%s\n' "$files" | sed -n 1p)
  prev=$(printf '%s\n' "$files" | sed -n 2p)
  if [ -z "${cur:-}" ]; then
    echo "bench_diff: no $kind snapshots yet"
    return 0
  fi
  if [ -z "${prev:-}" ]; then
    echo "== $kind: $(basename "$cur") (new bench, no previous snapshot) =="
    awk -v cur="$cur" '
      {
        if (match($0, /"[A-Za-z0-9_]+": *-?[0-9][0-9.]*/)) {
          split(substr($0, RSTART, RLENGTH), kv, /": */)
          key = substr(kv[1], 2)
          if (!(key in count)) order[++n] = key
          count[key]++; val[key] = kv[2] + 0
        }
      }
      END {
        for (i = 1; i <= n; i++) {
          key = order[i]
          if (count[key] > 1) continue # per-row field
          printf "  %-24s %14s -> %14g  (new)\n", key, "-", val[key]
        }
      }' "$cur"
    return 0
  fi
  echo "== $kind: $(basename "$prev") -> $(basename "$cur") =="
  awk -v prev="$prev" -v cur="$cur" '
    function scan(file, is_prev,   line, key, val) {
      while ((getline line < file) > 0) {
        if (match(line, /"[A-Za-z0-9_]+": *-?[0-9][0-9.]*/)) {
          split(substr(line, RSTART, RLENGTH), kv, /": */)
          key = substr(kv[1], 2)
          val = kv[2] + 0
          if (is_prev) {
            if (!(key in pcount)) porder[++np] = key
            pcount[key]++; pval[key] = val
          } else {
            if (!(key in ccount)) corder[++nc] = key
            ccount[key]++; cval[key] = val
          }
        }
      }
      close(file)
    }
    BEGIN {
      scan(prev, 1); scan(cur, 0)
      for (i = 1; i <= np; i++) {
        key = porder[i]
        if (pcount[key] > 1 || ccount[key] > 1) continue # per-row field
        if (!(key in cval)) continue
        d = cval[key] - pval[key]
        pct = (pval[key] != 0) ? 100 * d / pval[key] : 0
        printf "  %-24s %14g -> %14g  (%+.1f%%)\n", key, pval[key], cval[key], pct
      }
      # Metrics that only exist in the current snapshot: new, not noise.
      for (i = 1; i <= nc; i++) {
        key = corder[i]
        if (ccount[key] > 1 || (key in pval)) continue
        printf "  %-24s %14s -> %14g  (new)\n", key, "-", cval[key]
      }
    }'
}

diff_kind engine
diff_kind optimizer
diff_kind plancache
diff_kind server
diff_kind reducer
diff_kind standing
