#!/usr/bin/env bash
# Regenerate (default) or verify (--check) the EXPLAIN regression
# corpus under corpus/plans/.
#
# Every deterministic testkit workload is optimized twice (DP and
# greedy), rendered to a stable text form (graph signature, cost
# estimates, EXPLAIN tree, wire-encoding hex) and stored one file per
# (case, algorithm). CI runs `--check`, which fails with a diff excerpt
# when an optimizer change alters any plan — intentional changes are
# committed by rerunning this script with no flags.
#
# `--check --perturb` inverts the gate: it perturbs catalog statistics
# first and must FAIL on a healthy corpus, proving the gate detects
# cost-model drift.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q --release -p fro-bench --bin corpus -- "$@"
