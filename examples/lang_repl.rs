//! An interactive shell for the §5 UnNest/Link language over the
//! paper's entity world: type `Select All From …` queries, get the
//! result, the query graph, and the reorderability verdict.
//!
//! ```text
//! cargo run --example lang_repl
//! fro> Select All From DEPARTMENT-->Manager Where DEPARTMENT.Location = 'Zurich'
//! ```
//!
//! Piping works too:
//! `echo "Select All From EMPLOYEE*ChildName" | cargo run --example lang_repl`

use fro_lang::{model::paper_world, parse, run::plan_query, translate};
use std::io::{self, BufRead, Write};

fn main() {
    let world = paper_world();
    println!("fro §5 shell — paper world loaded:");
    println!("  EMPLOYEE(Name, D#, Rank, *ChildName)");
    println!("  DEPARTMENT(D#, Location, -->Manager, -->Secretary, -->Audit)");
    println!("  REPORT(Title, Findings)");
    println!(
        "example: Select All From EMPLOYEE*ChildName, DEPARTMENT Where EMPLOYEE.D# = DEPARTMENT.D#"
    );
    println!("(empty line or EOF quits)\n");

    let stdin = io::stdin();
    loop {
        print!("fro> ");
        let _ = io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let src = line.trim();
        if src.is_empty() {
            break;
        }
        match parse(src).and_then(|block| translate(&block, &world)) {
            Err(e) => println!("error: {e}\n"),
            Ok(t) => {
                println!("query graph:\n{}", t.graph);
                println!("analysis: {}", t.analysis);
                let trees = fro_trees::count_implementing_trees(&t.graph, false);
                println!("implementing trees: {trees} (all equivalent — Theorem 1)");
                match plan_query(&t).map(|q| q.eval(&t.database)) {
                    Ok(Ok(rel)) => println!("result ({} rows):\n{rel}", rel.len()),
                    Ok(Err(e)) => println!("eval error: {e}\n"),
                    Err(e) => println!("plan error: {e}\n"),
                }
            }
        }
    }
    println!("bye.");
}
