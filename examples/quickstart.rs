//! Quickstart: query graphs, implementing trees, and Theorem 1.
//!
//! Run with `cargo run --example quickstart`.

use fro::prelude::*;
use fro_trees::canonical_tree;

fn main() {
    // ------------------------------------------------------------------
    // 1. A join/outerjoin query (Example 1 of the paper), deliberately
    //    written in the expensive association: R1 − (R2 → R3).
    // ------------------------------------------------------------------
    let q = Query::rel("R1").join(
        Query::rel("R2").outerjoin(Query::rel("R3"), Pred::eq_attr("R2.k2", "R3.k3")),
        Pred::eq_attr("R1.k1", "R2.k2"),
    );
    println!("query      : {}", q.shape());

    // ------------------------------------------------------------------
    // 2. Its query graph abstracts the association away.
    // ------------------------------------------------------------------
    let graph = graph_of(&q).expect("graph is defined");
    println!("query graph:\n{graph}");

    // ------------------------------------------------------------------
    // 3. Theorem 1: nice graph + strong predicates ⇒ freely reorderable.
    // ------------------------------------------------------------------
    let analysis = fro::core::analyze(&q, Policy::Paper);
    println!("analysis   : {analysis}");
    assert!(analysis.is_freely_reorderable());

    // ------------------------------------------------------------------
    // 4. Every implementing tree of the graph evaluates identically.
    // ------------------------------------------------------------------
    let trees = enumerate_trees(&graph, EnumLimit::default()).unwrap();
    println!("implementing trees ({}):", trees.len());
    for t in &trees {
        println!("  {}", t.shape());
    }

    let mut db = Database::new();
    db.insert(Relation::from_ints("R1", &["k1"], &[&[0]]));
    db.insert(Relation::from_ints("R2", &["k2"], &[&[0], &[1], &[2]]));
    db.insert(Relation::from_ints("R3", &["k3"], &[&[1], &[2], &[9]]));
    let results: Vec<Relation> = trees.iter().map(|t| t.eval(&db).unwrap()).collect();
    for r in &results[1..] {
        assert!(r.set_eq(&results[0]), "Theorem 1 violated?!");
    }
    println!("\nall {} trees agree; result:", trees.len());
    println!("{}", results[0]);

    // ------------------------------------------------------------------
    // 5. The optimizer exploits the freedom: same result, better plan.
    // ------------------------------------------------------------------
    let mut storage = Storage::from_database(&db);
    for (t, a) in [("R1", "R1.k1"), ("R2", "R2.k2"), ("R3", "R3.k3")] {
        storage.create_index(t, &[fro::algebra::Attr::parse(a)]);
    }
    let catalog = Catalog::from_storage(&storage);
    let optimized = optimize(&q, &catalog, Policy::Paper).unwrap();
    println!("chosen plan (reordered = {}):", optimized.reordered);
    println!("{}", optimized.plan.explain());
    let mut stats = ExecStats::new();
    let out = execute(&optimized.plan, &storage, &mut stats).unwrap();
    assert!(out.set_eq(&results[0]));
    println!("execution counters: {stats}");

    // A fun aside: canonical forms identify mirror-image join trees.
    let mirrored = Query::rel("R2").join(Query::rel("R1"), Pred::eq_attr("R1.k1", "R2.k2"));
    let original = Query::rel("R1").join(Query::rel("R2"), Pred::eq_attr("R1.k1", "R2.k2"));
    assert_eq!(canonical_tree(&mirrored), canonical_tree(&original));
    println!("\nok.");
}
