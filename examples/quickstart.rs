//! Quickstart: query graphs, implementing trees, Theorem 1, and the
//! `Session` front door with its catalog-owned plan cache.
//!
//! Run with `cargo run --example quickstart`.

use fro::prelude::*;
use fro_trees::canonical_tree;

fn main() {
    // ------------------------------------------------------------------
    // 1. A join/outerjoin query (Example 1 of the paper), deliberately
    //    written in the expensive association: R1 − (R2 → R3).
    // ------------------------------------------------------------------
    let q = Query::rel("R1").join(
        Query::rel("R2").outerjoin(Query::rel("R3"), Pred::eq_attr("R2.k2", "R3.k3")),
        Pred::eq_attr("R1.k1", "R2.k2"),
    );
    println!("query      : {}", q.shape());

    // ------------------------------------------------------------------
    // 2. Its query graph abstracts the association away.
    // ------------------------------------------------------------------
    let graph = graph_of(&q).expect("graph is defined");
    println!("query graph:\n{graph}");

    // ------------------------------------------------------------------
    // 3. Theorem 1: nice graph + strong predicates ⇒ freely reorderable.
    // ------------------------------------------------------------------
    let analysis = fro::core::analyze(&q, Policy::Paper);
    println!("analysis   : {analysis}");
    assert!(analysis.is_freely_reorderable());

    // ------------------------------------------------------------------
    // 4. Every implementing tree of the graph evaluates identically.
    // ------------------------------------------------------------------
    let trees = enumerate_trees(&graph, EnumLimit::default()).unwrap();
    println!("implementing trees ({}):", trees.len());
    for t in &trees {
        println!("  {}", t.shape());
    }

    let mut db = Database::new();
    db.insert(Relation::from_ints("R1", &["k1"], &[&[0]]));
    db.insert(Relation::from_ints("R2", &["k2"], &[&[0], &[1], &[2]]));
    db.insert(Relation::from_ints("R3", &["k3"], &[&[1], &[2], &[9]]));
    let results: Vec<Relation> = trees.iter().map(|t| t.eval(&db).unwrap()).collect();
    for r in &results[1..] {
        assert!(r.set_eq(&results[0]), "Theorem 1 violated?!");
    }
    println!("\nall {} trees agree; result:", trees.len());
    println!("{}", results[0]);

    // ------------------------------------------------------------------
    // 5. The Session front door: one object owns the catalog (with its
    //    plan cache), the storage, the policy and the exec config.
    // ------------------------------------------------------------------
    let session = Session::new();
    for (name, rel) in db.iter() {
        session.insert_table(name, rel.clone());
    }
    for (t, a) in [("R1", "R1.k1"), ("R2", "R2.k2"), ("R3", "R3.k3")] {
        session.create_index(t, &[fro::algebra::Attr::parse(a)]);
    }

    let prepared = session.prepare(&q).expect("optimizes");
    println!(
        "chosen plan (reordered = {}):",
        prepared.optimized().reordered
    );
    println!("{}", prepared.explain());
    let (out, stats) = prepared.run_with_stats().expect("executes");
    assert!(out.set_eq(&results[0]));
    println!("execution counters: {stats}");
    drop(prepared);

    // ------------------------------------------------------------------
    // 6. Prepare the same query again: the catalog epoch is unchanged,
    //    so the whole plan comes out of the cache — zero enumeration.
    // ------------------------------------------------------------------
    let warm = session.prepare(&q).expect("optimizes");
    assert_eq!(warm.optimized().pairs_examined, 0);
    assert!(warm.optimized().cache.hits >= 1);
    println!(
        "warm prepare: pairs_examined = {}, session cache: {}",
        warm.optimized().pairs_examined,
        session.cache_stats()
    );
    drop(warm);

    // A statistics change bumps the epoch and invalidates stale plans.
    session.set_distinct(&fro::algebra::Attr::parse("R2.k2"), 1_000_000);
    let replanned = session.prepare(&q).expect("optimizes");
    assert!(replanned.optimized().pairs_examined > 0);
    println!(
        "after stats change: re-planned with {} pairs examined",
        replanned.optimized().pairs_examined
    );

    // A fun aside: canonical forms identify mirror-image join trees.
    let mirrored = Query::rel("R2").join(Query::rel("R1"), Pred::eq_attr("R1.k1", "R2.k2"));
    let original = Query::rel("R1").join(Query::rel("R2"), Pred::eq_attr("R1.k1", "R2.k2"));
    assert_eq!(canonical_tree(&mirrored), canonical_tree(&original));
    println!("\nok.");
}
