//! A tour of the cost-based optimizer (§6.1): chain workloads with
//! skewed cardinalities, plan-space sizes, and the benefit of free
//! reordering measured in executed work.
//!
//! Run with `cargo run --release --example optimizer_tour`.

use fro::prelude::*;
use fro_testkit::workloads::chain;
use fro_trees::count_implementing_trees;

fn main() {
    println!(
        "{:<6} {:>14} {:>14} {:>14} {:>8}",
        "chain", "trees", "syntactic", "reordered", "ratio"
    );
    for k in 3..=7 {
        let (storage, catalog, q) = chain(k, 32, 7);
        let graph = graph_of(&q).unwrap();
        let n_trees = count_implementing_trees(&graph, false);

        // Syntactic: execute the user's left-deep association.
        let syn_plan = fro::core::optimizer::lower(&q, &catalog).unwrap();
        let mut syn_stats = ExecStats::new();
        let syn_out = execute(&syn_plan, &storage, &mut syn_stats).unwrap();

        // Reordered: full DP over the query graph.
        let optimized = optimize(&q, &catalog, Policy::Paper).unwrap();
        assert!(optimized.reordered);
        let mut dp_stats = ExecStats::new();
        let dp_out = execute(&optimized.plan, &storage, &mut dp_stats).unwrap();
        assert!(syn_out.set_eq(&dp_out), "plans must agree");

        let ratio = syn_stats.work() as f64 / dp_stats.work().max(1) as f64;
        println!(
            "{:<6} {:>14} {:>14} {:>14} {:>7.1}×",
            k,
            n_trees,
            syn_stats.work(),
            dp_stats.work(),
            ratio
        );
    }

    // Show one chosen plan in full, with EXPLAIN ANALYZE row counts.
    let (storage, catalog, q) = chain(5, 32, 7);
    let optimized = optimize(&q, &catalog, Policy::Paper).unwrap();
    println!("\nchosen plan for the 5-chain (EXPLAIN ANALYZE):");
    let (_, report) = fro::exec::explain_analyze(&optimized.plan, &storage).unwrap();
    println!("{report}");
    println!(
        "estimated cost {:.0}, estimated rows {:.0}",
        optimized.est_cost, optimized.est_rows
    );

    // Greedy reordering scales past the exhaustive-DP cap (18
    // relations): a 20-relation chain with 1:1 keys.
    let k = 20;
    let mut storage = Storage::new();
    for i in 0..k {
        let name = format!("R{i}");
        let rows: Vec<Vec<Value>> = (0..50).map(|j| vec![Value::Int(j)]).collect();
        storage.insert(&name, Relation::from_values(&name, &["k"], rows));
        storage.create_index(&name, &[fro::algebra::Attr::new(&name, "k")]);
    }
    let catalog = Catalog::from_storage(&storage);
    let mut q = Query::rel("R0");
    for i in 1..k {
        q = q.join(
            Query::rel(format!("R{i}")),
            Pred::eq_attr(&format!("R{}.k", i - 1), &format!("R{i}.k")),
        );
    }
    let optimized = optimize(&q, &catalog, Policy::Paper).unwrap();
    assert!(optimized.reordered, "greedy path still reorders");
    let mut stats = ExecStats::new();
    let out = execute(&optimized.plan, &storage, &mut stats).unwrap();
    println!(
        "{k}-relation chain reordered greedily (past the DP cap): {} output rows, {} work units",
        out.len(),
        stats.work()
    );
}
