//! The paper's motivating scenario: list departments with their
//! employees, *keeping departments that have no employees* — an
//! outerjoin — then chase a second outerjoin to office assignments,
//! and watch reordering change the cost by orders of magnitude
//! (Example 1's asymmetry) while the result stays fixed (Theorem 1).
//!
//! Run with `cargo run --release --example department_employees`.

use fro::prelude::*;
use fro_algebra::Attr;

fn build_storage(n_emps: i64) -> Storage {
    let mut storage = Storage::new();
    // A handful of departments; employees reference them; offices
    // reference employees 1:1 (some employees have no office).
    storage.insert(
        "Dept",
        Relation::from_values(
            "Dept",
            &["id", "name"],
            vec![
                vec![Value::Int(1), Value::str("Research")],
                vec![Value::Int(2), Value::str("Sales")],
                vec![Value::Int(3), Value::str("Archives")], // no employees
            ],
        ),
    );
    let emps: Vec<Vec<Value>> = (0..n_emps)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::str(format!("emp{i}")),
                Value::Int(if i % 2 == 0 { 1 } else { 2 }),
            ]
        })
        .collect();
    storage.insert(
        "Emp",
        Relation::from_values("Emp", &["id", "name", "dept"], emps),
    );
    let offices: Vec<Vec<Value>> = (0..n_emps)
        .filter(|i| i % 3 != 0) // a third of employees have no office
        .map(|i| vec![Value::Int(i), Value::Int(100 + i)])
        .collect();
    storage.insert(
        "Office",
        Relation::from_values("Office", &["emp", "room"], offices),
    );
    storage.create_index("Dept", &[Attr::parse("Dept.id")]);
    storage.create_index("Emp", &[Attr::parse("Emp.dept")]);
    storage.create_index("Emp", &[Attr::parse("Emp.id")]);
    storage.create_index("Office", &[Attr::parse("Office.emp")]);
    storage
}

fn main() {
    // --------------------------------------------------------------
    // Part 1: small scale — all departments listed, even empty ones.
    // --------------------------------------------------------------
    let storage = build_storage(6);
    let db = storage.to_database();
    let q = Query::rel("Dept")
        .outerjoin(Query::rel("Emp"), Pred::eq_attr("Dept.id", "Emp.dept"))
        .outerjoin(Query::rel("Office"), Pred::eq_attr("Emp.id", "Office.emp"));
    println!("query: {}", q.shape());
    let out = q.eval(&db).unwrap();
    println!("{out}");
    // Archives shows up once, null-padded.
    assert!(out
        .rows()
        .iter()
        .any(|t| t.values().contains(&Value::str("Archives"))));

    let analysis = fro::core::analyze(&q, Policy::Paper);
    println!("analysis: {analysis}\n");
    assert!(analysis.is_freely_reorderable());

    // --------------------------------------------------------------
    // Part 2: Example 1 at scale — the association changes the number
    // of tuples retrieved from ~2n to a constant, the optimizer finds
    // the constant-cost plan from the *bad* association.
    // --------------------------------------------------------------
    let n: usize = 200_000;
    let ex = fro_testkit::workloads::example1(n);

    // Evaluate the bad association syntactically (no reordering).
    let bad_plan = fro::core::optimizer::lower(&ex.bad_query, &ex.catalog).unwrap();
    let mut bad_stats = ExecStats::new();
    let bad_out = execute(&bad_plan, &ex.storage, &mut bad_stats).unwrap();

    // And let the optimizer reorder it.
    let optimized = optimize(&ex.bad_query, &ex.catalog, Policy::Paper).unwrap();
    assert!(optimized.reordered);
    let mut good_stats = ExecStats::new();
    let good_out = execute(&optimized.plan, &ex.storage, &mut good_stats).unwrap();
    assert!(bad_out.set_eq(&good_out));

    println!("Example 1 at n = {n}:");
    println!(
        "  syntactic R1 − (R2 → R3): {:>12} tuples retrieved (paper: 2n+1 = {})",
        bad_stats.tuples_retrieved,
        2 * n + 1
    );
    println!(
        "  reordered (R1 − R2) → R3: {:>12} tuples retrieved (paper: 3)",
        good_stats.tuples_retrieved
    );
    assert_eq!(good_stats.tuples_retrieved, 3);
    assert!(bad_stats.tuples_retrieved >= 2 * n as u64);
    println!(
        "  speedup: {:.0}×",
        bad_stats.tuples_retrieved as f64 / good_stats.tuples_retrieved as f64
    );

    // --------------------------------------------------------------
    // Part 3: the Count motivation (§1.1, [MURA89]): employees per
    // department *including zero counts* needs the outerjoin — a plain
    // join silently drops the Archives department.
    // --------------------------------------------------------------
    let storage = build_storage(6);
    let db = storage.to_database();
    let with_oj = Query::rel("Dept")
        .outerjoin(Query::rel("Emp"), Pred::eq_attr("Dept.id", "Emp.dept"))
        .group_count(vec![Attr::parse("Dept.name")], Some(Attr::parse("Emp.id")));
    let with_join = Query::rel("Dept")
        .join(Query::rel("Emp"), Pred::eq_attr("Dept.id", "Emp.dept"))
        .group_count(vec![Attr::parse("Dept.name")], Some(Attr::parse("Emp.id")));
    println!("\nemployee counts via outerjoin (correct):");
    println!("{}", with_oj.eval(&db).unwrap());
    println!("employee counts via plain join (Archives lost):");
    println!("{}", with_join.eval(&db).unwrap());
    assert_eq!(with_oj.eval(&db).unwrap().len(), 3);
    assert_eq!(with_join.eval(&db).unwrap().len(), 2);
}
