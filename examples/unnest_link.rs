//! §5 of the paper: a language whose every query block is freely
//! reorderable. Reproduces the paper's three example queries over the
//! UnNest (`*`) and Link (`-->`) operators, executed through the
//! `Session` front door (optimizer + engine + plan cache).
//!
//! Run with `cargo run --example unnest_link`.

use fro::Session;
use fro_lang::{model::paper_world, parse, translate};

fn main() {
    let session = Session::from_entity_db(paper_world());

    // ----------------------------------------------------------------
    // Query 1 (§5.1): every employee of a Queretaro department, one
    // row per child, employees without children kept with a null.
    // ----------------------------------------------------------------
    let q1 = "Select All From EMPLOYEE*ChildName, DEPARTMENT \
              Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'";
    println!("Q1: {q1}");
    let out = session.query(q1).unwrap().run().unwrap();
    println!("{out}");

    // ----------------------------------------------------------------
    // Query 2 (§5.1): Zurich departments with their manager's employee
    // attributes and the audit report (null-padded when absent).
    // ----------------------------------------------------------------
    let q2 = "Select All From DEPARTMENT-->Manager-->Audit \
              Where DEPARTMENT.Location = 'Zurich'";
    println!("Q2: {q2}");
    let out = session.query(q2).unwrap().run().unwrap();
    println!("{out}");

    // ----------------------------------------------------------------
    // Query 3 (§5.1, the "prosecutor" query): joins both paths.
    // ----------------------------------------------------------------
    let q3 = "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit \
              Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' \
              and EMPLOYEE.Rank > 10";
    println!("Q3: {q3}");
    let prepared = session.query(q3).unwrap();
    println!("chosen plan:\n{}", prepared.explain());
    let out = prepared.run().unwrap();
    println!("{out}");
    drop(prepared);

    // Repeating a block keeps the catalog epoch (the tables resync
    // without a statistics change), so the plan cache answers.
    let again = session.query(q3).unwrap();
    assert_eq!(again.optimized().pairs_examined, 0);
    drop(again);
    println!("re-issued Q3: plan cache hit — {}", session.cache_stats());

    // ----------------------------------------------------------------
    // §5.3: the translation of every block is freely reorderable —
    // inspect the prosecutor query's graph to see why (outerjoin edges
    // point outward to fresh derived relations, predicates strong).
    // ----------------------------------------------------------------
    let block = parse(q3).unwrap();
    let t = translate(&block, &paper_world()).unwrap();
    println!("prosecutor query graph:\n{}", t.graph);
    println!("analysis: {}", t.analysis);
    assert!(t.analysis.is_freely_reorderable());

    let trees = fro_trees::enumerate_trees(&t.graph, fro_trees::EnumLimit::default()).unwrap();
    println!(
        "the optimizer may choose among {} implementing trees — all equivalent.",
        trees.len()
    );
}
