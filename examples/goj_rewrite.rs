//! Beyond free reorderability: Example 2's `X → (Y − Z)` cannot be
//! reassociated by the result-preserving basic transforms — the two
//! implementing trees of its graph genuinely disagree. This example
//! shows (a) the disagreement, (b) the §4 simplification escape hatch
//! when a strong predicate appears above, and (c) the §6.2 generalized
//! outerjoin rewrite (identity 15) that recovers the other evaluation
//! order anyway.
//!
//! Run with `cargo run --example goj_rewrite`.

use fro::prelude::*;
use fro_algebra::{CmpOp, Schema};
use fro_core::goj_reorder::oj_of_join_to_goj;
use fro_core::simplify::simplify;
use std::sync::Arc;

fn main() {
    let pxy = Pred::eq_attr("X.a", "Y.b");
    let pyz = Pred::eq_attr("Y.b2", "Z.c");

    // Example 2's database: one tuple each, (y, z) not matching.
    let mut db = Database::new();
    db.insert(Relation::from_ints("X", &["a"], &[&[1]]));
    db.insert(Relation::from_ints("Y", &["b", "b2"], &[&[1, 7]]));
    db.insert(Relation::from_ints("Z", &["c"], &[&[99]]));

    // ----------------------------------------------------------------
    // (a) The two implementing trees disagree.
    // ----------------------------------------------------------------
    let q1 = Query::rel("X").outerjoin(
        Query::rel("Y").join(Query::rel("Z"), pyz.clone()),
        pxy.clone(),
    );
    let q2 = Query::rel("X")
        .outerjoin(Query::rel("Y"), pxy.clone())
        .join(Query::rel("Z"), pyz.clone());
    println!("q1 = {}", q1.shape());
    println!("q2 = {}", q2.shape());
    let r1 = q1.eval(&db).unwrap();
    let r2 = q2.eval(&db).unwrap();
    println!("eval(q1):\n{r1}");
    println!("eval(q2):\n{r2}");
    assert!(!r1.set_eq(&r2), "Example 2: the trees must disagree");

    let analysis = fro::core::analyze(&q1, Policy::Paper);
    println!("analysis: {analysis}");
    assert!(!analysis.is_freely_reorderable());

    // ----------------------------------------------------------------
    // (b) §4: a strong restriction above converts the outerjoin into a
    // join, landing back in the freely-reorderable class.
    // ----------------------------------------------------------------
    let restricted = q1.clone().restrict(Pred::cmp_lit("Y.b", CmpOp::Gt, 0));
    let (simplified, events) = simplify(&restricted);
    println!("\n§4 simplification of σ[Y.b > 0](q1):");
    for e in &events {
        println!("  {e}");
    }
    println!("  result: {}", simplified.shape());
    assert!(!events.is_empty());
    assert!(
        restricted
            .eval(&db)
            .unwrap()
            .set_eq(&simplified.eval(&db).unwrap()),
        "§4 rewrite must preserve the result"
    );

    // ----------------------------------------------------------------
    // (c) §6.2: identity 15 turns q1 into (X → Y) GOJ[sch(X)] Z, an
    // equivalent plan that evaluates the X–Y outerjoin *first*.
    // ----------------------------------------------------------------
    let mut catalog = Catalog::new();
    catalog.add_table("X", Arc::new(Schema::of_relation("X", &["a"])), 1);
    catalog.add_table("Y", Arc::new(Schema::of_relation("Y", &["b", "b2"])), 1);
    catalog.add_table("Z", Arc::new(Schema::of_relation("Z", &["c"])), 1);
    let rewritten = oj_of_join_to_goj(&q1, &catalog).expect("identity 15 applies");
    println!("\n§6.2 rewrite (identity 15): {}", rewritten.shape());
    let r3 = rewritten.eval(&db).unwrap();
    println!("eval(rewritten):\n{r3}");
    assert!(r1.set_eq(&r3), "identity 15 must preserve the result");
    println!("ok: the generalized outerjoin recovered the other order.");
}
