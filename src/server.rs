//! A wire-protocol front door: serve one [`SharedDb`] to many TCP
//! clients.
//!
//! [`Server::start`] binds a listener and spawns one handler thread
//! per connection; each handler holds its own cheap [`Session`] over
//! the shared database, so every client benefits from — and
//! contributes to — the same cross-query plan cache, while the
//! copy-on-write catalog keeps concurrent readers consistent.
//!
//! The conversation is the `fro-wire` [`proto`](fro_wire::proto)
//! grammar: length-prefixed frames, a versioned
//! [`Request`](fro_wire::Request) (§5 source text, an encoded plan
//! blob, a standing-query registration or poll, or a ping), and a
//! response stream of result scheme, row batches and final work
//! counters — or one typed error frame carrying the stable
//! [`FroError::code`] string. [`Client`] is the matching blocking
//! connector that reassembles the stream into a
//! [`Relation`] + [`ExecStats`].
//!
//! Standing queries registered over the wire live in the shared
//! database, not the connection: two clients registering
//! alpha-equivalent text receive the same [`StandingId`] and both
//! observe the one incrementally-maintained view.

use crate::error::FroError;
use crate::session::Session;
use crate::shared::SharedDb;
use crate::standing::{Registered, StandingId};
use fro_algebra::{Attr, Relation, Schema, Tuple};
use fro_core::Policy;
use fro_exec::{execute_with, ExecConfig, ExecStats, PhysPlan};
use fro_lang::EntityDb;
use fro_wire::{
    decode_plan, decode_request, decode_response, encode_plan, encode_request, encode_response,
    read_frame, write_frame, Interner, Request, Response, WireError, ROWS_PER_BATCH,
};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-connection session configuration for a [`Server`]: every
/// accepted connection gets a fresh [`Session`] with this policy,
/// execution config and (optional) entity model.
#[derive(Debug, Clone, Default)]
pub struct ServerOptions {
    /// Reordering policy for every connection's optimizer.
    pub policy: Policy,
    /// Execution configuration for every connection's engine.
    pub exec: ExecConfig,
    /// Entity model enabling §5 text queries ([`Request::Text`]);
    /// without one, text queries answer with `SESSION_NO_ENTITY_MODEL`.
    pub edb: Option<EntityDb>,
}

/// A running multi-threaded query server over one [`SharedDb`].
///
/// Dropping the server shuts it down (stops accepting; connections
/// already being served finish their current request and close on the
/// next read).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start accepting connections, each served by its own thread and
    /// [`Session`] over `db`.
    ///
    /// # Errors
    /// [`io::Error`] when the address cannot be bound.
    pub fn start(
        addr: impl ToSocketAddrs,
        db: Arc<SharedDb>,
        opts: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept = std::thread::spawn(move || {
            loop {
                let (stream, _) = match listener.accept() {
                    Ok(conn) => conn,
                    Err(_) => continue,
                };
                if stop_accept.load(Ordering::SeqCst) {
                    break; // the shutdown self-connection lands here
                }
                // Frames are small and latency-bound; don't let Nagle
                // batch them against the client's delayed ACKs.
                let _ = stream.set_nodelay(true);
                let session = connection_session(&db, &opts);
                let stop_conn = Arc::clone(&stop_accept);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &session, &stop_conn);
                });
            }
        });
        Ok(Server {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and wait for the accept loop to
    /// exit. Idempotent; also invoked on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            // Unblock the accept loop; it notices the flag and exits.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn connection_session(db: &Arc<SharedDb>, opts: &ServerOptions) -> Session {
    let session = Session::connect(db)
        .with_policy(opts.policy)
        .with_exec_config(opts.exec);
    match &opts.edb {
        Some(edb) => session.with_entity_db(edb.clone()),
        None => session,
    }
}

/// Serve one connection until EOF, a fatal I/O error, a protocol
/// desync, or server shutdown. Query failures are *not* fatal: they
/// answer with a typed [`Response::Error`] frame and the connection
/// stays usable.
fn serve_connection(
    stream: TcpStream,
    session: &Session,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match decode_request(&payload) {
            Ok(Request::Ping) => send(&mut writer, &Response::Pong)?,
            Ok(Request::Text(src)) => match run_text(session, &src) {
                Ok((rel, stats)) => stream_result(&mut writer, &rel, stats)?,
                Err(e) => send_error(&mut writer, &e)?,
            },
            Ok(Request::Plan(blob)) => match run_plan(session, &blob) {
                Ok((rel, stats)) => stream_result(&mut writer, &rel, stats)?,
                Err(e) => send_error(&mut writer, &e)?,
            },
            Ok(Request::Register(src)) => match session.register_standing_src(&src) {
                Ok(r) => send(
                    &mut writer,
                    &Response::Registered {
                        id: r.id.as_u64(),
                        shared: r.shared,
                    },
                )?,
                Err(e) => send_error(&mut writer, &e)?,
            },
            Ok(Request::Poll(id)) => match session.poll_standing(StandingId::from_u64(id)) {
                Ok((rel, stats)) => stream_view(&mut writer, &rel, stats)?,
                Err(e) => send_error(&mut writer, &e)?,
            },
            Err(e) => {
                // An undecodable request means the framing is no
                // longer trustworthy: report and hang up.
                send_error(&mut writer, &FroError::Wire(e))?;
                break;
            }
        }
    }
    Ok(())
}

fn run_text(session: &Session, src: &str) -> Result<(Relation, ExecStats), FroError> {
    session.query(src)?.run_with_stats()
}

fn run_plan(session: &Session, blob: &[u8]) -> Result<(Relation, ExecStats), FroError> {
    let state = session.shared().snapshot();
    let plan = decode_plan(blob, state.storage().interner())?;
    let mut stats = ExecStats::new();
    let out = execute_with(&plan, state.storage(), &mut stats, &session.exec_config())?;
    Ok((out, stats))
}

fn send(writer: &mut BufWriter<TcpStream>, resp: &Response) -> io::Result<()> {
    let payload = encode_response(resp)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    write_frame(writer, &payload)?;
    writer.flush()
}

fn send_error(writer: &mut BufWriter<TcpStream>, e: &FroError) -> io::Result<()> {
    send(
        writer,
        &Response::Error {
            code: e.code().to_string(),
            message: e.to_string(),
        },
    )
}

/// Stream one result: `Schema`, zero or more `Rows` batches of at most
/// [`ROWS_PER_BATCH`], then `Done` with the engine counters.
fn stream_result(
    writer: &mut BufWriter<TcpStream>,
    rel: &Relation,
    stats: ExecStats,
) -> io::Result<()> {
    stream_batches(writer, rel, stats, false)
}

/// Like [`stream_result`] but the batches are `ViewRows` frames, so the
/// client can tell a standing-view snapshot from an ad-hoc result.
fn stream_view(
    writer: &mut BufWriter<TcpStream>,
    rel: &Relation,
    stats: ExecStats,
) -> io::Result<()> {
    stream_batches(writer, rel, stats, true)
}

fn stream_batches(
    writer: &mut BufWriter<TcpStream>,
    rel: &Relation,
    stats: ExecStats,
    as_view: bool,
) -> io::Result<()> {
    let cols: Vec<(String, String)> = rel
        .schema()
        .attrs()
        .iter()
        .map(|a| (a.rel().to_string(), a.name().to_string()))
        .collect();
    send(writer, &Response::Schema(cols))?;
    for chunk in rel.rows().chunks(ROWS_PER_BATCH.max(1)) {
        let batch: Vec<Vec<fro_algebra::Value>> =
            chunk.iter().map(|t| t.values().to_vec()).collect();
        let resp = if as_view {
            Response::ViewRows(batch)
        } else {
            Response::Rows(batch)
        };
        send(writer, &resp)?;
    }
    send(writer, &Response::Done(Box::new(stats)))
}

fn io_err(e: &io::Error) -> FroError {
    FroError::Wire(WireError::Io(e.to_string()))
}

/// A blocking client for a [`Server`]: one TCP connection speaking the
/// `fro-wire` query/result protocol.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    /// [`FroError::Wire`] (as `WIRE_IO`) when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, FroError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err(&e))?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().map_err(|e| io_err(&e))?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Round-trip a ping.
    ///
    /// # Errors
    /// [`FroError::Wire`] on transport or protocol failures.
    pub fn ping(&mut self) -> Result<(), FroError> {
        self.request(&Request::Ping)?;
        match self.receive()? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Run a §5 UnNest/Link text query on the server, returning the
    /// full result and the engine's work counters.
    ///
    /// # Errors
    /// [`FroError::Remote`] with the server's stable code when the
    /// query fails remotely; [`FroError::Wire`] on transport trouble.
    pub fn query(&mut self, src: &str) -> Result<(Relation, ExecStats), FroError> {
        self.request(&Request::Text(src.to_string()))?;
        self.collect_result()
    }

    /// Run an already-optimized physical plan on the server. The plan
    /// is encoded against `it`, which must agree with the server's
    /// interner (same tables loaded in the same order) — the id-only
    /// wire format resolves names at the server.
    ///
    /// # Errors
    /// [`FroError::Wire`] when the plan is not serializable;
    /// [`FroError::Remote`] when the server rejects or fails it.
    pub fn query_plan(
        &mut self,
        plan: &PhysPlan,
        it: &Interner,
    ) -> Result<(Relation, ExecStats), FroError> {
        let blob = encode_plan(plan, it)?;
        self.request(&Request::Plan(blob))?;
        self.collect_result()
    }

    /// Register a §5 text query as a standing query on the server's
    /// shared database. The returned [`Registered`] carries the view id
    /// (stable across clients: alpha-equivalent registrations from any
    /// connection get the same id) and whether an existing view was
    /// shared rather than built fresh.
    ///
    /// # Errors
    /// [`FroError::Remote`] with the server's stable code when the
    /// query fails remotely; [`FroError::Wire`] on transport trouble.
    pub fn register(&mut self, src: &str) -> Result<Registered, FroError> {
        self.request(&Request::Register(src.to_string()))?;
        match self.receive()? {
            Response::Registered { id, shared } => Ok(Registered {
                id: StandingId::from_u64(id),
                shared,
            }),
            Response::Error { code, message } => Err(FroError::Remote { code, message }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the current contents of a standing view, refreshing it
    /// first if base tables changed underneath. Rows arrive as
    /// `ViewRows` batches in the view's canonical (sorted) order.
    ///
    /// # Errors
    /// [`FroError::Remote`] as `STANDING_UNKNOWN` when the id was never
    /// issued by this server's database; [`FroError::Wire`] on
    /// transport trouble.
    pub fn poll(&mut self, id: StandingId) -> Result<(Relation, ExecStats), FroError> {
        self.request(&Request::Poll(id.as_u64()))?;
        self.collect_result()
    }

    fn request(&mut self, req: &Request) -> Result<(), FroError> {
        write_frame(&mut self.writer, &encode_request(req)).map_err(|e| io_err(&e))?;
        self.writer.flush().map_err(|e| io_err(&e))
    }

    fn receive(&mut self) -> Result<Response, FroError> {
        let payload = read_frame(&mut self.reader)
            .map_err(|e| io_err(&e))?
            .ok_or_else(|| FroError::Wire(WireError::Io("server closed connection".into())))?;
        Ok(decode_response(&payload)?)
    }

    /// Drain one result stream (`Schema`, `Rows`/`ViewRows`…, `Done`)
    /// into a relation, surfacing a server `Error` frame as
    /// [`FroError::Remote`].
    fn collect_result(&mut self) -> Result<(Relation, ExecStats), FroError> {
        let cols = match self.receive()? {
            Response::Schema(cols) => cols,
            Response::Error { code, message } => return Err(FroError::Remote { code, message }),
            other => return Err(unexpected(&other)),
        };
        let attrs: Vec<Attr> = cols.iter().map(|(r, n)| Attr::new(r, n)).collect();
        let schema = Schema::new(attrs).map_err(|e| FroError::Exec(e.into()))?;
        let mut rows: Vec<Tuple> = Vec::new();
        loop {
            match self.receive()? {
                Response::Rows(batch) | Response::ViewRows(batch) => {
                    rows.extend(batch.into_iter().map(Tuple::new));
                }
                Response::Done(stats) => {
                    let rel = Relation::new(Arc::new(schema), rows)
                        .map_err(|e| FroError::Exec(e.into()))?;
                    return Ok((rel, *stats));
                }
                Response::Error { code, message } => {
                    return Err(FroError::Remote { code, message })
                }
                other => return Err(unexpected(&other)),
            }
        }
    }
}

fn unexpected(resp: &Response) -> FroError {
    FroError::Wire(WireError::Io(format!(
        "unexpected response frame: {resp:?}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_lang::model::paper_world;

    fn served_world() -> (Server, Arc<SharedDb>) {
        let db = SharedDb::new();
        let server = Server::start(
            "127.0.0.1:0",
            Arc::clone(&db),
            ServerOptions {
                edb: Some(paper_world()),
                ..ServerOptions::default()
            },
        )
        .expect("bind loopback");
        (server, db)
    }

    const SRC: &str = "Select All From EMPLOYEE*ChildName, DEPARTMENT \
                       Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'";

    #[test]
    fn loopback_round_trip_matches_local_execution() {
        let (server, db) = served_world();
        let mut client = Client::connect(server.addr()).unwrap();
        client.ping().unwrap();
        let (remote, stats) = client.query(SRC).unwrap();
        // The same query through a local session over the same shared
        // state is bit-identical.
        let local = db
            .session()
            .with_entity_db(paper_world())
            .query(SRC)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(remote, local);
        assert_eq!(remote.len(), 3);
        assert!(stats.rows_output >= remote.len() as u64);
    }

    #[test]
    fn remote_errors_carry_stable_codes_and_keep_the_connection() {
        let (server, _db) = served_world();
        let mut client = Client::connect(server.addr()).unwrap();
        let err = client.query("From nothing").unwrap_err();
        match err {
            FroError::Remote { ref code, .. } => assert_eq!(code, "LANG_PARSE"),
            other => panic!("expected remote error, got {other:?}"),
        }
        assert_eq!(err.code(), "SERVER_REMOTE");
        // The connection survives a query error.
        let (out, _) = client.query(SRC).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn plan_requests_execute_against_shared_tables() {
        use fro_algebra::{Pred, Query};
        use fro_core::optimizer::optimize;

        let db = SharedDb::new();
        let session = db.session();
        session.insert_table("R1", Relation::from_ints("R1", &["k1"], &[&[0]]));
        session.insert_table("R2", Relation::from_ints("R2", &["k2"], &[&[0], &[1]]));
        let server = Server::start("127.0.0.1:0", Arc::clone(&db), ServerOptions::default())
            .expect("bind loopback");
        let q = Query::rel("R1").join(Query::rel("R2"), Pred::eq_attr("R1.k1", "R2.k2"));
        let state = db.snapshot();
        let optimized = optimize(&q, state.catalog(), Policy::Paper).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let (remote, _) = client
            .query_plan(&optimized.plan, state.storage().interner())
            .unwrap();
        let local = session.prepare(&q).unwrap().run().unwrap();
        assert_eq!(remote, local);
        drop(server);
    }

    #[test]
    fn standing_registration_is_shared_across_clients() {
        use std::collections::BTreeSet;

        let (server, db) = served_world();
        let mut a = Client::connect(server.addr()).unwrap();
        let mut b = Client::connect(server.addr()).unwrap();
        let first = a.register(SRC).unwrap();
        assert!(!first.shared, "first registration built the view");
        let second = b.register(SRC).unwrap();
        assert!(second.shared, "alpha-equivalent registration shares it");
        assert_eq!(first.id, second.id);

        // Either client polls the one view; its canonical snapshot is
        // the same row set a fresh local execution produces.
        let (view, _) = b.poll(first.id).unwrap();
        let local = db
            .session()
            .with_entity_db(paper_world())
            .query(SRC)
            .unwrap()
            .run()
            .unwrap();
        let view_set: BTreeSet<_> = view.rows().iter().cloned().collect();
        let local_set: BTreeSet<_> = local.rows().iter().cloned().collect();
        assert_eq!(view_set, local_set);
        assert_eq!(view.schema(), local.schema());

        // Polling an id nobody issued answers with the stable code and
        // leaves the connection usable.
        let err = a.poll(crate::StandingId::from_u64(999)).unwrap_err();
        match err {
            FroError::Remote { ref code, .. } => assert_eq!(code, "STANDING_UNKNOWN"),
            other => panic!("expected remote error, got {other:?}"),
        }
        a.ping().unwrap();
    }

    #[test]
    fn shutdown_is_idempotent_and_unblocks_accept() {
        let (mut server, _db) = served_world();
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        // After shutdown nobody serves this address anymore: either
        // the connect fails outright or the next request dies.
        let refused = match Client::connect(addr) {
            Err(_) => true,
            Ok(mut c) => c.ping().is_err(),
        };
        assert!(refused, "server still answering after shutdown");
    }
}
