//! The unified error type of the `fro` facade.
//!
//! Each layer of the workspace keeps its own error enum
//! ([`LangError`], [`OptError`], [`ExecError`]); the [`Session`] front
//! door folds them into one [`FroError`] so applications match on a
//! single type and log a single stable [`FroError::code`] string.
//!
//! [`Session`]: crate::Session

use fro_core::optimizer::OptError;
use fro_exec::ExecError;
use fro_lang::LangError;
use fro_wire::WireError;
use std::fmt;

/// Any failure between source text (or an algebra [`Query`]) and an
/// executed result.
///
/// [`Query`]: fro_algebra::Query
#[derive(Debug, Clone, PartialEq)]
pub enum FroError {
    /// Parsing, translation or reference evaluation of a §5 query
    /// block failed.
    Lang(LangError),
    /// The optimizer rejected the query.
    Opt(OptError),
    /// The execution engine failed (unknown table, missing index, …).
    Exec(ExecError),
    /// [`Session::query`] was called on a session constructed without
    /// an entity model ([`Session::from_entity_db`] provides one).
    ///
    /// [`Session::query`]: crate::Session::query
    /// [`Session::from_entity_db`]: crate::Session::from_entity_db
    NoEntityModel,
    /// Saving or loading a persistent plan-cache snapshot failed
    /// (filesystem trouble, or a corrupt snapshot whose header matched
    /// this catalog). A *mismatched* snapshot is not an error — loading
    /// one simply leaves the cache cold.
    Wire(WireError),
    /// A standing-query poll named an id no registration ever issued
    /// (or one issued by a *different* shared database).
    UnknownStanding(u64),
    /// A server reported a failure over the wire protocol. `code` is
    /// the remote [`FroError::code`] string (so the original failure
    /// shape survives the round trip), `message` its rendered text.
    Remote {
        /// The stable error code the server reported.
        code: String,
        /// The server's rendered error message.
        message: String,
    },
}

impl FroError {
    /// A stable machine-readable code, one per failure shape. Codes
    /// never change meaning across releases; new codes may be added.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            FroError::Lang(e) => match e {
                LangError::Lex { .. } => "LANG_LEX",
                LangError::Parse(_) => "LANG_PARSE",
                LangError::UnknownType(_) => "LANG_UNKNOWN_TYPE",
                LangError::UnknownField { .. } => "LANG_UNKNOWN_FIELD",
                LangError::WrongFieldKind { .. } => "LANG_WRONG_FIELD_KIND",
                LangError::AmbiguousField(_) => "LANG_AMBIGUOUS_FIELD",
                LangError::DuplicateAlias(_) => "LANG_DUPLICATE_ALIAS",
                LangError::RestrictionOnDerived(_) => "LANG_RESTRICTION_ON_DERIVED",
                LangError::UnknownAttr(_) => "LANG_UNKNOWN_ATTR",
                LangError::Disconnected => "LANG_DISCONNECTED",
                LangError::NotReorderable(_) => "LANG_NOT_REORDERABLE",
                LangError::Eval(_) => "LANG_EVAL",
            },
            FroError::Opt(e) => match e {
                OptError::Unsupported(_) => "OPT_UNSUPPORTED",
                OptError::Disconnected => "OPT_DISCONNECTED",
            },
            FroError::Exec(e) => match e {
                ExecError::UnknownTable { .. } => "EXEC_UNKNOWN_TABLE",
                ExecError::MissingIndex { .. } => "EXEC_MISSING_INDEX",
                ExecError::KeyArityMismatch => "EXEC_KEY_ARITY_MISMATCH",
                ExecError::Algebra(_) => "EXEC_ALGEBRA",
            },
            FroError::NoEntityModel => "SESSION_NO_ENTITY_MODEL",
            FroError::UnknownStanding(_) => "STANDING_UNKNOWN",
            FroError::Wire(e) => match e {
                WireError::Io(_) => "WIRE_IO",
                _ => "WIRE_FORMAT",
            },
            FroError::Remote { .. } => "SERVER_REMOTE",
        }
    }
}

impl fmt::Display for FroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            FroError::Lang(e) => e.fmt(f),
            FroError::Opt(e) => e.fmt(f),
            FroError::Exec(e) => e.fmt(f),
            FroError::NoEntityModel => {
                write!(
                    f,
                    "session has no entity model; build it with Session::from_entity_db \
                     (or with_entity_db) before calling query()"
                )
            }
            FroError::UnknownStanding(id) => {
                write!(
                    f,
                    "no standing query is registered under id {id}; \
                     register one with Session::register_standing first"
                )
            }
            FroError::Wire(e) => e.fmt(f),
            FroError::Remote { code, message } => {
                write!(f, "server reported {code}: {message}")
            }
        }
    }
}

impl std::error::Error for FroError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FroError::Lang(e) => Some(e),
            FroError::Opt(e) => Some(e),
            FroError::Exec(e) => Some(e),
            FroError::NoEntityModel => None,
            FroError::UnknownStanding(_) => None,
            FroError::Wire(e) => Some(e),
            FroError::Remote { .. } => None,
        }
    }
}

impl From<WireError> for FroError {
    fn from(e: WireError) -> FroError {
        FroError::Wire(e)
    }
}

impl From<LangError> for FroError {
    fn from(e: LangError) -> FroError {
        FroError::Lang(e)
    }
}

impl From<OptError> for FroError {
    fn from(e: OptError) -> FroError {
        FroError::Opt(e)
    }
}

impl From<ExecError> for FroError {
    fn from(e: ExecError) -> FroError {
        FroError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_prefixed_by_layer() {
        let cases: Vec<(FroError, &str)> = vec![
            (LangError::Parse("x".into()).into(), "LANG_PARSE"),
            (LangError::Disconnected.into(), "LANG_DISCONNECTED"),
            (OptError::Disconnected.into(), "OPT_DISCONNECTED"),
            (OptError::Unsupported("n".into()).into(), "OPT_UNSUPPORTED"),
            (
                ExecError::UnknownTable {
                    name: "T".into(),
                    suggestion: None,
                }
                .into(),
                "EXEC_UNKNOWN_TABLE",
            ),
            (FroError::NoEntityModel, "SESSION_NO_ENTITY_MODEL"),
            (FroError::UnknownStanding(7), "STANDING_UNKNOWN"),
            (WireError::Io("nope".into()).into(), "WIRE_IO"),
            (WireError::BadMagic.into(), "WIRE_FORMAT"),
            (
                FroError::Remote {
                    code: "EXEC_UNKNOWN_TABLE".into(),
                    message: "unknown table".into(),
                },
                "SERVER_REMOTE",
            ),
        ];
        for (e, code) in cases {
            assert_eq!(e.code(), code);
            // Display leads with the code so log lines are greppable.
            assert!(e.to_string().starts_with(&format!("[{code}]")), "{e}");
        }
    }

    #[test]
    fn source_exposes_the_layer_error() {
        use std::error::Error;
        let e: FroError = LangError::Parse("x".into()).into();
        assert!(e.source().is_some());
        assert!(FroError::NoEntityModel.source().is_none());
    }
}
