//! # fro — Freely-Reorderable Outerjoins
//!
//! A complete Rust implementation of Rosenthal & Galindo-Legaria,
//! *"Query Graphs, Implementing Trees, and Freely-Reorderable
//! Outerjoins"* (SIGMOD 1990): the relational algebra with nulls and
//! strong predicates, query graphs and their implementing trees, the
//! free-reorderability theorem with a checker, the §4 simplification
//! rules, the §5 UnNest/Link language, the §6.2 generalized outerjoin,
//! and a cost-based optimizer + execution engine that reproduce the
//! paper's Example 1 cost asymmetry exactly.
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! | module | crate | paper section |
//! |--------|-------|---------------|
//! | [`algebra`] | `fro-algebra` | §1.2, §2 (operators, identities) |
//! | [`graph`] | `fro-graph` | §1.2–1.3, §3.1 (query graphs, niceness) |
//! | [`trees`] | `fro-trees` | §3 (implementing trees, basic transforms) |
//! | [`core`] | `fro-core` | Theorem 1, §4, §6 (checker, simplifier, optimizer) |
//! | [`exec`] | `fro-exec` | Example 1's engine (indexes, counters) |
//! | [`lang`] | `fro-lang` | §5 (UnNest/Link language) |
//!
//! ## Quickstart
//!
//! The [`Session`] front door is a cheap handle over a [`SharedDb`] —
//! catalog (statistics + plan cache) and storage — carrying its own
//! policy and execution config. Handles connected to one database
//! share data and warm plans:
//!
//! ```
//! use fro::prelude::*;
//!
//! let session = Session::new();
//! session.insert_table("R1", Relation::from_ints("R1", &["k1"], &[&[0]]));
//! session.insert_table("R2", Relation::from_ints("R2", &["k2"], &[&[0], &[1]]));
//! session.insert_table("R3", Relation::from_ints("R3", &["k3"], &[&[1], &[9]]));
//!
//! // Example 1, written in the "wrong" association.
//! let q = Query::rel("R1").join(
//!     Query::rel("R2").outerjoin(Query::rel("R3"), Pred::eq_attr("R2.k2", "R3.k3")),
//!     Pred::eq_attr("R1.k1", "R2.k2"),
//! );
//!
//! // Theorem 1 says the graph alone determines the result, so the
//! // optimizer is free to reorder — and to reuse cached plans.
//! assert!(fro::core::is_freely_reorderable(&q));
//! let prepared = session.prepare(&q).unwrap();
//! let out = prepared.run().unwrap();
//! assert_eq!(out.len(), 1);
//!
//! // Preparing the same (or an alpha-equivalent) query again is a
//! // pure plan-cache hit: zero enumeration — from *any* session over
//! // the same shared database.
//! let other = Session::connect(session.shared());
//! let warm = other.prepare(&q).unwrap();
//! assert_eq!(warm.optimized().pairs_examined, 0);
//! ```
//!
//! To serve the same database over TCP, see [`Server`] and [`Client`]
//! (the `fro-wire` query/result protocol).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fro_algebra as algebra;
pub use fro_core as core;
pub use fro_exec as exec;
pub use fro_graph as graph;
pub use fro_lang as lang;
pub use fro_trees as trees;
pub use fro_wire as wire;

mod error;
mod server;
mod session;
mod shared;
mod standing;

pub use error::FroError;
pub use server::{Client, Server, ServerOptions};
pub use session::{CatalogRef, Prepared, Session, StorageRef};
pub use shared::{DbState, SharedDb};
pub use standing::{Registered, StandingCounters, StandingId, StandingInfo};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::{
        Client, FroError, Prepared, Registered, Server, ServerOptions, Session, SharedDb,
        StandingCounters, StandingId, StandingInfo,
    };
    pub use fro_algebra::prelude::*;
    pub use fro_core::optimizer::{CacheLoad, CacheStats};
    pub use fro_core::{
        analyze, is_freely_reorderable, optimize, optimize_with_reduce, Catalog, Policy,
        ReducePolicy, ReductionReport,
    };
    pub use fro_exec::{execute, execute_with, ExecConfig, ExecStats, PhysPlan, Storage};
    pub use fro_graph::{graph_of, QueryGraph};
    pub use fro_trees::{enumerate_trees, EnumLimit};
}
