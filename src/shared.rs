//! Shared database state for concurrent sessions.
//!
//! A [`SharedDb`] owns the catalog (statistics, epoch, plan cache) and
//! the storage behind one copy-on-write cell: readers grab an
//! [`Arc`]-shared [`DbState`] snapshot and work against it lock-free,
//! while writers clone-and-swap under a short write lock
//! ([`SharedDb::mutate`]). An in-flight reader therefore never
//! observes a torn catalog — it either sees the whole pre-mutation
//! generation or the whole post-mutation one, and the catalog epoch
//! inside each generation keeps the plan cache honest exactly as it
//! does single-threaded: a statistics change bumps the epoch, so a
//! plan costed under old statistics is never served against new ones.
//!
//! Cheap per-connection [`Session`] handles ([`SharedDb::session`])
//! carry only policy + execution config and all share this state — and
//! with it the cross-query plan cache, so one connection's warm plan
//! is every connection's warm plan (Theorem 1 makes the signature a
//! sound cross-session key; alpha-equivalent queries from different
//! clients collapse onto one cache entry).
//!
//! [`Session`]: crate::Session

use crate::standing::{self, Registry};
use fro_algebra::{Attr, Relation, Tuple};
use fro_core::Catalog;
use fro_exec::{ExecStats, RowDelta, Storage};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// One immutable generation of the database: catalog + storage,
/// derived together so ids, statistics and stored rows always agree.
#[derive(Debug, Clone, Default)]
pub struct DbState {
    catalog: Catalog,
    storage: Storage,
}

impl DbState {
    /// The catalog of this generation (statistics, epoch, plan cache).
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The storage of this generation.
    #[must_use]
    pub fn storage(&self) -> &Storage {
        &self.storage
    }
}

/// The shared, concurrently-usable database: a copy-on-write
/// [`DbState`] cell. See the module docs for the consistency story.
#[derive(Debug, Default)]
pub struct SharedDb {
    state: RwLock<Arc<DbState>>,
    /// Standing-query views and their maintenance machinery. Lock
    /// order: `standing` strictly before `state` — mutation front
    /// doors hold the registry lock around the whole
    /// mutate-then-fan-out sequence so base deltas reach every view in
    /// publication order.
    standing: Mutex<Registry>,
}

impl SharedDb {
    /// An empty shared database.
    #[must_use]
    pub fn new() -> Arc<SharedDb> {
        Arc::new(SharedDb::default())
    }

    /// A shared database over existing storage; the catalog is derived
    /// with exact statistics ([`Catalog::from_storage`]).
    #[must_use]
    pub fn from_storage(storage: Storage) -> Arc<SharedDb> {
        Arc::new(SharedDb {
            state: RwLock::new(Arc::new(DbState {
                catalog: Catalog::from_storage(&storage),
                storage,
            })),
            standing: Mutex::default(),
        })
    }

    /// A consistent snapshot of the current generation. Cheap (one
    /// `Arc` clone under a read lock) and stable: later mutations
    /// produce new generations, they never alter this one.
    #[must_use]
    pub fn snapshot(&self) -> Arc<DbState> {
        Arc::clone(&self.state.read().expect("shared db lock never poisoned"))
    }

    /// Run a mutation against catalog and storage atomically,
    /// publishing the result as the next generation. Readers holding
    /// earlier snapshots are unaffected; new snapshots see every
    /// effect of `f` or none of it.
    ///
    /// The closure runs under the write lock — keep it short and never
    /// call back into this [`SharedDb`] from inside it.
    pub fn mutate<R>(&self, f: impl FnOnce(&mut Catalog, &mut Storage) -> R) -> R {
        let mut guard = self.state.write().expect("shared db lock never poisoned");
        // Clone-on-write: outstanding snapshot holders keep the old
        // generation; we mutate a fresh copy (or in place when nobody
        // else holds the Arc) and publish it on unlock.
        let state = Arc::make_mut(&mut guard);
        f(&mut state.catalog, &mut state.storage)
    }

    /// A new session handle over this shared state (Paper policy,
    /// sequential execution — adjust with the [`Session`] builders).
    ///
    /// [`Session`]: crate::Session
    #[must_use]
    pub fn session(self: &Arc<Self>) -> crate::Session {
        crate::Session::connect(self)
    }

    /// Load (or replace) a table: stores the relation and registers
    /// exact statistics — row count and per-column distinct counts —
    /// in the catalog, bumping the epoch.
    pub fn insert_table(&self, name: impl Into<String>, rel: Relation) {
        let name = name.into();
        self.mutate(|catalog, storage| {
            register_stats(catalog, &name, &rel);
            storage.insert(name, rel);
        });
    }

    /// Append rows to an existing table, republishing it with
    /// refreshed statistics. Rows that duplicate existing ones are
    /// absorbed by set semantics. Returns `false` (doing nothing) when
    /// the table is unknown or a row doesn't fit the scheme.
    ///
    /// Unlike a table replacement, an append bumps only the relation's
    /// **row epoch**, not the catalog epoch: plans over *other*
    /// relations stay cached, plans over this one re-cost, and every
    /// standing view on it folds the novel rows in incrementally
    /// (O(|delta|), no re-execution).
    pub fn append_rows(&self, name: &str, rows: Vec<Tuple>) -> bool {
        self.append_rows_traced(name, rows).0
    }

    /// [`SharedDb::append_rows`] plus the maintenance work it
    /// triggered, so session handles can attribute their share.
    pub(crate) fn append_rows_traced(&self, name: &str, rows: Vec<Tuple>) -> (bool, ExecStats) {
        let mut reg = self.standing_lock();
        let delta = self.mutate(|catalog, storage| {
            // O(|delta|) storage path: the table's row store, columnar
            // mirror, indexes, and exact distinct counts are extended
            // in place — no rebuild, no re-dedup of the base.
            let novel = storage.append_rows(name, rows)?;
            if novel.is_empty() {
                // Every row was a duplicate: nothing changed, keep the
                // generation (and every epoch) as it is.
                return Some(RowDelta::default());
            }
            let table = storage
                .rel_id(name)
                .and_then(|id| storage.get_by_id(id))
                .expect("table exists: rows were just appended to it");
            refresh_stats_quiet(catalog, name, table);
            catalog.bump_row_epoch(name);
            Some(RowDelta::from_inserts(novel))
        });
        match delta {
            None => (false, ExecStats::new()),
            Some(d) => {
                let stats = standing::apply_base_delta(&mut reg, &self.snapshot(), name, &d);
                (true, stats)
            }
        }
    }

    /// Delete rows from an existing table (rows not present are
    /// ignored), republishing it with refreshed statistics. Returns
    /// `false` (doing nothing) when the table is unknown. Like
    /// [`SharedDb::append_rows`], bumps only the relation's row epoch;
    /// standing views retract the removed rows incrementally — an
    /// outerjoin view re-emits the null-padded row when a preserved
    /// row's last match dies.
    pub fn delete_rows(&self, name: &str, rows: &[Tuple]) -> bool {
        self.delete_rows_traced(name, rows).0
    }

    /// [`SharedDb::delete_rows`] plus the maintenance work it
    /// triggered.
    pub(crate) fn delete_rows_traced(&self, name: &str, rows: &[Tuple]) -> (bool, ExecStats) {
        let mut reg = self.standing_lock();
        let delta = self.mutate(|catalog, storage| {
            let table = storage.rel_id(name).and_then(|id| storage.get_by_id(id))?;
            let old = table.relation();
            let doomed: std::collections::HashSet<&Tuple> = rows.iter().collect();
            let (removed, kept): (Vec<Tuple>, Vec<Tuple>) =
                old.rows().iter().cloned().partition(|t| doomed.contains(t));
            if removed.is_empty() {
                return Some(RowDelta::default());
            }
            // The survivors were already distinct; their order is the
            // stored order, so the relation round-trips bit-identically.
            let rel = Relation::from_distinct_rows(old.schema().clone(), kept);
            let table = storage.insert(name, rel);
            refresh_stats_quiet(catalog, name, table);
            catalog.bump_row_epoch(name);
            Some(RowDelta::from_deletes(removed))
        });
        match delta {
            None => (false, ExecStats::new()),
            Some(d) => {
                let stats = standing::apply_base_delta(&mut reg, &self.snapshot(), name, &d);
                (true, stats)
            }
        }
    }

    /// The standing-query registry, for the maintenance code in
    /// [`crate::standing`]. Lock order: this lock strictly before any
    /// `state` access.
    pub(crate) fn standing_lock(&self) -> MutexGuard<'_, Registry> {
        self.standing
            .lock()
            .expect("standing registry lock never poisoned")
    }

    /// Build a hash index on `rel(attrs…)` in storage and declare it
    /// to the catalog. Returns `false` (doing nothing) when the table
    /// or an attribute is unknown.
    pub fn create_index(&self, rel: &str, attrs: &[Attr]) -> bool {
        self.mutate(|catalog, storage| {
            let built = storage.create_index(rel, attrs);
            if built {
                catalog.add_index(rel, attrs);
            }
            built
        })
    }

    /// Override a column's distinct count (what-if statistics). Bumps
    /// the catalog epoch, so cached plans costed under the old
    /// statistics are invalidated automatically.
    pub fn set_distinct(&self, attr: &Attr, distinct: u64) {
        self.mutate(|catalog, _| catalog.set_distinct(attr, distinct));
    }
}

/// Register exact statistics for one relation: row count plus true
/// per-column distinct counts.
pub(crate) fn register_stats(catalog: &mut Catalog, name: &str, rel: &Relation) {
    catalog.add_table(name, rel.schema().clone(), rel.len() as u64);
    for (c, a) in rel.schema().attrs().iter().enumerate() {
        let distinct: std::collections::HashSet<_> = rel.rows().iter().map(|t| t.get(c)).collect();
        catalog.set_distinct(a, distinct.len() as u64);
    }
}

/// Refresh an *already-registered* relation's statistics without
/// bumping the catalog epoch — row appends/deletes invalidate at
/// row-epoch granularity instead ([`Catalog::bump_row_epoch`]).
///
/// Reads the exact distinct counts the table's columnar mirror already
/// maintains (same null-counts-as-one convention as
/// [`register_stats`]), so refreshing statistics is O(columns), not
/// O(rows) — which is what keeps the whole append path O(|delta|).
fn refresh_stats_quiet(catalog: &mut Catalog, name: &str, table: &fro_exec::Table) {
    catalog.set_rows_quiet(name, table.len() as u64);
    for (c, a) in table.relation().schema().attrs().iter().enumerate() {
        catalog.set_distinct_quiet(a, table.columns().column(c).distinct());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Value;

    #[test]
    fn snapshots_are_stable_across_mutations() {
        let db = SharedDb::new();
        db.insert_table("R", Relation::from_ints("R", &["a"], &[&[1], &[2]]));
        let before = db.snapshot();
        let epoch_before = before.catalog().epoch();
        db.insert_table("S", Relation::from_ints("S", &["b"], &[&[7]]));
        // The old snapshot still sees exactly one table at its epoch.
        assert!(before.catalog().table("S").is_none());
        assert_eq!(before.catalog().epoch(), epoch_before);
        // A fresh snapshot sees the whole mutation.
        let after = db.snapshot();
        assert!(after.catalog().table("S").is_some());
        assert!(after.catalog().epoch() > epoch_before);
    }

    #[test]
    fn append_rows_refreshes_stats_and_dedups() {
        let db = SharedDb::new();
        db.insert_table("R", Relation::from_ints("R", &["a"], &[&[1], &[2]]));
        assert!(db.append_rows(
            "R",
            vec![
                Tuple::new(vec![Value::Int(2)]),
                Tuple::new(vec![Value::Int(3)]),
            ],
        ));
        let s = db.snapshot();
        assert_eq!(s.catalog().table("R").unwrap().rows, 3);
        let id = s.storage().rel_id("R").unwrap();
        assert_eq!(s.storage().get_by_id(id).unwrap().relation().len(), 3);
        assert!(!db.append_rows("missing", vec![]));
    }

    #[test]
    fn mutations_are_atomic_to_new_snapshots() {
        let db = SharedDb::new();
        db.insert_table("A", Relation::from_ints("A", &["x"], &[&[1]]));
        db.insert_table("B", Relation::from_ints("B", &["y"], &[&[1]]));
        // Swap both tables' contents in one mutation; any snapshot
        // sees either both old or both new, never a mix.
        db.mutate(|catalog, storage| {
            let a = Relation::from_ints("A", &["x"], &[&[2], &[3]]);
            let b = Relation::from_ints("B", &["y"], &[&[2], &[3]]);
            register_stats(catalog, "A", &a);
            register_stats(catalog, "B", &b);
            storage.insert("A", a);
            storage.insert("B", b);
        });
        let s = db.snapshot();
        assert_eq!(s.catalog().table("A").unwrap().rows, 2);
        assert_eq!(s.catalog().table("B").unwrap().rows, 2);
    }
}
