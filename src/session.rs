//! The unified front door: a [`Session`] owns the catalog (and with it
//! the cross-query plan cache), the storage, the reordering policy and
//! the execution configuration, so an application talks to one object
//! instead of threading four through every call.
//!
//! Two entry points produce a [`Prepared`] statement:
//!
//! * [`Session::query`] — §5 UnNest/Link source text, for sessions
//!   built over an [`EntityDb`];
//! * [`Session::prepare`] — an algebra [`Query`] over tables loaded
//!   with [`Session::insert_table`] / [`Session::from_storage`].
//!
//! Both run the cost-based optimizer, which consults the
//! catalog-owned plan cache: repeating a query (or an
//! alpha-equivalent one) skips enumeration entirely, and any
//! statistics change bumps the catalog epoch so stale plans are never
//! served. [`Prepared::explain`] surfaces the cache counters;
//! [`Prepared::run`] executes against the session's storage.

use crate::error::FroError;
use fro_algebra::{Attr, Query, Relation};
use fro_core::optimizer::{optimize, CacheLoad, CacheStats, Optimized};
use fro_core::{Catalog, Policy};
use fro_exec::{execute_with, ExecConfig, ExecStats, PhysPlan, Storage};
use fro_lang::{parse, translate, EntityDb, LangError};
use fro_trees::some_implementing_tree;

/// A query session: catalog + storage + policy + execution config,
/// with the catalog-owned plan cache warm across queries.
#[derive(Debug, Clone, Default)]
pub struct Session {
    catalog: Catalog,
    storage: Storage,
    policy: Policy,
    exec_config: ExecConfig,
    edb: Option<EntityDb>,
}

impl Session {
    /// An empty session (Paper policy, sequential execution).
    #[must_use]
    pub fn new() -> Session {
        Session::default()
    }

    /// A session over existing storage; the catalog is derived with
    /// exact statistics ([`Catalog::from_storage`]).
    #[must_use]
    pub fn from_storage(storage: Storage) -> Session {
        Session {
            catalog: Catalog::from_storage(&storage),
            storage,
            ..Session::default()
        }
    }

    /// A session over an entity model, enabling [`Session::query`].
    #[must_use]
    pub fn from_entity_db(edb: EntityDb) -> Session {
        Session {
            edb: Some(edb),
            ..Session::default()
        }
    }

    /// Replace the reordering policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: Policy) -> Session {
        self.policy = policy;
        self
    }

    /// Replace the execution configuration (builder style).
    #[must_use]
    pub fn with_exec_config(mut self, cfg: ExecConfig) -> Session {
        self.exec_config = cfg;
        self
    }

    /// Attach an entity model (builder style), enabling
    /// [`Session::query`].
    #[must_use]
    pub fn with_entity_db(mut self, edb: EntityDb) -> Session {
        self.edb = Some(edb);
        self
    }

    /// The session catalog (statistics, epoch, plan cache).
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access for what-if statistics experiments.
    /// Every mutation bumps the catalog epoch, so cached plans costed
    /// under the old statistics are invalidated automatically.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The session storage.
    #[must_use]
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// The reordering policy in effect.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Cumulative plan-cache counters for this session's catalog.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.catalog.cache_stats()
    }

    /// Persist the plan cache to `path` so a future process over the
    /// same data can start warm ([`Session::load_plan_cache`]).
    /// Returns the number of entries written.
    ///
    /// # Errors
    /// [`FroError::Wire`] on filesystem failure.
    pub fn save_plan_cache(&self, path: impl AsRef<std::path::Path>) -> Result<usize, FroError> {
        Ok(self.catalog.save_cache(path)?)
    }

    /// Load a plan-cache snapshot written by
    /// [`Session::save_plan_cache`]. The snapshot is revalidated
    /// against the current catalog: if the tables/statistics changed
    /// since the save (different fingerprint or epoch), nothing is
    /// loaded and the cache stays cold — a mismatched snapshot can
    /// never surface a wrong or stale plan. Returns how the snapshot
    /// related to this catalog ([`CacheLoad`]).
    ///
    /// # Errors
    /// [`FroError::Wire`] when the file cannot be read or a
    /// matching snapshot is corrupt.
    pub fn load_plan_cache(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<CacheLoad, FroError> {
        Ok(self.catalog.load_cache(path)?)
    }

    /// Load (or replace) a table: stores the relation and registers
    /// exact statistics — row count and per-column distinct counts —
    /// in the catalog, bumping the epoch.
    pub fn insert_table(&mut self, name: impl Into<String>, rel: Relation) {
        let name = name.into();
        self.register_stats(&name, &rel);
        self.storage.insert(name, rel);
    }

    /// Build a hash index on `rel(attrs…)` in storage and declare it
    /// to the catalog. Returns `false` (doing nothing) when the table
    /// or an attribute is unknown.
    pub fn create_index(&mut self, rel: &str, attrs: &[Attr]) -> bool {
        let built = self.storage.create_index(rel, attrs);
        if built {
            self.catalog.add_index(rel, attrs);
        }
        built
    }

    /// Optimize an algebra query against the session catalog.
    ///
    /// The optimizer consults the plan cache first: preparing the same
    /// (or an alpha-equivalent) query again on an unchanged catalog
    /// returns the cached plan with zero enumeration.
    ///
    /// # Errors
    /// [`FroError::Opt`] when the query is disconnected or uses an
    /// operator the engine cannot run.
    pub fn prepare(&self, q: &Query) -> Result<Prepared<'_>, FroError> {
        let optimized = optimize(q, &self.catalog, self.policy)?;
        Ok(Prepared {
            session: self,
            optimized,
        })
    }

    /// Parse, translate and optimize a §5 UnNest/Link query block.
    ///
    /// The block's ground relations (bases and derived) are synced
    /// into the session storage; catalog statistics are refreshed only
    /// when they actually changed, so repeating a query keeps the
    /// epoch — and with it the plan cache — warm. Where-List
    /// restrictions are applied as filters above the reordered join
    /// tree, exactly where the reference evaluator puts them.
    ///
    /// # Errors
    /// [`FroError::NoEntityModel`] without an entity model;
    /// [`FroError::Lang`] for parse/translation failures;
    /// [`FroError::Opt`] from the optimizer.
    pub fn query(&mut self, src: &str) -> Result<Prepared<'_>, FroError> {
        let edb = self.edb.as_ref().ok_or(FroError::NoEntityModel)?;
        let block = parse(src)?;
        let t = translate(&block, edb)?;
        let tree =
            some_implementing_tree(&t.graph).ok_or(FroError::Lang(LangError::Disconnected))?;
        self.sync_tables(&t.database);
        let optimized = optimize(&tree, &self.catalog, self.policy)?;
        // Fold the Where-List restrictions on top of the chosen plan —
        // the same placement as the reference evaluator's
        // `plan_query`, so results coincide tree by tree.
        let Optimized {
            plan,
            est_cost,
            mut est_rows,
            analysis,
            reordered,
            pairs_examined,
            cache,
            suggested_partitions,
        } = optimized;
        let plan = t.restrictions.iter().fold(plan, |p, r| PhysPlan::Filter {
            input: Box::new(p),
            pred: r.clone(),
        });
        for r in &t.restrictions {
            est_rows *= self.catalog.selectivity(r);
        }
        Ok(Prepared {
            session: self,
            optimized: Optimized {
                plan,
                est_cost,
                est_rows,
                analysis,
                reordered,
                pairs_examined,
                cache,
                suggested_partitions,
            },
        })
    }

    /// Sync a translated block's relations into storage, refreshing
    /// catalog statistics only when row count or scheme changed —
    /// an unchanged catalog keeps its epoch, so the plan cache stays
    /// warm across repeated queries.
    fn sync_tables(&mut self, db: &fro_algebra::Database) {
        for (name, rel) in db.iter() {
            let stale = self
                .catalog
                .table(name)
                .is_none_or(|info| info.rows != rel.len() as u64 || info.schema != *rel.schema());
            if stale {
                self.register_stats(name, rel);
            }
            self.storage.insert(name, rel.clone());
        }
    }

    /// Register exact statistics for one relation: row count plus true
    /// per-column distinct counts.
    fn register_stats(&mut self, name: &str, rel: &Relation) {
        self.catalog
            .add_table(name, rel.schema().clone(), rel.len() as u64);
        for (c, a) in rel.schema().attrs().iter().enumerate() {
            let distinct: std::collections::HashSet<_> =
                rel.rows().iter().map(|t| t.get(c)).collect();
            self.catalog.set_distinct(a, distinct.len() as u64);
        }
    }
}

/// An optimized statement bound to its session, ready to run.
#[derive(Debug)]
pub struct Prepared<'s> {
    session: &'s Session,
    optimized: Optimized,
}

impl Prepared<'_> {
    /// The optimizer's full outcome (plan, estimates, analysis,
    /// cache counters).
    #[must_use]
    pub fn optimized(&self) -> &Optimized {
        &self.optimized
    }

    /// The chosen physical plan.
    #[must_use]
    pub fn plan(&self) -> &PhysPlan {
        &self.optimized.plan
    }

    /// EXPLAIN: plan tree, cost estimates, reordering verdict, and
    /// plan-cache counters for this optimization.
    #[must_use]
    pub fn explain(&self) -> String {
        self.optimized.explain()
    }

    /// Execute against the session's storage.
    ///
    /// # Errors
    /// [`FroError::Exec`] on engine failures.
    pub fn run(&self) -> Result<Relation, FroError> {
        Ok(self.run_with_stats()?.0)
    }

    /// Execute, additionally returning the engine's work counters.
    ///
    /// # Errors
    /// [`FroError::Exec`] on engine failures.
    pub fn run_with_stats(&self) -> Result<(Relation, ExecStats), FroError> {
        let mut stats = ExecStats::new();
        // When the session config leaves partitioning on "auto", bind
        // the optimizer's catalog-statistics hint now; the engine's
        // per-join build-cardinality fallback only kicks in for configs
        // that bypass the session. Either choice yields bit-identical
        // results — partitioning only moves work, never output.
        let mut cfg = self.session.exec_config;
        if cfg.partitions == 0 {
            cfg.partitions = self.optimized.suggested_partitions;
        }
        let out = execute_with(
            &self.optimized.plan,
            &self.session.storage,
            &mut stats,
            &cfg,
        )?;
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Pred;
    use fro_lang::model::paper_world;

    fn algebra_session() -> Session {
        let mut s = Session::new();
        s.insert_table("R1", Relation::from_ints("R1", &["k1"], &[&[0]]));
        s.insert_table(
            "R2",
            Relation::from_ints("R2", &["k2"], &[&[0], &[1], &[2]]),
        );
        s.insert_table(
            "R3",
            Relation::from_ints("R3", &["k3"], &[&[1], &[2], &[9]]),
        );
        s
    }

    fn example1() -> Query {
        Query::rel("R1").join(
            Query::rel("R2").outerjoin(Query::rel("R3"), Pred::eq_attr("R2.k2", "R3.k3")),
            Pred::eq_attr("R1.k1", "R2.k2"),
        )
    }

    #[test]
    fn prepare_runs_and_warms_the_cache() {
        let s = algebra_session();
        let q = example1();
        let cold = s.prepare(&q).unwrap();
        let cold_out = cold.run().unwrap();
        assert!(cold.optimized().pairs_examined > 0);
        let warm = s.prepare(&q).unwrap();
        assert_eq!(warm.optimized().pairs_examined, 0, "full-set cache hit");
        assert!(warm.optimized().cache.hits >= 1);
        assert!(warm.run().unwrap().set_eq(&cold_out));
        assert_eq!(cold.explain(), {
            // Cache counters differ between the two runs; plans agree.
            let c = cold.plan().explain();
            let w = warm.plan().explain();
            assert_eq!(c, w);
            cold.explain()
        });
    }

    #[test]
    fn stats_mutation_through_session_invalidates_plans() {
        let mut s = algebra_session();
        let q = example1();
        let _ = s.prepare(&q).unwrap();
        s.catalog_mut()
            .set_distinct(&Attr::parse("R2.k2"), 1_000_000);
        let replanned = s.prepare(&q).unwrap();
        assert!(
            replanned.optimized().pairs_examined > 0,
            "stale plan evicted"
        );
        assert!(replanned.optimized().cache.stale >= 1);
    }

    #[test]
    fn query_requires_an_entity_model() {
        let mut s = Session::new();
        let e = s.query("Select All From EMPLOYEE*ChildName").unwrap_err();
        assert_eq!(e.code(), "SESSION_NO_ENTITY_MODEL");
    }

    #[test]
    fn lang_query_matches_reference_and_warms() {
        let src = "Select All From EMPLOYEE*ChildName, DEPARTMENT \
                   Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'";
        #[allow(deprecated)]
        let want = fro_lang::run(src, &paper_world()).unwrap();
        let mut s = Session::from_entity_db(paper_world());
        let out = s.query(src).unwrap().run().unwrap();
        assert!(out.set_eq(&want));
        assert_eq!(out.len(), 3);
        // Re-issuing the same block hits the cache: the tables resync
        // without a statistics change, so the epoch (and cache) hold.
        let again = s.query(src).unwrap();
        assert_eq!(again.optimized().pairs_examined, 0);
        assert!(again.optimized().cache.hits >= 1);
        assert!(again.run().unwrap().set_eq(&want));
    }

    #[test]
    fn lang_query_surfaces_parse_errors_with_codes() {
        let mut s = Session::from_entity_db(paper_world());
        let e = s.query("From nothing").unwrap_err();
        assert_eq!(e.code(), "LANG_PARSE");
    }
}
