//! The unified front door: a [`Session`] is a cheap per-connection
//! handle over an [`Arc`]-shared [`SharedDb`] (catalog + storage +
//! cross-query plan cache), carrying only the reordering policy, the
//! execution configuration and its own cache counters. Handles clone
//! freely, move across threads, and all observe the same data: one
//! connection's warm plan is every connection's warm plan.
//!
//! Two entry points produce a [`Prepared`] statement:
//!
//! * [`Session::query`] — §5 UnNest/Link source text, for sessions
//!   built over an [`EntityDb`];
//! * [`Session::prepare`] — an algebra [`Query`] over tables loaded
//!   with [`Session::insert_table`] / [`Session::from_storage`].
//!
//! Both optimize against a consistent [`DbState`] snapshot: the
//! cost-based optimizer consults the shared plan cache (repeating a
//! query — or an alpha-equivalent one — skips enumeration entirely),
//! and any statistics change bumps the catalog epoch so stale plans
//! are never served. [`Prepared`] owns its snapshot, so it keeps
//! running correctly even while other connections mutate the database.
//! [`Prepared::explain`] surfaces the cache counters;
//! [`Prepared::run`] executes against the snapshot's storage.

use crate::error::FroError;
use crate::shared::{register_stats, DbState, SharedDb};
use crate::standing::{Registered, StandingCounters, StandingId};
use fro_algebra::{Attr, Query, Relation, Tuple};
use fro_core::optimizer::{optimize_with_reduce, CacheLoad, CacheStats, Optimized};
use fro_core::{Catalog, Policy, ReducePolicy};
use fro_exec::{execute_with, ExecConfig, ExecStats, PhysPlan, Storage};
use fro_lang::{parse, translate, EntityDb, LangError};
use fro_trees::some_implementing_tree;
use std::cell::Cell;
use std::sync::Arc;

/// A query session: a per-connection handle over shared database
/// state, plus this connection's policy, execution config and
/// plan-cache counters.
#[derive(Debug, Clone, Default)]
pub struct Session {
    db: Arc<SharedDb>,
    policy: Policy,
    reduce_policy: ReducePolicy,
    exec_config: ExecConfig,
    edb: Option<EntityDb>,
    local: Cell<CacheStats>,
    local_maint: Cell<ExecStats>,
}

impl Session {
    /// A session over its own fresh database (Paper policy, sequential
    /// execution). For multiple sessions over one database, build a
    /// [`SharedDb`] and call [`SharedDb::session`] (or
    /// [`Session::connect`]) per connection.
    #[must_use]
    pub fn new() -> Session {
        Session::default()
    }

    /// A session over existing storage; the catalog is derived with
    /// exact statistics ([`Catalog::from_storage`]).
    #[must_use]
    pub fn from_storage(storage: Storage) -> Session {
        Session {
            db: SharedDb::from_storage(storage),
            ..Session::default()
        }
    }

    /// A session over an entity model, enabling [`Session::query`].
    #[must_use]
    pub fn from_entity_db(edb: EntityDb) -> Session {
        Session {
            edb: Some(edb),
            ..Session::default()
        }
    }

    /// A new handle over an existing shared database. Handles are
    /// cheap (an `Arc` clone plus plain-old-data config) and carry
    /// their own policy/config/counters.
    #[must_use]
    pub fn connect(db: &Arc<SharedDb>) -> Session {
        Session {
            db: Arc::clone(db),
            ..Session::default()
        }
    }

    /// Replace the reordering policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: Policy) -> Session {
        self.policy = policy;
        self
    }

    /// Replace the semijoin-reduction policy (builder style). `Auto`
    /// (the default) applies reduction only where the cost model says
    /// it pays; `Always`/`Never` force it for testing and benchmarks.
    /// Any policy yields bit-identical results — reduction only
    /// removes rows that could never reach the output.
    #[must_use]
    pub fn with_reduce_policy(mut self, policy: ReducePolicy) -> Session {
        self.reduce_policy = policy;
        self
    }

    /// Replace the execution configuration (builder style).
    #[must_use]
    pub fn with_exec_config(mut self, cfg: ExecConfig) -> Session {
        self.exec_config = cfg;
        self
    }

    /// Pin the partition count for parallel hash joins (builder
    /// style); `0` restores the automatic choice. Shorthand for
    /// adjusting the execution config's `partitions` knob.
    #[must_use]
    pub fn with_partitions(mut self, partitions: usize) -> Session {
        self.exec_config = self.exec_config.partitions(partitions);
        self
    }

    /// Attach an entity model (builder style), enabling
    /// [`Session::query`].
    #[must_use]
    pub fn with_entity_db(mut self, edb: EntityDb) -> Session {
        self.edb = Some(edb);
        self
    }

    /// The shared database behind this session — connect further
    /// sessions with [`SharedDb::session`], or mutate it directly.
    #[must_use]
    pub fn shared(&self) -> &Arc<SharedDb> {
        &self.db
    }

    /// The current catalog generation (statistics, epoch, plan cache).
    /// The returned guard dereferences to [`Catalog`] and pins a
    /// consistent snapshot: concurrent mutations don't alter it.
    #[must_use]
    pub fn catalog(&self) -> CatalogRef {
        CatalogRef {
            state: self.db.snapshot(),
        }
    }

    /// The current storage generation. Same snapshot semantics as
    /// [`Session::catalog`].
    #[must_use]
    pub fn storage(&self) -> StorageRef {
        StorageRef {
            state: self.db.snapshot(),
        }
    }

    /// The reordering policy in effect.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The semijoin-reduction policy in effect.
    #[must_use]
    pub fn reduce_policy(&self) -> ReducePolicy {
        self.reduce_policy
    }

    /// The execution configuration in effect.
    #[must_use]
    pub fn exec_config(&self) -> ExecConfig {
        self.exec_config
    }

    /// Cumulative plan-cache counters of the shared cache (all
    /// sessions). For this handle's share, see
    /// [`Session::local_cache_stats`].
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.db.snapshot().catalog().cache_stats()
    }

    /// Plan-cache counters accumulated by this session handle alone.
    /// Across concurrent sessions over one [`SharedDb`], the per-handle
    /// counters sum to the shared cache's cumulative totals.
    #[must_use]
    pub fn local_cache_stats(&self) -> CacheStats {
        self.local.get()
    }

    fn absorb(&self, stats: &CacheStats) {
        let mut local = self.local.get();
        local.merge(stats);
        self.local.set(local);
    }

    fn absorb_maint(&self, stats: &ExecStats) {
        let mut local = self.local_maint.get();
        local.merge(stats);
        self.local_maint.set(local);
    }

    /// Persist the plan cache to `path` so a future process over the
    /// same data can start warm ([`Session::load_plan_cache`]).
    /// Returns the number of entries written.
    ///
    /// # Errors
    /// [`FroError::Wire`] on filesystem failure.
    pub fn save_plan_cache(&self, path: impl AsRef<std::path::Path>) -> Result<usize, FroError> {
        Ok(self.db.snapshot().catalog().save_cache(path)?)
    }

    /// Load a plan-cache snapshot written by
    /// [`Session::save_plan_cache`]. The snapshot is revalidated
    /// against the current catalog: if the tables/statistics changed
    /// since the save (different fingerprint or epoch), nothing is
    /// loaded and the cache stays cold — a mismatched snapshot can
    /// never surface a wrong or stale plan. Returns how the snapshot
    /// related to this catalog ([`CacheLoad`]).
    ///
    /// # Errors
    /// [`FroError::Wire`] when the file cannot be read or a
    /// matching snapshot is corrupt.
    pub fn load_plan_cache(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<CacheLoad, FroError> {
        Ok(self.db.snapshot().catalog().load_cache(path)?)
    }

    /// Load (or replace) a table: stores the relation and registers
    /// exact statistics — row count and per-column distinct counts —
    /// in the catalog, bumping the epoch. Visible to every session on
    /// the shared database.
    pub fn insert_table(&self, name: impl Into<String>, rel: Relation) {
        self.db.insert_table(name, rel);
    }

    /// Append rows to an existing table (set semantics absorb
    /// duplicates), refreshing its statistics. Returns `false` when
    /// the table is unknown or a row doesn't fit the scheme.
    ///
    /// Appends bump only the relation's row epoch (not the catalog
    /// epoch) and fold into every standing view on the relation
    /// incrementally; the maintenance work is attributed to this
    /// handle ([`Session::local_maintenance_stats`]).
    pub fn append_rows(&self, name: &str, rows: Vec<Tuple>) -> bool {
        let (ok, stats) = self.db.append_rows_traced(name, rows);
        self.absorb_maint(&stats);
        ok
    }

    /// Delete rows from an existing table (absent rows are ignored),
    /// refreshing its statistics. Returns `false` when the table is
    /// unknown. Standing views retract the rows incrementally — an
    /// outerjoin view re-emits its null-padded row when a preserved
    /// row's last match dies.
    pub fn delete_rows(&self, name: &str, rows: &[Tuple]) -> bool {
        let (ok, stats) = self.db.delete_rows_traced(name, rows);
        self.absorb_maint(&stats);
        ok
    }

    /// Build a hash index on `rel(attrs…)` in storage and declare it
    /// to the catalog. Returns `false` (doing nothing) when the table
    /// or an attribute is unknown.
    pub fn create_index(&self, rel: &str, attrs: &[Attr]) -> bool {
        self.db.create_index(rel, attrs)
    }

    /// Override a column's distinct count (what-if statistics
    /// experiments). Bumps the catalog epoch, so cached plans costed
    /// under the old statistics are invalidated automatically.
    pub fn set_distinct(&self, attr: &Attr, distinct: u64) {
        self.db.set_distinct(attr, distinct);
    }

    /// Optimize an algebra query against the current catalog
    /// generation.
    ///
    /// The optimizer consults the shared plan cache first: preparing
    /// the same (or an alpha-equivalent) query again on an unchanged
    /// catalog — from *any* session — returns the cached plan with
    /// zero enumeration.
    ///
    /// # Errors
    /// [`FroError::Opt`] when the query is disconnected or uses an
    /// operator the engine cannot run.
    pub fn prepare(&self, q: &Query) -> Result<Prepared, FroError> {
        let state = self.db.snapshot();
        let optimized = optimize_with_reduce(q, state.catalog(), self.policy, self.reduce_policy)?;
        self.absorb(&optimized.cache);
        Ok(Prepared {
            state,
            exec_config: self.exec_config,
            optimized,
        })
    }

    /// Parse, translate and optimize a §5 UnNest/Link query block.
    ///
    /// The block's ground relations (bases and derived) are synced
    /// into the shared database only when their content actually
    /// differs from what is stored, so repeating a query keeps the
    /// epoch — and with it the plan cache — warm across every session.
    /// Where-List restrictions are applied as filters above the
    /// reordered join tree, exactly where the reference evaluator puts
    /// them.
    ///
    /// # Errors
    /// [`FroError::NoEntityModel`] without an entity model;
    /// [`FroError::Lang`] for parse/translation failures;
    /// [`FroError::Opt`] from the optimizer.
    pub fn query(&self, src: &str) -> Result<Prepared, FroError> {
        let (state, optimized) = self.optimize_src(src)?;
        Ok(Prepared {
            state,
            exec_config: self.exec_config,
            optimized,
        })
    }

    /// Parse/translate/optimize a §5 block and fold its Where-List
    /// restrictions on top of the chosen plan — the same placement as
    /// the reference evaluator's `plan_query`, so results coincide
    /// tree by tree. Shared by [`Session::query`] and
    /// [`Session::register_standing_src`].
    fn optimize_src(&self, src: &str) -> Result<(Arc<DbState>, Optimized), FroError> {
        let edb = self.edb.as_ref().ok_or(FroError::NoEntityModel)?;
        let block = parse(src)?;
        let t = translate(&block, edb)?;
        let tree =
            some_implementing_tree(&t.graph).ok_or(FroError::Lang(LangError::Disconnected))?;
        let state = self.sync_tables(&t.database);
        let optimized =
            optimize_with_reduce(&tree, state.catalog(), self.policy, self.reduce_policy)?;
        self.absorb(&optimized.cache);
        let Optimized {
            plan,
            est_cost,
            mut est_rows,
            analysis,
            reordered,
            pairs_examined,
            cache,
            suggested_partitions,
            reduction,
        } = optimized;
        let plan = t.restrictions.iter().fold(plan, |p, r| PhysPlan::Filter {
            input: Box::new(p),
            pred: r.clone(),
        });
        for r in &t.restrictions {
            est_rows *= state.catalog().selectivity(r);
        }
        Ok((
            state,
            Optimized {
                plan,
                est_cost,
                est_rows,
                analysis,
                reordered,
                pairs_examined,
                cache,
                suggested_partitions,
                reduction,
            },
        ))
    }

    /// Register an algebra query as a **standing view**: plan it once
    /// (through the shared plan cache), materialize the result and the
    /// per-join state deltas need, and keep it maintained under every
    /// [`Session::append_rows`] / [`Session::delete_rows`] on its base
    /// relations. Registering an alpha-equivalent query — from *any*
    /// session over this database — returns the **same** view
    /// ([`Registered::shared`]): one materialization, another
    /// subscriber, exactly the sharing Theorem 1 licenses.
    ///
    /// # Errors
    /// [`FroError::Opt`] when the optimizer rejects the query;
    /// [`FroError::Exec`] when the initial materialization fails.
    pub fn register_standing(&self, q: &Query) -> Result<Registered, FroError> {
        let state = self.db.snapshot();
        let optimized = optimize_with_reduce(q, state.catalog(), self.policy, self.reduce_policy)?;
        self.absorb(&optimized.cache);
        let (reg, stats) = self.db.register_standing_with(&optimized, self.policy)?;
        self.absorb_maint(&stats);
        Ok(reg)
    }

    /// Register a §5 UnNest/Link query block as a standing view (the
    /// text-protocol twin of [`Session::register_standing`]; the
    /// server's `Register` frame lands here).
    ///
    /// # Errors
    /// [`FroError::NoEntityModel`] without an entity model;
    /// [`FroError::Lang`] for parse/translation failures;
    /// [`FroError::Opt`] / [`FroError::Exec`] from planning and
    /// materialization.
    pub fn register_standing_src(&self, src: &str) -> Result<Registered, FroError> {
        let (_state, optimized) = self.optimize_src(src)?;
        let (reg, stats) = self.db.register_standing_with(&optimized, self.policy)?;
        self.absorb_maint(&stats);
        Ok(reg)
    }

    /// Serve a standing view's current result in canonical row order,
    /// with the work counters of *this* poll (all zero on the
    /// steady-state fast path; a full refresh shows up as
    /// `views_refreshed = 1` plus the re-execution's engine counters).
    ///
    /// # Errors
    /// [`FroError::UnknownStanding`] for an id this database never
    /// issued; [`FroError::Exec`] when a refresh fails.
    pub fn poll_standing(&self, id: StandingId) -> Result<(Relation, ExecStats), FroError> {
        let (rel, stats) = self.db.poll_standing(id)?;
        self.absorb_maint(&stats);
        Ok((rel, stats))
    }

    /// Cumulative standing-query registry counters (all sessions).
    #[must_use]
    pub fn standing_counters(&self) -> StandingCounters {
        self.db.standing_counters()
    }

    /// Cumulative view-maintenance work across all sessions
    /// ([`SharedDb::maintenance_stats`]).
    #[must_use]
    pub fn maintenance_stats(&self) -> ExecStats {
        self.db.maintenance_stats()
    }

    /// View-maintenance work attributed to this handle alone
    /// (registrations, polls and mutations it issued). Across
    /// concurrent sessions over one [`SharedDb`] these sum to
    /// [`Session::maintenance_stats`], like the plan-cache counters.
    #[must_use]
    pub fn local_maintenance_stats(&self) -> ExecStats {
        self.local_maint.get()
    }

    /// Sync a translated block's relations into the shared database,
    /// mutating only when some relation's stored content differs —
    /// an untouched database keeps its epoch, so the plan cache stays
    /// warm across repeated queries from any session. Returns the
    /// generation to plan against.
    fn sync_tables(&self, db: &fro_algebra::Database) -> Arc<DbState> {
        let state = self.db.snapshot();
        let synced = db.iter().all(|(name, rel)| {
            state
                .storage()
                .rel_id(name)
                .and_then(|id| state.storage().get_by_id(id))
                .is_some_and(|table| table.relation() == rel)
        });
        if synced {
            return state;
        }
        self.db.mutate(|catalog, storage| {
            for (name, rel) in db.iter() {
                let stored = storage
                    .rel_id(name)
                    .and_then(|id| storage.get_by_id(id))
                    .is_some_and(|table| table.relation() == rel);
                if !stored {
                    register_stats(catalog, name, rel);
                    storage.insert(name, rel.clone());
                }
            }
        });
        self.db.snapshot()
    }
}

/// A pinned catalog generation, returned by [`Session::catalog`].
/// Dereferences to [`Catalog`].
#[derive(Debug)]
pub struct CatalogRef {
    state: Arc<DbState>,
}

impl std::ops::Deref for CatalogRef {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        self.state.catalog()
    }
}

/// A pinned storage generation, returned by [`Session::storage`].
/// Dereferences to [`Storage`].
#[derive(Debug)]
pub struct StorageRef {
    state: Arc<DbState>,
}

impl std::ops::Deref for StorageRef {
    type Target = Storage;
    fn deref(&self) -> &Storage {
        self.state.storage()
    }
}

/// An optimized statement bound to the database generation it was
/// planned against, ready to run. Owning its snapshot, it stays valid
/// — and its results stay consistent with its plan — even while other
/// sessions mutate the shared database.
#[derive(Debug)]
pub struct Prepared {
    state: Arc<DbState>,
    exec_config: ExecConfig,
    optimized: Optimized,
}

impl Prepared {
    /// The optimizer's full outcome (plan, estimates, analysis,
    /// cache counters).
    #[must_use]
    pub fn optimized(&self) -> &Optimized {
        &self.optimized
    }

    /// The chosen physical plan.
    #[must_use]
    pub fn plan(&self) -> &PhysPlan {
        &self.optimized.plan
    }

    /// EXPLAIN: plan tree, cost estimates, reordering verdict, and
    /// plan-cache counters for this optimization.
    #[must_use]
    pub fn explain(&self) -> String {
        self.optimized.explain()
    }

    /// Execute against the snapshot this statement was planned on.
    ///
    /// # Errors
    /// [`FroError::Exec`] on engine failures.
    pub fn run(&self) -> Result<Relation, FroError> {
        Ok(self.run_with_stats()?.0)
    }

    /// Execute, additionally returning the engine's work counters.
    ///
    /// # Errors
    /// [`FroError::Exec`] on engine failures.
    pub fn run_with_stats(&self) -> Result<(Relation, ExecStats), FroError> {
        let mut stats = ExecStats::new();
        // When the session config leaves partitioning on "auto", bind
        // the optimizer's catalog-statistics hint now; the engine's
        // per-join build-cardinality fallback only kicks in for configs
        // that bypass the session. Either choice yields bit-identical
        // results — partitioning only moves work, never output.
        let mut cfg = self.exec_config;
        if cfg.partitions == 0 {
            cfg.partitions = self.optimized.suggested_partitions;
        }
        let out = execute_with(&self.optimized.plan, self.state.storage(), &mut stats, &cfg)?;
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fro_algebra::Pred;
    use fro_lang::model::paper_world;

    fn algebra_session() -> Session {
        let s = Session::new();
        s.insert_table("R1", Relation::from_ints("R1", &["k1"], &[&[0]]));
        s.insert_table(
            "R2",
            Relation::from_ints("R2", &["k2"], &[&[0], &[1], &[2]]),
        );
        s.insert_table(
            "R3",
            Relation::from_ints("R3", &["k3"], &[&[1], &[2], &[9]]),
        );
        s
    }

    fn example1() -> Query {
        Query::rel("R1").join(
            Query::rel("R2").outerjoin(Query::rel("R3"), Pred::eq_attr("R2.k2", "R3.k3")),
            Pred::eq_attr("R1.k1", "R2.k2"),
        )
    }

    #[test]
    fn prepare_runs_and_warms_the_cache() {
        let s = algebra_session();
        let q = example1();
        let cold = s.prepare(&q).unwrap();
        let cold_out = cold.run().unwrap();
        assert!(cold.optimized().pairs_examined > 0);
        let warm = s.prepare(&q).unwrap();
        assert_eq!(warm.optimized().pairs_examined, 0, "full-set cache hit");
        assert!(warm.optimized().cache.hits >= 1);
        assert!(warm.run().unwrap().set_eq(&cold_out));
        assert_eq!(cold.explain(), {
            // Cache counters differ between the two runs; plans agree.
            let c = cold.plan().explain();
            let w = warm.plan().explain();
            assert_eq!(c, w);
            cold.explain()
        });
    }

    #[test]
    fn stats_mutation_through_session_invalidates_plans() {
        let s = algebra_session();
        let q = example1();
        let _ = s.prepare(&q).unwrap();
        s.set_distinct(&Attr::parse("R2.k2"), 1_000_000);
        let replanned = s.prepare(&q).unwrap();
        assert!(
            replanned.optimized().pairs_examined > 0,
            "stale plan evicted"
        );
        assert!(replanned.optimized().cache.stale >= 1);
    }

    #[test]
    fn connected_sessions_share_data_and_plans() {
        let a = algebra_session();
        let b = Session::connect(a.shared());
        let q = example1();
        let cold = a.prepare(&q).unwrap();
        assert!(cold.optimized().pairs_examined > 0);
        // The second session sees the first session's tables *and* its
        // warm plan.
        let warm = b.prepare(&q).unwrap();
        assert_eq!(warm.optimized().pairs_examined, 0, "cross-session hit");
        assert!(warm.optimized().cache.hits >= 1);
        assert!(warm.run().unwrap().set_eq(&cold.run().unwrap()));
        // Per-handle counters stay separate and sum into the shared
        // cumulative stats.
        assert_eq!(b.local_cache_stats().hits, warm.optimized().cache.hits);
        let total = a.cache_stats();
        let (la, lb) = (a.local_cache_stats(), b.local_cache_stats());
        assert_eq!(total.hits, la.hits + lb.hits);
        assert_eq!(total.misses, la.misses + lb.misses);
    }

    #[test]
    fn prepared_statements_pin_their_generation() {
        let s = algebra_session();
        let q = example1();
        let prepared = s.prepare(&q).unwrap();
        let before = prepared.run().unwrap();
        // Mutating the shared database after preparing doesn't disturb
        // the pinned snapshot: the statement replays identically.
        s.insert_table("R2", Relation::from_ints("R2", &["k2"], &[&[999]]));
        assert_eq!(prepared.run().unwrap(), before);
        // A fresh prepare sees the new generation (and re-plans, since
        // the epoch moved).
        let fresh = s.prepare(&q).unwrap();
        assert!(!fresh.run().unwrap().set_eq(&before));
    }

    #[test]
    fn query_requires_an_entity_model() {
        let s = Session::new();
        let e = s.query("Select All From EMPLOYEE*ChildName").unwrap_err();
        assert_eq!(e.code(), "SESSION_NO_ENTITY_MODEL");
    }

    #[test]
    fn lang_query_matches_reference_and_warms() {
        let src = "Select All From EMPLOYEE*ChildName, DEPARTMENT \
                   Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'";
        let s = Session::from_entity_db(paper_world());
        let out = s.query(src).unwrap().run().unwrap();
        assert_eq!(out.len(), 3);
        // Re-issuing the same block hits the cache: the tables are
        // already in sync, so the epoch (and cache) hold.
        let again = s.query(src).unwrap();
        assert_eq!(again.optimized().pairs_examined, 0);
        assert!(again.optimized().cache.hits >= 1);
        assert!(again.run().unwrap().set_eq(&out));
    }

    #[test]
    fn lang_query_surfaces_parse_errors_with_codes() {
        let s = Session::from_entity_db(paper_world());
        let e = s.query("From nothing").unwrap_err();
        assert_eq!(e.code(), "LANG_PARSE");
    }
}
