//! Standing queries: register once, maintain forever.
//!
//! A standing query is planned a single time and materialized into a
//! [`StandingView`]: the result rows plus the per-join state the delta
//! algebra needs (hash build sides, outerjoin match counters — see
//! [`fro_exec::DeltaPlan`]). Afterwards every mutation that goes
//! through the [`SharedDb`] front door ([`SharedDb::append_rows`],
//! [`SharedDb::delete_rows`]) propagates a typed [`RowDelta`] through
//! the view's plan instead of re-executing it, so a poll touches
//! O(|delta|) rows, not O(|base|).
//!
//! ## Keying (Theorem 1 at registration time)
//!
//! The paper's Theorem 1 makes the query graph the *identity* of a
//! freely reorderable query, so the registry keys each view by
//! `(GraphSignature, canonical relation set, policy)` — exactly the
//! plan cache's key — refined by a fingerprint of the chosen physical
//! plan (two §5 blocks can share a join graph while carrying different
//! Where-List restrictions; the folded plans tell them apart).
//! Registering an alpha-equivalent phrasing therefore lands on the
//! *same* view: one materialization, one maintained state, another
//! subscriber.
//!
//! ## Finkelstein prefix/extension reuse
//!
//! Following the readyset lineage (SNIPPETS.md §1,
//! `ReuseConfigType::Finkelstein`), a new registration whose graph is
//! contained in — or contains — an existing view's graph
//! ([`fro_core::optimizer::graph_containment`]) shares the pooled leaf
//! build sides of the views already materialized instead of rebuilding
//! them; [`StandingCounters::build_sides_reused`] counts every such
//! reuse.
//!
//! ## Staleness
//!
//! Each view records the catalog epoch and the per-relation row epochs
//! it has accounted for. Quiet mutations (row appends/deletes) bump
//! only the touched relation's row epoch and are folded in
//! incrementally; anything that bumps the catalog epoch (table
//! replacement, what-if statistics, a §5 block syncing new tables)
//! leaves the view behind, and the next poll notices the gap and falls
//! back to a full re-execution — stale state is never served.

use crate::error::FroError;
use crate::shared::{DbState, SharedDb};
use fro_algebra::schema::SchemaRef;
use fro_algebra::{Relation, Tuple};
use fro_core::optimizer::{graph_containment, graph_signature, GraphReuse, Optimized};
use fro_core::{Catalog, Policy};
use fro_exec::{execute, BuildSidePool, DeltaPlan, ExecStats, PhysPlan, RowDelta};
use fro_graph::QueryGraph;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Handle to a registered standing query. Stable for the lifetime of
/// the [`SharedDb`] that issued it; alpha-equivalent registrations
/// return the *same* id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StandingId(u64);

impl StandingId {
    /// The raw id, e.g. for carrying over the wire protocol.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuild an id received over the wire. An id that no registry
    /// ever issued simply fails at poll time with
    /// `STANDING_UNKNOWN`.
    #[must_use]
    pub fn from_u64(raw: u64) -> StandingId {
        StandingId(raw)
    }
}

impl fmt::Display for StandingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "standing#{}", self.0)
    }
}

/// The outcome of a registration: the view's id and whether an
/// existing view answered it (`shared`) or a fresh materialization ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registered {
    /// The view handle to poll.
    pub id: StandingId,
    /// `true` when an alpha-equivalent view already existed — no new
    /// materialization, one more subscriber on the shared view.
    pub shared: bool,
}

/// A point-in-time description of one registered view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StandingInfo {
    /// How many registrations this view answers.
    pub subscribers: u64,
    /// Current maintained result cardinality.
    pub rows: usize,
    /// `true` when the view is delta-maintained; `false` when its plan
    /// uses an operator outside the delta algebra (projection,
    /// aggregation, generalized outerjoin) and every stale poll
    /// re-executes instead.
    pub incremental: bool,
    /// The base relations the view depends on, sorted.
    pub rels: Vec<String>,
}

/// Cumulative registry counters (all sessions, since the
/// [`SharedDb`] was built).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandingCounters {
    /// Distinct views materialized.
    pub registered: u64,
    /// Registrations answered by an existing alpha-equivalent view.
    pub shared_hits: u64,
    /// Registrations whose graph was contained in an already-registered
    /// view's graph (Finkelstein prefix reuse).
    pub prefix_reuses: u64,
    /// Registrations whose graph contained an already-registered view's
    /// graph (Finkelstein direct extension).
    pub extension_reuses: u64,
    /// Leaf build sides cloned from the shared pool instead of rebuilt.
    pub build_sides_reused: u64,
}

/// One maintained view: the plan it was registered with, the delta
/// machinery (when the plan fits the delta algebra), the result rows in
/// canonical order, and the epochs it has accounted for.
#[derive(Debug)]
struct View {
    graph: Option<QueryGraph>,
    plan: PhysPlan,
    delta: Option<DeltaPlan>,
    rows: BTreeSet<Tuple>,
    schema: SchemaRef,
    rels: BTreeSet<String>,
    subscribers: u64,
    base_epoch: u64,
    row_epochs: HashMap<String, u64>,
}

/// `(signature, relation set, policy, plan fingerprint)` — the sharing
/// key. See the module docs for why the plan fingerprint is part of it.
type ViewKey = (u64, BTreeSet<String>, Policy, u64);

/// The standing-query registry of one [`SharedDb`]: all views, the
/// shared leaf build-side pool, and the cumulative counters.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    views: BTreeMap<u64, View>,
    by_key: HashMap<ViewKey, u64>,
    pool: BuildSidePool,
    /// Catalog epoch the pool's entries were built under. Quiet row
    /// mutations invalidate per relation; an epoch move (table
    /// replacement, statistics change) clears the pool wholesale at
    /// its next use.
    pool_epoch: u64,
    next_id: u64,
    totals: ExecStats,
    counters: StandingCounters,
}

impl Registry {
    /// Drop pool entries that predate the current catalog epoch, then
    /// hand the pool out for an initialize.
    fn fresh_pool(&mut self, catalog: &Catalog) -> &mut BuildSidePool {
        if self.pool_epoch != catalog.epoch() {
            self.pool.clear();
            self.pool_epoch = catalog.epoch();
        }
        &mut self.pool
    }
}

fn plan_fingerprint(plan: &PhysPlan) -> u64 {
    let mut h = DefaultHasher::new();
    plan.explain().hash(&mut h);
    h.finish()
}

fn plan_rels(plan: &PhysPlan) -> BTreeSet<String> {
    let mut rels = BTreeSet::new();
    plan.for_each_base_rel(&mut |r| {
        rels.insert(r.to_owned());
    });
    rels
}

fn row_epoch_of(catalog: &Catalog, rel: &str) -> u64 {
    catalog.rel_id(rel).map_or(0, |id| catalog.row_epoch(id))
}

fn current_epochs(catalog: &Catalog, rels: &BTreeSet<String>) -> HashMap<String, u64> {
    rels.iter()
        .map(|r| (r.clone(), row_epoch_of(catalog, r)))
        .collect()
}

/// The bit-identical serving order: result rows sorted by [`Tuple`]'s
/// total order under the view's schema. Polls return this rendering
/// and the property suite compares re-executions against it.
fn canonical_rows(schema: &SchemaRef, rows: &BTreeSet<Tuple>) -> Relation {
    Relation::from_distinct_rows(schema.clone(), rows.iter().cloned().collect())
}

/// Whether `view` has accounted for every epoch the catalog currently
/// shows for its relations.
fn is_current(view: &View, catalog: &Catalog) -> bool {
    view.base_epoch == catalog.epoch()
        && view
            .rels
            .iter()
            .all(|r| view.row_epochs.get(r).copied().unwrap_or(0) == row_epoch_of(catalog, r))
}

/// Rebuild `view` from scratch against `state` (counted in
/// `views_refreshed`), re-deriving all join state and re-stamping the
/// accounted epochs.
fn refresh_view(
    view: &mut View,
    pool: &mut BuildSidePool,
    state: &DbState,
    stats: &mut ExecStats,
) -> Result<(), FroError> {
    stats.views_refreshed += 1;
    let rows: Vec<Tuple> = match view.delta.as_mut() {
        Some(dp) => dp.initialize(state.storage(), pool, stats)?,
        None => execute(&view.plan, state.storage(), stats)?.rows().to_vec(),
    };
    view.rows = rows.into_iter().collect();
    view.base_epoch = state.catalog().epoch();
    view.row_epochs = current_epochs(state.catalog(), &view.rels);
    Ok(())
}

/// Fan one base-relation delta out to every view that depends on it.
/// Called by the mutation front doors *after* the new generation is
/// published, still under the registry lock, with `state` the
/// post-mutation snapshot. Views that are current except for this one
/// row-epoch bump fold the delta in; views already behind (or whose
/// plan is outside the delta algebra) stay behind and the next poll
/// refreshes them. Returns the maintenance work done (also merged into
/// the registry totals).
pub(crate) fn apply_base_delta(
    reg: &mut Registry,
    state: &DbState,
    rel: &str,
    delta: &RowDelta,
) -> ExecStats {
    let mut done = ExecStats::new();
    if delta.is_empty() {
        return done;
    }
    reg.pool.invalidate_rel(rel);
    let catalog = state.catalog();
    let now = row_epoch_of(catalog, rel);
    for view in reg.views.values_mut() {
        if !view.rels.contains(rel) {
            continue;
        }
        let Some(dp) = view.delta.as_mut() else {
            continue; // refresh-mode view: the epoch gap refreshes it at poll
        };
        let behind_exactly_this = view.base_epoch == catalog.epoch()
            && view.rels.iter().all(|r| {
                let have = view.row_epochs.get(r).copied().unwrap_or(0);
                let cur = row_epoch_of(catalog, r);
                if r == rel {
                    have + 1 == cur
                } else {
                    have == cur
                }
            });
        if !behind_exactly_this {
            continue;
        }
        let mut stats = ExecStats::new();
        match dp.apply(rel, delta, &mut stats) {
            Ok(out) => {
                stats.delta_rows_out += out.len() as u64;
                for t in &out.deletes {
                    view.rows.remove(t);
                }
                for t in out.inserts {
                    view.rows.insert(t);
                }
                view.row_epochs.insert(rel.to_owned(), now);
                done.merge(&stats);
            }
            Err(_) => {
                // The join state may be torn mid-apply; leave the view
                // behind so the next poll rebuilds it from scratch.
                dp.reset();
            }
        }
    }
    reg.totals.merge(&done);
    done
}

impl SharedDb {
    /// Register an already-optimized query as a standing view,
    /// returning the (possibly shared) handle and the materialization
    /// work. Crate-internal: [`Session::register_standing`] and
    /// [`Session::register_standing_src`] are the public doors.
    ///
    /// [`Session::register_standing`]: crate::Session::register_standing
    /// [`Session::register_standing_src`]: crate::Session::register_standing_src
    pub(crate) fn register_standing_with(
        &self,
        optimized: &Optimized,
        policy: Policy,
    ) -> Result<(Registered, ExecStats), FroError> {
        let mut guard = self.standing_lock();
        let reg = &mut *guard;
        let state = self.snapshot();
        let rels = plan_rels(&optimized.plan);
        let graph = optimized.analysis.graph.clone();
        let key: Option<ViewKey> = graph.as_ref().map(|g| {
            (
                graph_signature(g).0.as_u64(),
                rels.clone(),
                policy,
                plan_fingerprint(&optimized.plan),
            )
        });
        if let Some(k) = &key {
            if let Some(&id) = reg.by_key.get(k) {
                let view = reg.views.get_mut(&id).expect("keyed view exists");
                view.subscribers += 1;
                reg.counters.shared_hits += 1;
                return Ok((
                    Registered {
                        id: StandingId(id),
                        shared: true,
                    },
                    ExecStats::new(),
                ));
            }
            if let Some(g) = &graph {
                // Finkelstein classification against the registered
                // population: one counted relationship is enough to
                // route this registration at the shared pool.
                let reuse = reg
                    .views
                    .values()
                    .filter_map(|v| v.graph.as_ref())
                    .find_map(|old| match graph_containment(g, old) {
                        Some(GraphReuse::PrefixOf) => Some(GraphReuse::PrefixOf),
                        Some(GraphReuse::ExtensionOf) => Some(GraphReuse::ExtensionOf),
                        _ => None,
                    });
                match reuse {
                    Some(GraphReuse::PrefixOf) => reg.counters.prefix_reuses += 1,
                    Some(GraphReuse::ExtensionOf) => reg.counters.extension_reuses += 1,
                    _ => {}
                }
            }
        }
        let mut stats = ExecStats::new();
        let mut delta = DeltaPlan::try_build(&optimized.plan, state.storage());
        let pool = reg.fresh_pool(state.catalog());
        let hits_before = pool.hits();
        let (rows, schema): (Vec<Tuple>, SchemaRef) = match delta.as_mut() {
            Some(dp) => {
                let rows = dp.initialize(state.storage(), pool, &mut stats)?;
                (rows, dp.schema().clone())
            }
            None => {
                let rel = execute(&optimized.plan, state.storage(), &mut stats)?;
                let schema = rel.schema().clone();
                (rel.rows().to_vec(), schema)
            }
        };
        reg.counters.build_sides_reused += reg.pool.hits() - hits_before;
        stats.views_refreshed += 1;
        let catalog = state.catalog();
        let id = reg.next_id;
        reg.next_id += 1;
        reg.views.insert(
            id,
            View {
                graph,
                plan: optimized.plan.clone(),
                delta,
                rows: rows.into_iter().collect(),
                schema,
                rels: rels.clone(),
                subscribers: 1,
                base_epoch: catalog.epoch(),
                row_epochs: current_epochs(catalog, &rels),
            },
        );
        if let Some(k) = key {
            reg.by_key.insert(k, id);
        }
        reg.counters.registered += 1;
        reg.totals.merge(&stats);
        Ok((
            Registered {
                id: StandingId(id),
                shared: false,
            },
            stats,
        ))
    }

    /// Serve a standing view's current result: the maintained rows in
    /// canonical order, refreshed from scratch first only if some
    /// mutation path the delta machinery doesn't cover moved the
    /// epochs. The returned [`ExecStats`] is the work *this poll* did —
    /// all zero on the steady-state fast path.
    ///
    /// # Errors
    /// [`FroError::UnknownStanding`] when no registration produced
    /// `id`; [`FroError::Exec`] when a refresh re-execution fails.
    pub fn poll_standing(&self, id: StandingId) -> Result<(Relation, ExecStats), FroError> {
        let mut guard = self.standing_lock();
        let reg = &mut *guard;
        let state = self.snapshot();
        let Some(view) = reg.views.get_mut(&id.0) else {
            return Err(FroError::UnknownStanding(id.0));
        };
        let mut stats = ExecStats::new();
        if !is_current(view, state.catalog()) {
            if reg.pool_epoch != state.catalog().epoch() {
                reg.pool.clear();
                reg.pool_epoch = state.catalog().epoch();
            }
            refresh_view(view, &mut reg.pool, &state, &mut stats)?;
        }
        let rel = canonical_rows(&view.schema, &view.rows);
        reg.totals.merge(&stats);
        Ok((rel, stats))
    }

    /// Describe one registered view, or `None` for an unknown id.
    #[must_use]
    pub fn standing_info(&self, id: StandingId) -> Option<StandingInfo> {
        let reg = self.standing_lock();
        reg.views.get(&id.0).map(|v| StandingInfo {
            subscribers: v.subscribers,
            rows: v.rows.len(),
            incremental: v.delta.is_some(),
            rels: v.rels.iter().cloned().collect(),
        })
    }

    /// Cumulative registry counters (registrations, sharing, build-side
    /// reuse) across all sessions.
    #[must_use]
    pub fn standing_counters(&self) -> StandingCounters {
        self.standing_lock().counters
    }

    /// Cumulative maintenance work across all views and mutations:
    /// `delta_rows_in` / `delta_rows_out` for the incremental passes,
    /// `views_refreshed` for the full re-executions, plus the engine
    /// counters those passes accrued. Per-connection shares
    /// ([`Session::local_maintenance_stats`]) sum to this total, like
    /// the plan-cache counters.
    ///
    /// [`Session::local_maintenance_stats`]: crate::Session::local_maintenance_stats
    #[must_use]
    pub fn maintenance_stats(&self) -> ExecStats {
        self.standing_lock().totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;
    use fro_algebra::{Pred, Query, Value};

    fn star_session() -> Session {
        let s = Session::new();
        s.insert_table(
            "F",
            Relation::from_ints("F", &["d1", "d2"], &[&[1, 10], &[2, 20], &[3, 30]]),
        );
        s.insert_table("D1", Relation::from_ints("D1", &["k"], &[&[1], &[2]]));
        s.insert_table("D2", Relation::from_ints("D2", &["k"], &[&[10], &[30]]));
        s
    }

    fn star_query() -> Query {
        Query::rel("F")
            .join(Query::rel("D1"), Pred::eq_attr("F.d1", "D1.k"))
            .join(Query::rel("D2"), Pred::eq_attr("F.d2", "D2.k"))
    }

    #[test]
    fn register_poll_and_incremental_append() {
        let s = star_session();
        let reg = s.register_standing(&star_query()).unwrap();
        assert!(!reg.shared);
        let (out, stats) = s.poll_standing(reg.id).unwrap();
        assert_eq!(out.len(), 1); // (1,10) matches both dims
        assert_eq!(stats.views_refreshed, 0, "steady poll does no work");
        // A quiet append folds in incrementally: no refresh, O(delta).
        assert!(s.append_rows("D2", vec![Tuple::new(vec![Value::Int(20)])]));
        let (out2, stats2) = s.poll_standing(reg.id).unwrap();
        assert_eq!(out2.len(), 2);
        assert_eq!(stats2.views_refreshed, 0);
        let totals = s.shared().maintenance_stats();
        assert!(totals.delta_rows_in > 0 && totals.delta_rows_out > 0);
        // Bit-identical to a cold re-execution served in the same
        // canonical order.
        let cold = s.prepare(&star_query()).unwrap().run().unwrap();
        let sorted: BTreeSet<Tuple> = cold.rows().iter().cloned().collect();
        assert_eq!(out2, canonical_rows(&cold.schema().clone(), &sorted));
    }

    #[test]
    fn alpha_equivalent_registrations_share_one_view() {
        let s = star_session();
        // The same star phrased in the opposite association.
        let other = Query::rel("F")
            .join(Query::rel("D2"), Pred::eq_attr("F.d2", "D2.k"))
            .join(Query::rel("D1"), Pred::eq_attr("F.d1", "D1.k"));
        let first = s.register_standing(&star_query()).unwrap();
        let b = Session::connect(s.shared());
        let second = b.register_standing(&other).unwrap();
        assert_eq!(first.id, second.id, "one view, two subscribers");
        assert!(!first.shared);
        assert!(second.shared);
        let info = s.shared().standing_info(first.id).unwrap();
        assert_eq!(info.subscribers, 2);
        let c = s.shared().standing_counters();
        assert_eq!(c.registered, 1);
        assert_eq!(c.shared_hits, 1);
    }

    #[test]
    fn table_replacement_forces_a_refresh() {
        let s = star_session();
        let reg = s.register_standing(&star_query()).unwrap();
        let _ = s.poll_standing(reg.id).unwrap();
        // Replacing a base table bumps the catalog epoch; the next poll
        // must rebuild rather than serve stale rows.
        s.insert_table("D1", Relation::from_ints("D1", &["k"], &[&[3]]));
        let (out, stats) = s.poll_standing(reg.id).unwrap();
        assert_eq!(stats.views_refreshed, 1);
        let cold = s.prepare(&star_query()).unwrap().run().unwrap();
        assert_eq!(out.len(), cold.len());
        assert_eq!(out.len(), 1); // only (3,30) survives the new D1
    }

    #[test]
    fn unknown_ids_fail_with_a_stable_code() {
        let s = star_session();
        let e = s.poll_standing(StandingId::from_u64(999)).unwrap_err();
        assert_eq!(e.code(), "STANDING_UNKNOWN");
        assert!(s
            .shared()
            .standing_info(StandingId::from_u64(999))
            .is_none());
    }

    #[test]
    fn prefix_registration_reuses_pooled_build_sides() {
        let s = star_session();
        let _ = s.register_standing(&star_query()).unwrap();
        // A prefix of the star: joins a subset of its relations on the
        // same predicate, so the D1 leaf build side is already pooled.
        let prefix = Query::rel("F").join(Query::rel("D1"), Pred::eq_attr("F.d1", "D1.k"));
        let reg = s.register_standing(&prefix).unwrap();
        assert!(!reg.shared, "different graph, its own view");
        let c = s.shared().standing_counters();
        assert_eq!(c.registered, 2);
        assert_eq!(c.prefix_reuses, 1, "containment detected");
        assert!(
            c.build_sides_reused >= 1,
            "leaf build side cloned from pool"
        );
    }
}
